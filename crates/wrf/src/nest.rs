//! Two-way moving nest at a 1:3 refinement ratio.
//!
//! WRF nests place a finer grid over the region of interest inside the
//! parent domain; the paper spawns one dynamically when the surface
//! pressure first drops below 995 hPa, centres it on the eye, and moves it
//! along the track. The nest here mirrors that: a window of the parent
//! domain at `ratio`× finer spacing, initialized by bilinear interpolation,
//! advanced with `ratio` substeps per parent step, fed back into the
//! parent (two-way), and re-centred when the eye drifts.

use crate::fields::Fields;
use crate::grid::Grid2;
use crate::pool::WorkerPool;
use crate::solver::PhysicsParams;
use crate::vortex::{VortexParams, VortexState};
use serde::{Deserialize, Serialize};

/// Static nest configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NestConfig {
    /// Refinement ratio (the paper's nesting ratio 1:3).
    pub ratio: usize,
    /// Window extent west–east, km.
    pub width_km: f64,
    /// Window extent south–north, km.
    pub height_km: f64,
    /// Re-centre the window once the eye drifts this far from its centre.
    pub recenter_km: f64,
}

impl NestConfig {
    /// The paper's nest: 1:3 ratio; window sized so the minimum nest grid
    /// is ~100×127 points at the coarsest parent resolution (24 km parent
    /// → 8 km nest → 800×1016 km window).
    pub fn aila() -> Self {
        NestConfig {
            ratio: 3,
            width_km: 800.0,
            height_km: 1016.0,
            recenter_km: 120.0,
        }
    }
}

/// A live nest: finer fields over a window of the parent domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Nest {
    /// Nest prognostic fields (origin set to the window's SW corner).
    pub fields: Fields,
    cfg: NestConfig,
}

impl Nest {
    /// Reassemble a nest from already-built fields (checkpoint restore).
    pub(crate) fn from_fields(fields: Fields, cfg: NestConfig) -> Nest {
        Nest { fields, cfg }
    }

    /// Spawn a nest centred as close to `(cx_km, cy_km)` as the parent
    /// domain allows, initialized by interpolation from the parent.
    pub fn spawn(parent: &Fields, cfg: NestConfig, cx_km: f64, cy_km: f64) -> Nest {
        let dx = parent.dx_km / cfg.ratio as f64;
        let nx = (cfg.width_km / dx).round() as usize + 1;
        let ny = (cfg.height_km / dx).round() as usize + 1;
        let (ox, oy) = clamp_origin(parent, &cfg, cx_km, cy_km);
        let mut fields = Fields::zeros(nx.max(4), ny.max(4), dx);
        fields.origin_x_km = ox;
        fields.origin_y_km = oy;
        fill_from_parent(&mut fields, parent);
        Nest { fields, cfg }
    }

    /// Window centre in parent-frame km.
    pub fn center_km(&self) -> (f64, f64) {
        (
            self.fields.origin_x_km + (self.fields.nx() - 1) as f64 * self.fields.dx_km / 2.0,
            self.fields.origin_y_km + (self.fields.ny() - 1) as f64 * self.fields.dx_km / 2.0,
        )
    }

    /// Refinement ratio.
    pub fn ratio(&self) -> usize {
        self.cfg.ratio
    }

    /// Configuration this nest was spawned with.
    pub fn config(&self) -> NestConfig {
        self.cfg
    }

    /// Advance the nest by one *parent* step: `ratio` substeps at the
    /// finer time step, on the shared rank team, double-buffered through
    /// `scratch`. Returns the accumulated finite probe of the substeps.
    #[allow(clippy::too_many_arguments)]
    pub fn advance_parent_step(
        &mut self,
        vortex: &mut VortexState,
        phys: &PhysicsParams,
        vparams: &VortexParams,
        geom: &crate::geom::DomainGeom,
        parent_dt_secs: f64,
        pool: &mut WorkerPool,
        scratch: &mut Fields,
    ) -> f64 {
        let sub_dt = parent_dt_secs / self.cfg.ratio as f64;
        let mut probe = 0.0;
        for _ in 0..self.cfg.ratio {
            probe += pool.step(&self.fields, vortex, phys, vparams, geom, sub_dt, scratch);
            std::mem::swap(&mut self.fields, scratch);
            vortex.advance(sub_dt, vparams, geom);
        }
        probe
    }

    /// Two-way feedback: overwrite parent points covered by the nest
    /// interior with the nest's (finer) solution.
    pub fn feedback(&self, parent: &mut Fields) {
        let margin = parent.dx_km; // keep a one-cell rim so parent BCs stay parent's
        let x0 = self.fields.origin_x_km + margin;
        let x1 = self.fields.x_km(self.fields.nx() - 1) - margin;
        let y0 = self.fields.origin_y_km + margin;
        let y1 = self.fields.y_km(self.fields.ny() - 1) - margin;
        for j in 0..parent.ny() {
            let py = parent.y_km(j);
            if !(y0..=y1).contains(&py) {
                continue;
            }
            for i in 0..parent.nx() {
                let px = parent.x_km(i);
                if !(x0..=x1).contains(&px) {
                    continue;
                }
                let gx = (px - self.fields.origin_x_km) / self.fields.dx_km;
                let gy = (py - self.fields.origin_y_km) / self.fields.dx_km;
                parent.eta.set(i, j, self.fields.eta.sample(gx, gy));
                parent.u.set(i, j, self.fields.u.sample(gx, gy));
                parent.v.set(i, j, self.fields.v.sample(gx, gy));
                parent.q.set(i, j, self.fields.q.sample(gx, gy));
            }
        }
    }

    /// Move the window to track the eye when it has drifted beyond the
    /// configured threshold. Returns true when a re-centre happened.
    pub fn maybe_recenter(&mut self, parent: &Fields, eye_x_km: f64, eye_y_km: f64) -> bool {
        let (cx, cy) = self.center_km();
        let drift = ((eye_x_km - cx).powi(2) + (eye_y_km - cy).powi(2)).sqrt();
        if drift <= self.cfg.recenter_km {
            return false;
        }
        let (ox, oy) = clamp_origin(parent, &self.cfg, eye_x_km, eye_y_km);
        let old = self.fields.clone();
        self.fields.origin_x_km = ox;
        self.fields.origin_y_km = oy;
        // Re-fill: keep the old nest solution where the windows overlap,
        // take the parent solution for newly covered ground.
        refill_after_move(&mut self.fields, &old, parent);
        true
    }

    /// Rebuild the nest at a new parent resolution (parent was resampled).
    pub fn rebuild_for_parent(&self, parent: &Fields) -> Nest {
        let (cx, cy) = self.center_km();
        let mut n = Nest::spawn(parent, self.cfg, cx, cy);
        // Preserve the old fine-scale solution over the overlap.
        refill_after_move(&mut n.fields, &self.fields, parent);
        n
    }
}

/// SW-corner origin of a window centred at `(cx, cy)`, clamped inside the
/// parent domain.
fn clamp_origin(parent: &Fields, cfg: &NestConfig, cx: f64, cy: f64) -> (f64, f64) {
    let pw = (parent.nx() - 1) as f64 * parent.dx_km;
    let ph = (parent.ny() - 1) as f64 * parent.dx_km;
    let w = cfg.width_km.min(pw);
    let h = cfg.height_km.min(ph);
    (
        (cx - w / 2.0).clamp(0.0, pw - w),
        (cy - h / 2.0).clamp(0.0, ph - h),
    )
}

/// Initialize every nest point from the parent by bilinear interpolation.
fn fill_from_parent(nest: &mut Fields, parent: &Fields) {
    let sample = |grid: &Grid2, x_km: f64, y_km: f64| {
        grid.sample(
            (x_km - parent.origin_x_km) / parent.dx_km,
            (y_km - parent.origin_y_km) / parent.dx_km,
        )
    };
    for j in 0..nest.ny() {
        for i in 0..nest.nx() {
            let (x, y) = (nest.x_km(i), nest.y_km(j));
            nest.eta.set(i, j, sample(&parent.eta, x, y));
            nest.u.set(i, j, sample(&parent.u, x, y));
            nest.v.set(i, j, sample(&parent.v, x, y));
            nest.q.set(i, j, sample(&parent.q, x, y));
        }
    }
}

/// Fill a moved/rebuilt window: old-nest solution where it overlaps,
/// parent elsewhere.
fn refill_after_move(nest: &mut Fields, old: &Fields, parent: &Fields) {
    let old_x1 = old.x_km(old.nx() - 1);
    let old_y1 = old.y_km(old.ny() - 1);
    for j in 0..nest.ny() {
        for i in 0..nest.nx() {
            let (x, y) = (nest.x_km(i), nest.y_km(j));
            let (src, sx, sy) = if (old.origin_x_km..=old_x1).contains(&x)
                && (old.origin_y_km..=old_y1).contains(&y)
            {
                (
                    old,
                    (x - old.origin_x_km) / old.dx_km,
                    (y - old.origin_y_km) / old.dx_km,
                )
            } else {
                (
                    parent,
                    (x - parent.origin_x_km) / parent.dx_km,
                    (y - parent.origin_y_km) / parent.dx_km,
                )
            };
            nest.eta.set(i, j, src.eta.sample(sx, sy));
            nest.u.set(i, j, src.u.sample(sx, sy));
            nest.v.set(i, j, src.v.sample(sx, sy));
            nest.q.set(i, j, src.q.sample(sx, sy));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::DomainGeom;

    fn parent_with_bump() -> (Fields, VortexState, PhysicsParams, VortexParams, DomainGeom) {
        let geom = DomainGeom::bay_of_bengal();
        let phys = PhysicsParams::bay_of_bengal();
        let vparams = VortexParams::aila();
        let vortex = VortexState::genesis(&vparams, &geom);
        let mut parent = Fields::zeros(34, 28, 200.0);
        for j in 0..parent.ny() {
            for i in 0..parent.nx() {
                let (x, y) = (parent.x_km(i), parent.y_km(j));
                parent.eta.set(i, j, vortex.target_eta(x, y, &vparams));
                let (u, v) = vortex.target_uv(x, y, &vparams);
                parent.u.set(i, j, u);
                parent.v.set(i, j, v);
            }
        }
        (parent, vortex, phys, vparams, geom)
    }

    #[test]
    fn spawn_centres_on_eye_and_interpolates() {
        let (parent, vortex, _, vparams, _) = parent_with_bump();
        let nest = Nest::spawn(&parent, NestConfig::aila(), vortex.x_km, vortex.y_km);
        assert_eq!(nest.fields.dx_km, parent.dx_km / 3.0);
        let (cx, cy) = nest.center_km();
        assert!((cx - vortex.x_km).abs() < parent.dx_km);
        assert!((cy - vortex.y_km).abs() < parent.dx_km);
        // Interpolated minimum is near the analytic minimum at the eye.
        let (p_min, px, py) = nest.fields.min_pressure(vparams.hpa_per_eta_m);
        let analytic = crate::vortex::BASE_PRESSURE_HPA
            + vparams.hpa_per_eta_m * vortex.target_eta(vortex.x_km, vortex.y_km, &vparams);
        assert!(
            (p_min - analytic).abs() < 1.0,
            "p_min {p_min} vs {analytic}"
        );
        let d = ((px - vortex.x_km).powi(2) + (py - vortex.y_km).powi(2)).sqrt();
        assert!(d < 2.0 * parent.dx_km);
    }

    #[test]
    fn spawn_clamps_to_domain_edge() {
        let (parent, _, _, _, _) = parent_with_bump();
        let nest = Nest::spawn(&parent, NestConfig::aila(), 0.0, 0.0);
        assert_eq!(nest.fields.origin_x_km, 0.0);
        assert_eq!(nest.fields.origin_y_km, 0.0);
        let far_x = parent.x_km(parent.nx() - 1) + 500.0;
        let nest = Nest::spawn(&parent, NestConfig::aila(), far_x, 0.0);
        let nest_x1 = nest.fields.x_km(nest.fields.nx() - 1);
        assert!(nest_x1 <= parent.x_km(parent.nx() - 1) + 1e-9);
    }

    #[test]
    fn substeps_advance_vortex_by_parent_dt() {
        let (parent, mut vortex, phys, vparams, geom) = parent_with_bump();
        let mut nest = Nest::spawn(&parent, NestConfig::aila(), vortex.x_km, vortex.y_km);
        let x0 = vortex.x_km;
        let dt = 6.0 * parent.dx_km;
        let mut pool = WorkerPool::new(1);
        let mut scratch = Fields::zeros(1, 1, 1.0);
        let probe = nest.advance_parent_step(
            &mut vortex,
            &phys,
            &vparams,
            &geom,
            dt,
            &mut pool,
            &mut scratch,
        );
        let moved_km = vortex.x_km - x0;
        let expect = vparams.steer_east_ms * dt / 1000.0;
        assert!((moved_km - expect).abs() < 1e-9);
        assert!(probe.is_finite());
        assert!(nest.fields.all_finite());
    }

    #[test]
    fn feedback_imprints_nest_onto_parent() {
        let (mut parent, vortex, _, _, _) = parent_with_bump();
        let mut nest = Nest::spawn(&parent, NestConfig::aila(), vortex.x_km, vortex.y_km);
        // Perturb the nest solution, then feed back.
        nest.fields.eta.fill(-9.0);
        nest.feedback(&mut parent);
        // A parent point well inside the window took the nest value.
        let (cx, cy) = nest.center_km();
        let i = ((cx - parent.origin_x_km) / parent.dx_km).round() as usize;
        let j = ((cy - parent.origin_y_km) / parent.dx_km).round() as usize;
        assert!((parent.eta.at(i, j) + 9.0).abs() < 1e-9);
        // A corner far outside the window did not.
        assert!((parent.eta.at(0, 0) + 9.0).abs() > 1.0);
    }

    #[test]
    fn recenter_follows_the_eye() {
        let (parent, vortex, _, _, _) = parent_with_bump();
        let mut nest = Nest::spawn(&parent, NestConfig::aila(), vortex.x_km, vortex.y_km);
        assert!(!nest.maybe_recenter(&parent, vortex.x_km + 10.0, vortex.y_km));
        let (cx0, cy0) = nest.center_km();
        assert!(nest.maybe_recenter(&parent, vortex.x_km + 400.0, vortex.y_km + 300.0));
        let (cx1, cy1) = nest.center_km();
        assert!(cx1 > cx0 && cy1 > cy0);
        assert!(nest.fields.all_finite());
    }

    #[test]
    fn rebuild_preserves_window_after_resolution_change() {
        let (parent, vortex, _, _, _) = parent_with_bump();
        let nest = Nest::spawn(&parent, NestConfig::aila(), vortex.x_km, vortex.y_km);
        // Parent refined 2×.
        let fine_parent =
            parent.resample(parent.nx() * 2 - 1, parent.ny() * 2 - 1, parent.dx_km / 2.0);
        let rebuilt = nest.rebuild_for_parent(&fine_parent);
        assert_eq!(rebuilt.fields.dx_km, fine_parent.dx_km / 3.0);
        let (cx0, cy0) = nest.center_km();
        let (cx1, cy1) = rebuilt.center_km();
        assert!((cx0 - cx1).abs() < parent.dx_km && (cy0 - cy1).abs() < parent.dx_km);
    }
}
