//! Parallel stepping: the MPI stand-ins.
//!
//! WRF decomposes its domain over MPI ranks; each rank advances its patch
//! and exchanges halo rows with neighbours every step. This module
//! reproduces that structure two ways:
//!
//! - [`step_spawning`] — the *legacy* shared-memory path: each of
//!   `threads` workers is spawned fresh per pass per step and writes a
//!   disjoint row band of the output. Kept as a benchmark reference and a
//!   second parity witness; the production fast path is the persistent
//!   team in [`crate::pool`], which does the same band decomposition
//!   without per-step thread creation.
//! - [`HaloWorkspace`] / [`step_halo_ranks`] — explicit message passing:
//!   each rank owns a local band *plus halo rows*, and after the
//!   continuity pass sends its boundary rows to its neighbours over
//!   channels before the momentum pass reads them — a faithful miniature
//!   of the MPI halo exchange. The workspace owns the channels, boundary
//!   row buffers, and per-rank full-array shims, so a reused workspace
//!   steps without allocating.
//!
//! Both are tested to produce results identical (to f64 round-off — in
//! fact bitwise, since the arithmetic per point is identical) to the
//! serial integrator, the property that makes processor-count changes
//! invisible to the physics, which the job handler's restart logic relies
//! on.

use crate::fields::Fields;
use crate::geom::DomainGeom;
use crate::solver::{step_eta_q_rows, step_serial_into, step_uv_rows, PhysicsParams, StepInputs};
use crate::vortex::{VortexParams, VortexState};
use crossbeam::channel::{bounded, Receiver, Sender};

/// Split `n` rows into at most `parts` contiguous non-empty bands.
pub(crate) fn band_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for k in 0..parts {
        let len = base + usize::from(k < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Advance one integration step on `threads` freshly spawned workers
/// (legacy path — two spawn/join rounds per step; see [`crate::pool`] for
/// the persistent-team replacement).
#[allow(clippy::too_many_arguments)]
pub fn step_spawning(
    old: &Fields,
    vortex: &VortexState,
    phys: &PhysicsParams,
    vparams: &VortexParams,
    geom: &DomainGeom,
    dt_secs: f64,
    threads: usize,
) -> Fields {
    let inp = StepInputs {
        old,
        vortex,
        phys,
        vparams,
        geom,
        dt_secs,
    };
    let mut new = Fields::zeros(old.nx(), old.ny(), old.dx_km);
    if threads <= 1 {
        step_serial_into(&inp, &mut new);
        return new;
    }
    let (nx, ny) = (old.nx(), old.ny());
    let bands = band_ranges(ny, threads);
    new.origin_x_km = old.origin_x_km;
    new.origin_y_km = old.origin_y_km;

    // Pass 1: fused continuity + tracer (both read only the old state),
    // one band per worker.
    crossbeam::thread::scope(|s| {
        let Fields { eta, q, .. } = &mut new;
        let mut rest_eta = eta.data_mut();
        let mut rest_q = q.data_mut();
        for &(j0, j1) in &bands {
            let (ce, te) = rest_eta.split_at_mut((j1 - j0) * nx);
            let (cq, tq) = rest_q.split_at_mut((j1 - j0) * nx);
            rest_eta = te;
            rest_q = tq;
            let inp = &inp;
            s.spawn(move |_| {
                step_eta_q_rows(inp, j0, j1, ce, cq);
            });
        }
    })
    .expect("solver worker panicked");

    // Pass 2: momentum, reading the completed new eta.
    let Fields { eta, u, v, .. } = &mut new;
    let eta_new = eta.data();
    crossbeam::thread::scope(|s| {
        let mut rest_u = u.data_mut();
        let mut rest_v = v.data_mut();
        for &(j0, j1) in &bands {
            let (cu, tu) = rest_u.split_at_mut((j1 - j0) * nx);
            let (cv, tv) = rest_v.split_at_mut((j1 - j0) * nx);
            rest_u = tu;
            rest_v = tv;
            let inp = &inp;
            s.spawn(move |_| {
                step_uv_rows(inp, eta_new, j0, j1, cu, cv);
            });
        }
    })
    .expect("solver worker panicked");

    new
}

/// One directed neighbour link: a data channel carrying a boundary row and
/// a recycle channel returning the buffer to the sender. The recycle
/// channel is seeded with one row buffer at construction, so the exchange
/// ping-pongs the same two allocations forever.
struct Link {
    data_tx: Sender<Vec<f64>>,
    data_rx: Receiver<Vec<f64>>,
    recycle_tx: Sender<Vec<f64>>,
    recycle_rx: Receiver<Vec<f64>>,
}

impl Link {
    fn new(nx: usize) -> Self {
        let (data_tx, data_rx) = bounded::<Vec<f64>>(1);
        let (recycle_tx, recycle_rx) = bounded::<Vec<f64>>(1);
        recycle_tx
            .send(vec![0.0; nx])
            .expect("seed recycle channel");
        Link {
            data_tx,
            data_rx,
            recycle_tx,
            recycle_rx,
        }
    }
}

/// Reusable state for [`HaloWorkspace::step`]: the neighbour channels,
/// their ping-pong row buffers, and each rank's full-array eta shim. Build
/// once, step many times — the steady state allocates nothing.
pub struct HaloWorkspace {
    /// Rank count asked for at construction (grid-shape rebuilds re-clamp
    /// from this, not from a previous grid's clamped value).
    requested: usize,
    ranks: usize,
    nx: usize,
    ny: usize,
    /// `up[r]` carries rank r's top boundary row to rank r+1.
    up: Vec<Link>,
    /// `down[r]` carries rank r+1's bottom boundary row to rank r.
    down: Vec<Link>,
    /// Per-rank full-array shim for the momentum pass. Only the rows this
    /// rank can see (its band ± one halo row) are refreshed each step;
    /// everything else is stale from earlier steps and never read, because
    /// the stencil reaches at most one row beyond the band.
    eta_full: Vec<Vec<f64>>,
    /// Per-rank finite probes.
    probes: Vec<f64>,
}

impl HaloWorkspace {
    /// Workspace for `ranks` message-passing ranks on an `nx × ny` grid.
    pub fn new(ranks: usize, nx: usize, ny: usize) -> Self {
        let nranks = band_ranges(ny, ranks.max(1)).len();
        HaloWorkspace {
            requested: ranks.max(1),
            ranks: nranks,
            nx,
            ny,
            up: (0..nranks.saturating_sub(1))
                .map(|_| Link::new(nx))
                .collect(),
            down: (0..nranks.saturating_sub(1))
                .map(|_| Link::new(nx))
                .collect(),
            eta_full: (0..nranks).map(|_| vec![0.0; nx * ny]).collect(),
            probes: vec![0.0; nranks],
        }
    }

    /// Number of ranks actually used (≤ requested: never more than rows).
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Advance one step with a real halo exchange of the freshly computed
    /// continuity field, writing into `out`. Returns the finite probe.
    /// Rebuilds the internal buffers only if the grid shape changed since
    /// the last call.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        &mut self,
        old: &Fields,
        vortex: &VortexState,
        phys: &PhysicsParams,
        vparams: &VortexParams,
        geom: &DomainGeom,
        dt_secs: f64,
        out: &mut Fields,
    ) -> f64 {
        let inp = StepInputs {
            old,
            vortex,
            phys,
            vparams,
            geom,
            dt_secs,
        };
        let (nx, ny) = (old.nx(), old.ny());
        if nx != self.nx || ny != self.ny {
            *self = Self::new(self.requested, nx, ny);
        }
        if self.ranks <= 1 {
            return step_serial_into(&inp, out);
        }
        out.shape_like(old);
        let bands = band_ranges(ny, self.ranks);
        let nranks = bands.len();
        debug_assert_eq!(nranks, self.ranks);

        crossbeam::thread::scope(|s| {
            let Fields { eta, u, v, q, .. } = out;
            let mut rest_eta = eta.data_mut();
            let mut rest_u = u.data_mut();
            let mut rest_v = v.data_mut();
            let mut rest_q = q.data_mut();
            let mut shims = self.eta_full.iter_mut();
            let mut probes = self.probes.iter_mut();

            for (r, &(j0, j1)) in bands.iter().enumerate() {
                let rows = j1 - j0;
                let (out_eta, te) = rest_eta.split_at_mut(rows * nx);
                let (out_u, tu) = rest_u.split_at_mut(rows * nx);
                let (out_v, tv) = rest_v.split_at_mut(rows * nx);
                let (out_q, tq) = rest_q.split_at_mut(rows * nx);
                rest_eta = te;
                rest_u = tu;
                rest_v = tv;
                rest_q = tq;
                let eta_full = shims.next().expect("one shim per rank");
                let probe_slot = probes.next().expect("one probe per rank");
                let inp = &inp;

                // Channel endpoints owned by this rank. Edge r joins ranks
                // r and r+1; `up` flows r → r+1, `down` flows r+1 → r, and
                // each link's recycle channel flows the other way.
                let send_up = (r + 1 < nranks).then(|| {
                    let l = &self.up[r];
                    (l.data_tx.clone(), l.recycle_rx.clone())
                });
                let recv_below = (r > 0).then(|| {
                    let l = &self.up[r - 1];
                    (l.data_rx.clone(), l.recycle_tx.clone())
                });
                let send_down = (r > 0).then(|| {
                    let l = &self.down[r - 1];
                    (l.data_tx.clone(), l.recycle_rx.clone())
                });
                let recv_above = (r + 1 < nranks).then(|| {
                    let l = &self.down[r];
                    (l.data_rx.clone(), l.recycle_tx.clone())
                });

                s.spawn(move |_| {
                    // Fused continuity + tracer pass straight into this
                    // rank's band of the output (reads shared old state;
                    // its halo is implicit in that read-only borrow, like
                    // the initial scatter of an MPI run).
                    let mut probe = step_eta_q_rows(inp, j0, j1, out_eta, out_q);

                    // Halo exchange of the *new* eta: fetch a recycled
                    // buffer, fill it with the boundary row, send.
                    if let Some((tx, ret)) = &send_up {
                        let mut buf = ret.recv().expect("recycled row available");
                        buf.copy_from_slice(&out_eta[(rows - 1) * nx..]);
                        tx.send(buf).expect("neighbour alive");
                    }
                    if let Some((tx, ret)) = &send_down {
                        let mut buf = ret.recv().expect("recycled row available");
                        buf.copy_from_slice(&out_eta[..nx]);
                        tx.send(buf).expect("neighbour alive");
                    }

                    // Refresh the visible window of the full-array shim:
                    // own band plus received halo rows, which go straight
                    // back to their senders once copied.
                    eta_full[j0 * nx..j1 * nx].copy_from_slice(out_eta);
                    if let Some((rx, ret)) = &recv_below {
                        let buf = rx.recv().expect("neighbour alive");
                        eta_full[(j0 - 1) * nx..j0 * nx].copy_from_slice(&buf);
                        ret.send(buf).expect("recycle capacity");
                    }
                    if let Some((rx, ret)) = &recv_above {
                        let buf = rx.recv().expect("neighbour alive");
                        eta_full[j1 * nx..(j1 + 1) * nx].copy_from_slice(&buf);
                        ret.send(buf).expect("recycle capacity");
                    }

                    // Momentum pass over the shim (stale outside the
                    // window, never read there: the stencil reaches one
                    // row beyond the band at most).
                    probe += step_uv_rows(inp, eta_full, j0, j1, out_u, out_v);
                    *probe_slot = probe;
                });
            }
        })
        .expect("rank panicked");

        self.probes.iter().sum()
    }
}

/// Advance one step with `ranks` message-passing ranks — convenience
/// wrapper building a throwaway [`HaloWorkspace`]. Reuse a workspace when
/// stepping repeatedly; this wrapper pays the channel/buffer setup every
/// call.
pub fn step_halo_ranks(
    old: &Fields,
    vortex: &VortexState,
    phys: &PhysicsParams,
    vparams: &VortexParams,
    geom: &DomainGeom,
    dt_secs: f64,
    ranks: usize,
) -> Fields {
    let mut ws = HaloWorkspace::new(ranks, old.nx(), old.ny());
    let mut out = Fields::zeros(old.nx(), old.ny(), old.dx_km);
    ws.step(old, vortex, phys, vparams, geom, dt_secs, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::DomainGeom;

    fn setup() -> (Fields, VortexState, PhysicsParams, VortexParams, DomainGeom) {
        let geom = DomainGeom::bay_of_bengal();
        let phys = PhysicsParams::bay_of_bengal();
        let vparams = VortexParams::aila();
        let vortex = VortexState::genesis(&vparams, &geom);
        let mut fields = Fields::zeros(36, 30, 192.0);
        // Start from the analytic state so one step produces non-trivial
        // tendencies everywhere.
        for j in 0..fields.ny() {
            for i in 0..fields.nx() {
                let (x, y) = (fields.x_km(i), fields.y_km(j));
                fields
                    .eta
                    .set(i, j, vortex.target_eta(x, y, &vparams) * 0.5);
                let (u, v) = vortex.target_uv(x, y, &vparams);
                fields.u.set(i, j, u * 0.5);
                fields.v.set(i, j, v * 0.5);
            }
        }
        (fields, vortex, phys, vparams, geom)
    }

    #[test]
    fn band_ranges_cover_exactly() {
        for n in [1usize, 2, 7, 30, 31] {
            for parts in [1usize, 2, 3, 8, 64] {
                let bands = band_ranges(n, parts);
                assert_eq!(bands[0].0, 0);
                assert_eq!(bands.last().unwrap().1, n);
                for w in bands.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "bands contiguous");
                }
                assert!(bands.iter().all(|&(a, b)| b > a), "bands non-empty");
                assert!(bands.len() <= parts);
            }
        }
    }

    #[test]
    fn spawning_step_matches_serial_bitwise() {
        let (fields, vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let serial = step_spawning(&fields, &vortex, &phys, &vparams, &geom, dt, 1);
        for threads in [2usize, 3, 4, 7] {
            let par = step_spawning(&fields, &vortex, &phys, &vparams, &geom, dt, threads);
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn halo_rank_step_matches_serial_bitwise() {
        let (fields, vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let serial = step_spawning(&fields, &vortex, &phys, &vparams, &geom, dt, 1);
        for ranks in [2usize, 3, 5, 8] {
            let mp = step_halo_ranks(&fields, &vortex, &phys, &vparams, &geom, dt, ranks);
            assert_eq!(serial, mp, "ranks = {ranks}");
        }
    }

    #[test]
    fn reused_workspace_matches_serial_across_steps() {
        let (mut fields, mut vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let mut ws = HaloWorkspace::new(3, fields.nx(), fields.ny());
        let mut out = Fields::zeros(1, 1, 1.0);
        for _ in 0..4 {
            let serial = step_spawning(&fields, &vortex, &phys, &vparams, &geom, dt, 1);
            let probe = ws.step(&fields, &vortex, &phys, &vparams, &geom, dt, &mut out);
            assert_eq!(serial, out);
            assert!(probe.is_finite());
            std::mem::swap(&mut fields, &mut out);
            vortex.advance(dt, &vparams, &geom);
        }
    }

    #[test]
    fn workspace_rebuilds_on_grid_change() {
        let (fields, vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let mut ws = HaloWorkspace::new(3, 5, 5); // wrong shape on purpose
        let mut out = Fields::zeros(1, 1, 1.0);
        ws.step(&fields, &vortex, &phys, &vparams, &geom, dt, &mut out);
        let serial = step_spawning(&fields, &vortex, &phys, &vparams, &geom, dt, 1);
        assert_eq!(serial, out);
    }

    #[test]
    fn more_ranks_than_rows_is_fine() {
        let (fields, vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let serial = step_spawning(&fields, &vortex, &phys, &vparams, &geom, dt, 1);
        let par = step_spawning(&fields, &vortex, &phys, &vparams, &geom, dt, 1000);
        let mp = step_halo_ranks(&fields, &vortex, &phys, &vparams, &geom, dt, 1000);
        assert_eq!(serial, par);
        assert_eq!(serial, mp);
    }

    #[test]
    fn repeated_steps_stay_finite_and_track_vortex() {
        let (mut fields, mut vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let mut pool = crate::pool::WorkerPool::with_exact_team(2);
        let mut scratch = Fields::zeros(1, 1, 1.0);
        for _ in 0..100 {
            let probe = pool.step(&fields, &vortex, &phys, &vparams, &geom, dt, &mut scratch);
            std::mem::swap(&mut fields, &mut scratch);
            vortex.advance(dt, &vparams, &geom);
            assert!(probe.is_finite());
        }
        // After ~100 steps of nudging, the field minimum should sit near
        // the vortex centre.
        let (p_min, x, y) = fields.min_pressure(vparams.hpa_per_eta_m);
        assert!(p_min < 1010.0, "a depression formed: {p_min}");
        let dist = ((x - vortex.x_km).powi(2) + (y - vortex.y_km).powi(2)).sqrt();
        assert!(dist < 600.0, "eye within a few grid cells: {dist} km");
    }
}
