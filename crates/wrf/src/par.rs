//! Parallel stepping: the MPI stand-ins.
//!
//! WRF decomposes its domain over MPI ranks; each rank advances its patch
//! and exchanges halo rows with neighbours every step. This module
//! reproduces that structure two ways:
//!
//! - [`step_spawning`] — the *legacy* shared-memory path: each of
//!   `threads` workers is spawned fresh per pass per step and writes a
//!   disjoint row band of the output. Kept as a benchmark reference and a
//!   second parity witness; the production fast path is the persistent
//!   team in [`crate::pool`], which does the same band decomposition
//!   without per-step thread creation.
//! - [`HaloWorkspace`] / [`step_halo_ranks`] — explicit message passing:
//!   each rank owns a local band *plus halo rows*, and after the
//!   continuity pass sends its boundary rows to its neighbours over
//!   channels before the momentum pass reads them — a faithful miniature
//!   of the MPI halo exchange. The workspace owns the channels, boundary
//!   row buffers, and per-rank full-array shims, so a reused workspace
//!   steps without allocating.
//!
//! Both are tested to produce results bitwise identical to the serial
//! reference *of the same kernel path* ([`crate::solver::KernelPath`]):
//! the scalar engines against the original serial integrator, the lanes
//! engines against the lane-ordered serial reference. That per-path
//! invariance is what makes processor-count changes invisible to the
//! physics, which the job handler's restart logic relies on.
//!
//! Within each rank's band, sweeps run in L2-sized **row tiles**
//! (`row_tiles`): a tile's rows are processed for all fields of a pass
//! before moving on, so the ~8 f64 streams a fused pass touches stay
//! resident instead of being evicted across a full-band walk. Tiling is
//! bit-neutral — rows are independent within a pass and tiles never split
//! a row.

use crate::fields::Fields;
use crate::solver::{
    step_eta_q_rows, step_eta_q_rows_lanes, step_serial_into, step_serial_lanes_into, step_uv_rows,
    step_uv_rows_lanes, KernelPath, LaneScratch, StepInputs,
};
use crate::{DomainGeom, PhysicsParams, VortexParams, VortexState};
use crossbeam::channel::{bounded, Receiver, Sender};

/// Split `n` rows into at most `parts` contiguous non-empty bands.
pub(crate) fn band_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for k in 0..parts {
        let len = base + usize::from(k < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Working-set budget per row tile. A fused pass streams roughly eight
/// f64 arrays (pass 1: eta/u/v/q in, eta/q out and their neighbour rows
/// come from the same arrays; pass 2 similarly), so a tile of `R` rows
/// touches ~`R · nx · 8 · 8` bytes. 256 KiB keeps that comfortably inside
/// typical per-core L2 (512 KiB – 1.25 MiB) while leaving room for the
/// halo rows above and below the tile.
const TILE_TARGET_BYTES: usize = 256 * 1024;
/// Distinct f64 streams a fused pass touches per row (see above).
const TILE_STREAMS: usize = 8;

/// Rows per tile for an `nx`-wide grid (at least 4, so tiny grids don't
/// degenerate into per-row calls).
fn rows_per_tile(nx: usize) -> usize {
    (TILE_TARGET_BYTES / (nx.max(1) * TILE_STREAMS * std::mem::size_of::<f64>())).max(4)
}

/// Split the row range `j0..j1` into cache-sized tiles (never splitting a
/// row, so tiling is invisible to the per-row probe contract). Allocation
/// free — engines iterate this inside their hot step.
pub(crate) fn row_tiles(j0: usize, j1: usize, nx: usize) -> impl Iterator<Item = (usize, usize)> {
    let rows = rows_per_tile(nx);
    (j0..j1)
        .step_by(rows)
        .map(move |t0| (t0, (t0 + rows).min(j1)))
}

/// Advance one integration step on `threads` freshly spawned workers
/// (legacy path — two spawn/join rounds per step; see [`crate::pool`] for
/// the persistent-team replacement). Always runs the scalar kernels: this
/// is the [`KernelPath::Scalar`] parity witness and profiling baseline.
#[allow(clippy::too_many_arguments)]
pub fn step_spawning(
    old: &Fields,
    vortex: &VortexState,
    phys: &PhysicsParams,
    vparams: &VortexParams,
    geom: &DomainGeom,
    dt_secs: f64,
    threads: usize,
) -> Fields {
    let inp = StepInputs {
        old,
        vortex,
        phys,
        vparams,
        geom,
        dt_secs,
    };
    let mut new = Fields::zeros(old.nx(), old.ny(), old.dx_km);
    if threads <= 1 {
        step_serial_into(&inp, &mut new);
        return new;
    }
    let (nx, ny) = (old.nx(), old.ny());
    let bands = band_ranges(ny, threads);
    new.origin_x_km = old.origin_x_km;
    new.origin_y_km = old.origin_y_km;

    // Pass 1: fused continuity + tracer (both read only the old state),
    // one band per worker.
    crossbeam::thread::scope(|s| {
        let Fields { eta, q, .. } = &mut new;
        let mut rest_eta = eta.data_mut();
        let mut rest_q = q.data_mut();
        for &(j0, j1) in &bands {
            let (ce, te) = rest_eta.split_at_mut((j1 - j0) * nx);
            let (cq, tq) = rest_q.split_at_mut((j1 - j0) * nx);
            rest_eta = te;
            rest_q = tq;
            let inp = &inp;
            s.spawn(move |_| {
                step_eta_q_rows(inp, j0, j1, ce, cq);
            });
        }
    })
    .expect("solver worker panicked");

    // Pass 2: momentum, reading the completed new eta.
    let Fields { eta, u, v, .. } = &mut new;
    let eta_new = eta.data();
    crossbeam::thread::scope(|s| {
        let mut rest_u = u.data_mut();
        let mut rest_v = v.data_mut();
        for &(j0, j1) in &bands {
            let (cu, tu) = rest_u.split_at_mut((j1 - j0) * nx);
            let (cv, tv) = rest_v.split_at_mut((j1 - j0) * nx);
            rest_u = tu;
            rest_v = tv;
            let inp = &inp;
            s.spawn(move |_| {
                step_uv_rows(inp, eta_new, j0, j1, cu, cv);
            });
        }
    })
    .expect("solver worker panicked");

    new
}

/// One directed neighbour link: a data channel carrying a boundary row and
/// a recycle channel returning the buffer to the sender. The recycle
/// channel is seeded with one row buffer at construction, so the exchange
/// ping-pongs the same two allocations forever.
struct Link {
    data_tx: Sender<Vec<f64>>,
    data_rx: Receiver<Vec<f64>>,
    recycle_tx: Sender<Vec<f64>>,
    recycle_rx: Receiver<Vec<f64>>,
}

impl Link {
    fn new(nx: usize) -> Self {
        let (data_tx, data_rx) = bounded::<Vec<f64>>(1);
        let (recycle_tx, recycle_rx) = bounded::<Vec<f64>>(1);
        recycle_tx
            .send(vec![0.0; nx])
            .expect("seed recycle channel");
        Link {
            data_tx,
            data_rx,
            recycle_tx,
            recycle_rx,
        }
    }
}

/// Reusable state for [`HaloWorkspace::step`]: the neighbour channels,
/// their ping-pong row buffers, and each rank's full-array eta shim. Build
/// once, step many times — the steady state allocates nothing.
pub struct HaloWorkspace {
    /// Rank count asked for at construction (grid-shape rebuilds re-clamp
    /// from this, not from a previous grid's clamped value).
    requested: usize,
    ranks: usize,
    nx: usize,
    ny: usize,
    /// Kernel implementation this workspace runs (fixed at construction;
    /// grid-shape rebuilds preserve it).
    path: KernelPath,
    /// `up[r]` carries rank r's top boundary row to rank r+1.
    up: Vec<Link>,
    /// `down[r]` carries rank r+1's bottom boundary row to rank r.
    down: Vec<Link>,
    /// Per-rank full-array shim for the momentum pass. Only the rows this
    /// rank can see (its band ± one halo row) are refreshed each step;
    /// everything else is stale from earlier steps and never read, because
    /// the stencil reaches at most one row beyond the band.
    eta_full: Vec<Vec<f64>>,
    /// Per-rank finite probes (scalar path).
    probes: Vec<f64>,
    /// Per-rank lane scratch (lanes path).
    lane_scratch: Vec<LaneScratch>,
    /// Per-row probe slots (lanes path): ranks write disjoint row bands,
    /// the caller reduces in ascending row order.
    probe_rows: Vec<f64>,
}

impl HaloWorkspace {
    /// Workspace for `ranks` message-passing ranks on an `nx × ny` grid,
    /// running the default kernel path.
    pub fn new(ranks: usize, nx: usize, ny: usize) -> Self {
        Self::with_kernel_path(ranks, nx, ny, KernelPath::default())
    }

    /// Workspace pinned to a specific kernel path (parity tests and the
    /// profiling baseline use `Scalar`).
    pub fn with_kernel_path(ranks: usize, nx: usize, ny: usize, path: KernelPath) -> Self {
        let nranks = band_ranges(ny, ranks.max(1)).len();
        HaloWorkspace {
            requested: ranks.max(1),
            ranks: nranks,
            nx,
            ny,
            path,
            up: (0..nranks.saturating_sub(1))
                .map(|_| Link::new(nx))
                .collect(),
            down: (0..nranks.saturating_sub(1))
                .map(|_| Link::new(nx))
                .collect(),
            eta_full: (0..nranks).map(|_| vec![0.0; nx * ny]).collect(),
            probes: vec![0.0; nranks],
            lane_scratch: (0..nranks).map(|_| LaneScratch::default()).collect(),
            probe_rows: vec![0.0; ny],
        }
    }

    /// Number of ranks actually used (≤ requested: never more than rows).
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// The kernel path this workspace was built with.
    pub fn kernel_path(&self) -> KernelPath {
        self.path
    }

    /// Advance one step with a real halo exchange of the freshly computed
    /// continuity field, writing into `out`. Returns the finite probe.
    /// Rebuilds the internal buffers only if the grid shape changed since
    /// the last call.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        &mut self,
        old: &Fields,
        vortex: &VortexState,
        phys: &PhysicsParams,
        vparams: &VortexParams,
        geom: &DomainGeom,
        dt_secs: f64,
        out: &mut Fields,
    ) -> f64 {
        let inp = StepInputs {
            old,
            vortex,
            phys,
            vparams,
            geom,
            dt_secs,
        };
        let (nx, ny) = (old.nx(), old.ny());
        if nx != self.nx || ny != self.ny {
            *self = Self::with_kernel_path(self.requested, nx, ny, self.path);
        }
        if self.ranks <= 1 {
            return match self.path {
                KernelPath::Scalar => step_serial_into(&inp, out),
                KernelPath::Lanes => step_serial_lanes_into(
                    &inp,
                    &mut self.lane_scratch[0],
                    &mut self.probe_rows,
                    out,
                ),
            };
        }
        out.shape_like(old);
        let bands = band_ranges(ny, self.ranks);
        let nranks = bands.len();
        debug_assert_eq!(nranks, self.ranks);
        let path = self.path;

        crossbeam::thread::scope(|s| {
            let Fields { eta, u, v, q, .. } = out;
            let mut rest_eta = eta.data_mut();
            let mut rest_u = u.data_mut();
            let mut rest_v = v.data_mut();
            let mut rest_q = q.data_mut();
            let mut rest_rows = self.probe_rows.as_mut_slice();
            let mut shims = self.eta_full.iter_mut();
            let mut probes = self.probes.iter_mut();
            let mut scratches = self.lane_scratch.iter_mut();

            for (r, &(j0, j1)) in bands.iter().enumerate() {
                let rows = j1 - j0;
                let (out_eta, te) = rest_eta.split_at_mut(rows * nx);
                let (out_u, tu) = rest_u.split_at_mut(rows * nx);
                let (out_v, tv) = rest_v.split_at_mut(rows * nx);
                let (out_q, tq) = rest_q.split_at_mut(rows * nx);
                let (band_rows, tr) = rest_rows.split_at_mut(rows);
                rest_eta = te;
                rest_u = tu;
                rest_v = tv;
                rest_q = tq;
                rest_rows = tr;
                let eta_full = shims.next().expect("one shim per rank");
                let probe_slot = probes.next().expect("one probe per rank");
                let scratch = scratches.next().expect("one scratch per rank");
                let inp = &inp;

                // Channel endpoints owned by this rank. Edge r joins ranks
                // r and r+1; `up` flows r → r+1, `down` flows r+1 → r, and
                // each link's recycle channel flows the other way.
                let send_up = (r + 1 < nranks).then(|| {
                    let l = &self.up[r];
                    (l.data_tx.clone(), l.recycle_rx.clone())
                });
                let recv_below = (r > 0).then(|| {
                    let l = &self.up[r - 1];
                    (l.data_rx.clone(), l.recycle_tx.clone())
                });
                let send_down = (r > 0).then(|| {
                    let l = &self.down[r - 1];
                    (l.data_tx.clone(), l.recycle_rx.clone())
                });
                let recv_above = (r + 1 < nranks).then(|| {
                    let l = &self.down[r];
                    (l.data_rx.clone(), l.recycle_tx.clone())
                });

                s.spawn(move |_| {
                    // Fused continuity + tracer pass straight into this
                    // rank's band of the output (reads shared old state;
                    // its halo is implicit in that read-only borrow, like
                    // the initial scatter of an MPI run). The lanes path
                    // sweeps the band in cache-sized row tiles and records
                    // per-row probes instead of a running band sum.
                    let mut probe = 0.0;
                    match path {
                        KernelPath::Scalar => {
                            probe = step_eta_q_rows(inp, j0, j1, out_eta, out_q);
                        }
                        KernelPath::Lanes => {
                            scratch.prepare(inp);
                            for (t0, t1) in row_tiles(j0, j1, nx) {
                                let (lo, hi) = ((t0 - j0) * nx, (t1 - j0) * nx);
                                step_eta_q_rows_lanes(
                                    inp,
                                    scratch,
                                    t0,
                                    t1,
                                    &mut out_eta[lo..hi],
                                    &mut out_q[lo..hi],
                                    &mut band_rows[t0 - j0..t1 - j0],
                                );
                            }
                        }
                    }

                    // Halo exchange of the *new* eta: fetch a recycled
                    // buffer, fill it with the boundary row, send.
                    if let Some((tx, ret)) = &send_up {
                        let mut buf = ret.recv().expect("recycled row available");
                        buf.copy_from_slice(&out_eta[(rows - 1) * nx..]);
                        tx.send(buf).expect("neighbour alive");
                    }
                    if let Some((tx, ret)) = &send_down {
                        let mut buf = ret.recv().expect("recycled row available");
                        buf.copy_from_slice(&out_eta[..nx]);
                        tx.send(buf).expect("neighbour alive");
                    }

                    // Refresh the visible window of the full-array shim:
                    // own band plus received halo rows, which go straight
                    // back to their senders once copied.
                    eta_full[j0 * nx..j1 * nx].copy_from_slice(out_eta);
                    if let Some((rx, ret)) = &recv_below {
                        let buf = rx.recv().expect("neighbour alive");
                        eta_full[(j0 - 1) * nx..j0 * nx].copy_from_slice(&buf);
                        ret.send(buf).expect("recycle capacity");
                    }
                    if let Some((rx, ret)) = &recv_above {
                        let buf = rx.recv().expect("neighbour alive");
                        eta_full[j1 * nx..(j1 + 1) * nx].copy_from_slice(&buf);
                        ret.send(buf).expect("recycle capacity");
                    }

                    // Momentum pass over the shim (stale outside the
                    // window, never read there: the stencil reaches one
                    // row beyond the band at most).
                    match path {
                        KernelPath::Scalar => {
                            probe += step_uv_rows(inp, eta_full, j0, j1, out_u, out_v);
                            *probe_slot = probe;
                        }
                        KernelPath::Lanes => {
                            for (t0, t1) in row_tiles(j0, j1, nx) {
                                let (lo, hi) = ((t0 - j0) * nx, (t1 - j0) * nx);
                                step_uv_rows_lanes(
                                    inp,
                                    scratch,
                                    eta_full,
                                    t0,
                                    t1,
                                    &mut out_u[lo..hi],
                                    &mut out_v[lo..hi],
                                    &mut band_rows[t0 - j0..t1 - j0],
                                );
                            }
                        }
                    }
                });
            }
        })
        .expect("rank panicked");

        match self.path {
            KernelPath::Scalar => self.probes.iter().sum(),
            // Ascending-row reduction — the same fixed order as the serial
            // lanes reference, independent of the band decomposition.
            KernelPath::Lanes => self.probe_rows.iter().sum(),
        }
    }
}

/// Advance one step with `ranks` message-passing ranks — convenience
/// wrapper building a throwaway [`HaloWorkspace`]. Reuse a workspace when
/// stepping repeatedly; this wrapper pays the channel/buffer setup every
/// call.
pub fn step_halo_ranks(
    old: &Fields,
    vortex: &VortexState,
    phys: &PhysicsParams,
    vparams: &VortexParams,
    geom: &DomainGeom,
    dt_secs: f64,
    ranks: usize,
) -> Fields {
    let mut ws = HaloWorkspace::new(ranks, old.nx(), old.ny());
    let mut out = Fields::zeros(old.nx(), old.ny(), old.dx_km);
    ws.step(old, vortex, phys, vparams, geom, dt_secs, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::DomainGeom;

    fn setup() -> (Fields, VortexState, PhysicsParams, VortexParams, DomainGeom) {
        let geom = DomainGeom::bay_of_bengal();
        let phys = PhysicsParams::bay_of_bengal();
        let vparams = VortexParams::aila();
        let vortex = VortexState::genesis(&vparams, &geom);
        let mut fields = Fields::zeros(36, 30, 192.0);
        // Start from the analytic state so one step produces non-trivial
        // tendencies everywhere.
        for j in 0..fields.ny() {
            for i in 0..fields.nx() {
                let (x, y) = (fields.x_km(i), fields.y_km(j));
                fields
                    .eta
                    .set(i, j, vortex.target_eta(x, y, &vparams) * 0.5);
                let (u, v) = vortex.target_uv(x, y, &vparams);
                fields.u.set(i, j, u * 0.5);
                fields.v.set(i, j, v * 0.5);
            }
        }
        (fields, vortex, phys, vparams, geom)
    }

    fn serial_lanes(
        fields: &Fields,
        vortex: &VortexState,
        phys: &PhysicsParams,
        vparams: &VortexParams,
        geom: &DomainGeom,
        dt: f64,
    ) -> Fields {
        let inp = StepInputs {
            old: fields,
            vortex,
            phys,
            vparams,
            geom,
            dt_secs: dt,
        };
        let mut out = Fields::zeros(fields.nx(), fields.ny(), fields.dx_km);
        let mut scratch = LaneScratch::default();
        let mut rows = Vec::new();
        step_serial_lanes_into(&inp, &mut scratch, &mut rows, &mut out);
        out
    }

    #[test]
    fn row_tiles_cover_exactly_and_respect_minimum() {
        for (j0, j1, nx) in [
            (0usize, 1usize, 5usize),
            (0, 349, 404),
            (3, 97, 33),
            (10, 14, 4000),
        ] {
            let tiles: Vec<_> = row_tiles(j0, j1, nx).collect();
            assert_eq!(tiles[0].0, j0);
            assert_eq!(tiles.last().unwrap().1, j1);
            for w in tiles.windows(2) {
                assert_eq!(w[0].1, w[1].0, "tiles contiguous");
            }
            // Every tile except possibly the last spans rows_per_tile ≥ 4.
            for &(a, b) in &tiles[..tiles.len() - 1] {
                assert!(b - a >= 4, "tile [{a},{b}) below the 4-row floor");
            }
        }
        // Wide grids shrink the tile toward (but never below) the floor.
        let wide: Vec<_> = row_tiles(0, 100, 1_000_000).collect();
        assert!(wide.iter().all(|&(a, b)| b - a <= 4));
        // Narrow grids get deep tiles that still fit the byte budget.
        let narrow: Vec<_> = row_tiles(0, 10_000, 64).collect();
        let depth = narrow[0].1 - narrow[0].0;
        assert!(depth * 64 * 8 * 8 <= 256 * 1024);
        assert!(depth >= 64, "narrow grids should tile deep, got {depth}");
    }

    #[test]
    fn band_ranges_cover_exactly() {
        for n in [1usize, 2, 7, 30, 31] {
            for parts in [1usize, 2, 3, 8, 64] {
                let bands = band_ranges(n, parts);
                assert_eq!(bands[0].0, 0);
                assert_eq!(bands.last().unwrap().1, n);
                for w in bands.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "bands contiguous");
                }
                assert!(bands.iter().all(|&(a, b)| b > a), "bands non-empty");
                assert!(bands.len() <= parts);
            }
        }
    }

    #[test]
    fn spawning_step_matches_serial_bitwise() {
        let (fields, vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let serial = step_spawning(&fields, &vortex, &phys, &vparams, &geom, dt, 1);
        for threads in [2usize, 3, 4, 7] {
            let par = step_spawning(&fields, &vortex, &phys, &vparams, &geom, dt, threads);
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn halo_rank_step_matches_lane_serial_bitwise() {
        let (fields, vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let serial = serial_lanes(&fields, &vortex, &phys, &vparams, &geom, dt);
        for ranks in [2usize, 3, 5, 8] {
            let mp = step_halo_ranks(&fields, &vortex, &phys, &vparams, &geom, dt, ranks);
            assert_eq!(serial, mp, "ranks = {ranks}");
        }
    }

    /// Regression: the scalar path is untouched — a scalar workspace still
    /// matches the original serial kernels byte for byte.
    #[test]
    fn scalar_workspace_still_matches_original_serial() {
        let (fields, vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let serial = step_spawning(&fields, &vortex, &phys, &vparams, &geom, dt, 1);
        for ranks in [2usize, 3, 5] {
            let mut ws = HaloWorkspace::with_kernel_path(
                ranks,
                fields.nx(),
                fields.ny(),
                KernelPath::Scalar,
            );
            assert_eq!(ws.kernel_path(), KernelPath::Scalar);
            let mut out = Fields::zeros(1, 1, 1.0);
            ws.step(&fields, &vortex, &phys, &vparams, &geom, dt, &mut out);
            assert_eq!(serial, out, "ranks = {ranks}");
        }
    }

    #[test]
    fn reused_workspace_matches_serial_across_steps() {
        let (mut fields, mut vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let mut ws = HaloWorkspace::new(3, fields.nx(), fields.ny());
        assert_eq!(ws.kernel_path(), KernelPath::Lanes);
        let mut out = Fields::zeros(1, 1, 1.0);
        for _ in 0..4 {
            let serial = serial_lanes(&fields, &vortex, &phys, &vparams, &geom, dt);
            let probe = ws.step(&fields, &vortex, &phys, &vparams, &geom, dt, &mut out);
            assert_eq!(serial, out);
            assert!(probe.is_finite());
            std::mem::swap(&mut fields, &mut out);
            vortex.advance(dt, &vparams, &geom);
        }
    }

    #[test]
    fn workspace_rebuilds_on_grid_change() {
        let (fields, vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        for path in [KernelPath::Scalar, KernelPath::Lanes] {
            let mut ws = HaloWorkspace::with_kernel_path(3, 5, 5, path); // wrong shape on purpose
            let mut out = Fields::zeros(1, 1, 1.0);
            ws.step(&fields, &vortex, &phys, &vparams, &geom, dt, &mut out);
            assert_eq!(ws.kernel_path(), path, "rebuild preserves the path");
            let serial = match path {
                KernelPath::Scalar => {
                    step_spawning(&fields, &vortex, &phys, &vparams, &geom, dt, 1)
                }
                KernelPath::Lanes => serial_lanes(&fields, &vortex, &phys, &vparams, &geom, dt),
            };
            assert_eq!(serial, out, "{path:?}");
        }
    }

    #[test]
    fn more_ranks_than_rows_is_fine() {
        let (fields, vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let serial_scalar = step_spawning(&fields, &vortex, &phys, &vparams, &geom, dt, 1);
        let par = step_spawning(&fields, &vortex, &phys, &vparams, &geom, dt, 1000);
        assert_eq!(serial_scalar, par);
        let lanes = serial_lanes(&fields, &vortex, &phys, &vparams, &geom, dt);
        let mp = step_halo_ranks(&fields, &vortex, &phys, &vparams, &geom, dt, 1000);
        assert_eq!(lanes, mp);
    }

    #[test]
    fn repeated_steps_stay_finite_and_track_vortex() {
        let (mut fields, mut vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let mut pool = crate::pool::WorkerPool::with_exact_team(2);
        let mut scratch = Fields::zeros(1, 1, 1.0);
        for _ in 0..100 {
            let probe = pool.step(&fields, &vortex, &phys, &vparams, &geom, dt, &mut scratch);
            std::mem::swap(&mut fields, &mut scratch);
            vortex.advance(dt, &vparams, &geom);
            assert!(probe.is_finite());
        }
        // After ~100 steps of nudging, the field minimum should sit near
        // the vortex centre.
        let (p_min, x, y) = fields.min_pressure(vparams.hpa_per_eta_m);
        assert!(p_min < 1010.0, "a depression formed: {p_min}");
        let dist = ((x - vortex.x_km).powi(2) + (y - vortex.y_km).powi(2)).sqrt();
        assert!(dist < 600.0, "eye within a few grid cells: {dist} km");
    }
}
