//! Parallel stepping: the MPI stand-ins.
//!
//! WRF decomposes its domain over MPI ranks; each rank advances its patch
//! and exchanges halo rows with neighbours every step. This module
//! reproduces that structure two ways:
//!
//! - [`step`] — shared-memory row bands: each of `threads` workers writes a
//!   disjoint band of the output arrays while reading the shared previous
//!   state. The barrier between the continuity and momentum passes is the
//!   scope join. This is the fast path.
//! - [`step_halo_ranks`] — explicit message passing: each rank owns a local
//!   band *plus halo rows*, and after the continuity pass sends its
//!   boundary rows to its neighbours over channels before the momentum
//!   pass reads them — a faithful miniature of the MPI halo exchange.
//!
//! Both are tested to produce results identical (to f64 round-off — in
//! fact bitwise, since the arithmetic per point is identical) to the
//! serial integrator, the property that makes processor-count changes
//! invisible to the physics, which the job handler's restart logic relies
//! on.

use crate::fields::Fields;
use crate::geom::DomainGeom;
use crate::solver::{
    step_eta_rows, step_q_rows, step_serial, step_uv_rows, PhysicsParams, StepInputs,
};
use crate::vortex::{VortexParams, VortexState};
use crossbeam::channel::bounded;

/// Split `n` rows into at most `parts` contiguous non-empty bands.
pub(crate) fn band_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for k in 0..parts {
        let len = base + usize::from(k < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Advance one integration step on `threads` shared-memory workers.
pub fn step(
    old: &Fields,
    vortex: &VortexState,
    phys: &PhysicsParams,
    vparams: &VortexParams,
    geom: &DomainGeom,
    dt_secs: f64,
    threads: usize,
) -> Fields {
    let inp = StepInputs {
        old,
        vortex,
        phys,
        vparams,
        geom,
        dt_secs,
    };
    if threads <= 1 {
        return step_serial(&inp);
    }
    let (nx, ny) = (old.nx(), old.ny());
    let bands = band_ranges(ny, threads);
    let mut new = Fields::zeros(nx, ny, old.dx_km);
    new.origin_x_km = old.origin_x_km;
    new.origin_y_km = old.origin_y_km;

    // Pass 1: continuity + tracer (both read only the old state), one
    // band per worker.
    crossbeam::thread::scope(|s| {
        let Fields { eta, q, .. } = &mut new;
        let mut rest_eta = eta.data_mut();
        let mut rest_q = q.data_mut();
        for &(j0, j1) in &bands {
            let (ce, te) = rest_eta.split_at_mut((j1 - j0) * nx);
            let (cq, tq) = rest_q.split_at_mut((j1 - j0) * nx);
            rest_eta = te;
            rest_q = tq;
            let inp = &inp;
            s.spawn(move |_| {
                step_eta_rows(inp, j0, j1, ce);
                step_q_rows(inp, j0, j1, cq);
            });
        }
    })
    .expect("solver worker panicked");

    // Pass 2: momentum, reading the completed new eta.
    let Fields { eta, u, v, .. } = &mut new;
    let eta_new = eta.data();
    crossbeam::thread::scope(|s| {
        let mut rest_u = u.data_mut();
        let mut rest_v = v.data_mut();
        for &(j0, j1) in &bands {
            let (cu, tu) = rest_u.split_at_mut((j1 - j0) * nx);
            let (cv, tv) = rest_v.split_at_mut((j1 - j0) * nx);
            rest_u = tu;
            rest_v = tv;
            let inp = &inp;
            s.spawn(move |_| step_uv_rows(inp, eta_new, j0, j1, cu, cv));
        }
    })
    .expect("solver worker panicked");

    new
}

/// Advance one step with `ranks` message-passing ranks and a real halo
/// exchange of the freshly computed continuity field.
pub fn step_halo_ranks(
    old: &Fields,
    vortex: &VortexState,
    phys: &PhysicsParams,
    vparams: &VortexParams,
    geom: &DomainGeom,
    dt_secs: f64,
    ranks: usize,
) -> Fields {
    let inp = StepInputs {
        old,
        vortex,
        phys,
        vparams,
        geom,
        dt_secs,
    };
    if ranks <= 1 {
        return step_serial(&inp);
    }
    let (nx, ny) = (old.nx(), old.ny());
    let bands = band_ranges(ny, ranks);
    let nranks = bands.len();

    // One channel per directed neighbour edge: up[r] carries rank r's top
    // boundary row to rank r+1; down[r] carries rank r+1's bottom row to
    // rank r.
    let mut up_tx = Vec::new();
    let mut up_rx = Vec::new();
    let mut down_tx = Vec::new();
    let mut down_rx = Vec::new();
    for _ in 0..nranks.saturating_sub(1) {
        let (tx, rx) = bounded::<Vec<f64>>(1);
        up_tx.push(tx);
        up_rx.push(rx);
        let (tx, rx) = bounded::<Vec<f64>>(1);
        down_tx.push(tx);
        down_rx.push(rx);
    }
    let (result_tx, result_rx) = bounded::<(usize, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>)>(nranks);

    crossbeam::thread::scope(|s| {
        for (r, &(j0, j1)) in bands.iter().enumerate() {
            let rows = j1 - j0;
            let inp = &inp;
            // Channel endpoints owned by this rank.
            let send_up = if r + 1 < nranks {
                Some(up_tx[r].clone())
            } else {
                None
            };
            let recv_up = if r > 0 {
                Some(up_rx[r - 1].clone())
            } else {
                None
            };
            let send_down = if r > 0 {
                Some(down_tx[r - 1].clone())
            } else {
                None
            };
            let recv_down = if r + 1 < nranks {
                Some(down_rx[r].clone())
            } else {
                None
            };
            let result_tx = result_tx.clone();

            s.spawn(move |_| {
                // Continuity pass on the local band (reads shared old
                // state; its halo is implicit in that read-only borrow,
                // like the initial scatter of an MPI run).
                let mut eta_local = vec![0.0; rows * nx];
                step_eta_rows(inp, j0, j1, &mut eta_local);
                // The tracer reads only the old state: no exchange needed.
                let mut q_local = vec![0.0; rows * nx];
                step_q_rows(inp, j0, j1, &mut q_local);

                // Halo exchange of the *new* eta: send boundary rows...
                if let Some(tx) = &send_up {
                    tx.send(eta_local[(rows - 1) * nx..].to_vec())
                        .expect("neighbour alive");
                }
                if let Some(tx) = &send_down {
                    tx.send(eta_local[..nx].to_vec()).expect("neighbour alive");
                }
                // ... and receive the neighbours' into halo rows.
                let halo_below = recv_up.map(|rx| rx.recv().expect("neighbour alive"));
                let halo_above = recv_down.map(|rx| rx.recv().expect("neighbour alive"));

                // Assemble the extended local eta (with halos) laid out as
                // the global array slice this rank can see: rows
                // (j0-1)..(j1+1) clipped to the domain.
                let jlo = j0.saturating_sub(1);
                let jhi = (j1 + 1).min(ny);
                let mut eta_ext = vec![0.0; (jhi - jlo) * nx];
                if let Some(h) = &halo_below {
                    eta_ext[..nx].copy_from_slice(h);
                }
                let off = (j0 - jlo) * nx;
                eta_ext[off..off + rows * nx].copy_from_slice(&eta_local);
                if let Some(h) = &halo_above {
                    let tail = eta_ext.len() - nx;
                    eta_ext[tail..].copy_from_slice(h);
                }

                // Momentum pass needs a full-array view; build a shim that
                // is zero outside the extended window (never read there:
                // the stencil only reaches one row beyond the band).
                let mut eta_full = vec![0.0; nx * ny];
                eta_full[jlo * nx..jhi * nx].copy_from_slice(&eta_ext);
                let mut u_local = vec![0.0; rows * nx];
                let mut v_local = vec![0.0; rows * nx];
                step_uv_rows(inp, &eta_full, j0, j1, &mut u_local, &mut v_local);

                result_tx
                    .send((r, eta_local, u_local, v_local, q_local))
                    .expect("main alive");
            });
        }
    })
    .expect("rank panicked");
    drop(result_tx);

    // Gather.
    let mut new = Fields::zeros(nx, ny, old.dx_km);
    new.origin_x_km = old.origin_x_km;
    new.origin_y_km = old.origin_y_km;
    while let Ok((r, eta_l, u_l, v_l, q_l)) = result_rx.recv() {
        let (j0, j1) = bands[r];
        new.eta.data_mut()[j0 * nx..j1 * nx].copy_from_slice(&eta_l);
        new.u.data_mut()[j0 * nx..j1 * nx].copy_from_slice(&u_l);
        new.v.data_mut()[j0 * nx..j1 * nx].copy_from_slice(&v_l);
        new.q.data_mut()[j0 * nx..j1 * nx].copy_from_slice(&q_l);
    }
    new
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::DomainGeom;

    fn setup() -> (Fields, VortexState, PhysicsParams, VortexParams, DomainGeom) {
        let geom = DomainGeom::bay_of_bengal();
        let phys = PhysicsParams::bay_of_bengal();
        let vparams = VortexParams::aila();
        let vortex = VortexState::genesis(&vparams, &geom);
        let mut fields = Fields::zeros(36, 30, 192.0);
        // Start from the analytic state so one step produces non-trivial
        // tendencies everywhere.
        for j in 0..fields.ny() {
            for i in 0..fields.nx() {
                let (x, y) = (fields.x_km(i), fields.y_km(j));
                fields
                    .eta
                    .set(i, j, vortex.target_eta(x, y, &vparams) * 0.5);
                let (u, v) = vortex.target_uv(x, y, &vparams);
                fields.u.set(i, j, u * 0.5);
                fields.v.set(i, j, v * 0.5);
            }
        }
        (fields, vortex, phys, vparams, geom)
    }

    #[test]
    fn band_ranges_cover_exactly() {
        for n in [1usize, 2, 7, 30, 31] {
            for parts in [1usize, 2, 3, 8, 64] {
                let bands = band_ranges(n, parts);
                assert_eq!(bands[0].0, 0);
                assert_eq!(bands.last().unwrap().1, n);
                for w in bands.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "bands contiguous");
                }
                assert!(bands.iter().all(|&(a, b)| b > a), "bands non-empty");
                assert!(bands.len() <= parts);
            }
        }
    }

    #[test]
    fn parallel_step_matches_serial_bitwise() {
        let (fields, vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let serial = step(&fields, &vortex, &phys, &vparams, &geom, dt, 1);
        for threads in [2usize, 3, 4, 7] {
            let par = step(&fields, &vortex, &phys, &vparams, &geom, dt, threads);
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn halo_rank_step_matches_serial_bitwise() {
        let (fields, vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let serial = step(&fields, &vortex, &phys, &vparams, &geom, dt, 1);
        for ranks in [2usize, 3, 5, 8] {
            let mp = step_halo_ranks(&fields, &vortex, &phys, &vparams, &geom, dt, ranks);
            assert_eq!(serial, mp, "ranks = {ranks}");
        }
    }

    #[test]
    fn more_ranks_than_rows_is_fine() {
        let (fields, vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let serial = step(&fields, &vortex, &phys, &vparams, &geom, dt, 1);
        let par = step(&fields, &vortex, &phys, &vparams, &geom, dt, 1000);
        let mp = step_halo_ranks(&fields, &vortex, &phys, &vparams, &geom, dt, 1000);
        assert_eq!(serial, par);
        assert_eq!(serial, mp);
    }

    #[test]
    fn repeated_steps_stay_finite_and_track_vortex() {
        let (mut fields, mut vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        for _ in 0..100 {
            fields = step(&fields, &vortex, &phys, &vparams, &geom, dt, 2);
            vortex.advance(dt, &vparams, &geom);
            assert!(fields.all_finite());
        }
        // After ~100 steps of nudging, the field minimum should sit near
        // the vortex centre.
        let (p_min, x, y) = fields.min_pressure(vparams.hpa_per_eta_m);
        assert!(p_min < 1010.0, "a depression formed: {p_min}");
        let dist = ((x - vortex.x_km).powi(2) + (y - vortex.y_km).powi(2)).sqrt();
        assert!(dist < 600.0, "eye within a few grid cells: {dist} km");
    }
}
