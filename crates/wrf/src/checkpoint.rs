//! Checkpoint / restart.
//!
//! The paper's job handler stops WRF and "restarts WRF using WRF
//! checkpointed data with the new application configuration". The
//! checkpoint here is a self-contained [`ncdf`] dataset: every
//! configuration scalar as attributes, every prognostic field as an `f64`
//! variable — so a restore needs nothing but the bytes, and a restored
//! model continues the trajectory bit-exactly (tested).
//!
//! For crash consistency the bytes can also be written as a *snapshot
//! file* ([`write_snapshot_file`] / [`WrfModel::checkpoint_to_file`]): a versioned,
//! CRC-32-checksummed container, written tmp + fsync + atomic rename so a
//! reader only ever sees a complete old snapshot or a complete new one —
//! never a torn write. The recovery supervisor uses the same container
//! for its checkpoint bundles and receiver-state snapshots.

use crate::fields::Fields;
use crate::grid::Grid2;
use crate::model::{ModelConfig, ModelError, WrfModel};
use crate::nest::{Nest, NestConfig};
use crate::solver::{KernelPath, PhysicsParams};
use crate::vortex::{VortexParams, VortexState};
use crate::DomainGeom;
use ncdf::{AttrValue, Data, Dataset, DimId};
use resources::crc32;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// Magic prefix of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"ACPS";

/// Current snapshot container version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Snapshot header: magic | u32 LE version | u32 LE crc32(payload) |
/// u64 LE payload length, then the payload.
const SNAPSHOT_HEADER_LEN: usize = 4 + 4 + 4 + 8;

/// Write `payload` to `path` as a checksummed snapshot: the bytes go to a
/// sibling `.tmp` file, are fsynced, and atomically renamed over `path`
/// (the directory is synced too, best-effort). A crash at any point
/// leaves either the old snapshot or the new one — never a mix.
pub fn write_snapshot_file(path: &Path, payload: &[u8]) -> io::Result<()> {
    let mut buf = Vec::with_capacity(SNAPSHOT_HEADER_LEN + payload.len());
    buf.extend_from_slice(&SNAPSHOT_MAGIC);
    buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);

    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&buf)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Read and verify a snapshot written by [`write_snapshot_file`].
/// Corruption (bad magic, unknown version, short file, CRC mismatch)
/// comes back as [`io::ErrorKind::InvalidData`] so callers can fall back
/// to an older snapshot.
pub fn read_snapshot_file(path: &Path) -> io::Result<Vec<u8>> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    let bad = |what: &str| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("snapshot {}: {what}", path.display()),
        )
    };
    if data.len() < SNAPSHOT_HEADER_LEN {
        return Err(bad("shorter than its header"));
    }
    if data[..4] != SNAPSHOT_MAGIC {
        return Err(bad("bad magic"));
    }
    let version = u32::from_le_bytes(data[4..8].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(bad("unknown version"));
    }
    let crc = u32::from_le_bytes(data[8..12].try_into().unwrap());
    let len = u64::from_le_bytes(data[12..20].try_into().unwrap()) as usize;
    if data.len() != SNAPSHOT_HEADER_LEN + len {
        return Err(bad("payload length mismatch"));
    }
    let payload = &data[SNAPSHOT_HEADER_LEN..];
    if crc32(payload) != crc {
        return Err(bad("CRC mismatch"));
    }
    Ok(payload.to_vec())
}

impl WrfModel {
    /// Serialize the complete model state.
    pub fn checkpoint(&self) -> Vec<u8> {
        let (cfg, fields, nest, vortex, sim_secs, steps) = self.parts();
        let mut ds = Dataset::new();
        ds.set_attr("kind", AttrValue::Text("wrf-lite checkpoint".into()));
        ds.set_attr(
            "geom",
            AttrValue::F64List(vec![
                cfg.geom.lon_west,
                cfg.geom.lat_south,
                cfg.geom.lon_span,
                cfg.geom.lat_span,
                cfg.geom.km_per_deg_lon,
            ]),
        );
        ds.set_attr(
            "phys",
            AttrValue::F64List(vec![
                cfg.phys.gravity,
                cfg.phys.mean_depth_m,
                cfg.phys.coriolis_f0,
                cfg.phys.beta,
                cfg.phys.rayleigh,
                cfg.phys.diffusion_courant,
                cfg.phys.nudge_tau_secs,
                cfg.phys.y_center_km,
                cfg.phys.q_land,
                cfg.phys.q_sea,
                cfg.phys.q_vortex_boost,
                cfg.phys.q_tau_secs,
            ]),
        );
        ds.set_attr(
            "vortex_params",
            AttrValue::F64List(vec![
                cfg.vortex.start_lon,
                cfg.vortex.start_lat,
                cfg.vortex.steer_east_ms,
                cfg.vortex.steer_north_ms,
                cfg.vortex.initial_depth_hpa,
                cfg.vortex.max_depth_hpa,
                cfg.vortex.deepen_rate_per_hour,
                cfg.vortex.fill_rate_per_hour,
                cfg.vortex.radius_km,
                cfg.vortex.hpa_per_eta_m,
                cfg.vortex.wind_per_depth,
            ]),
        );
        ds.set_attr(
            "nest_cfg",
            AttrValue::F64List(vec![
                cfg.nest.ratio as f64,
                cfg.nest.width_km,
                cfg.nest.height_km,
                cfg.nest.recenter_km,
            ]),
        );
        ds.set_attr("resolution_km", AttrValue::F64(cfg.resolution_km));
        ds.set_attr("decimation", AttrValue::I64(cfg.decimation as i64));
        ds.set_attr("kernel_path", AttrValue::I64(cfg.kernel_path.as_index()));
        ds.set_attr("sim_secs", AttrValue::F64(sim_secs));
        ds.set_attr("steps_taken", AttrValue::I64(steps as i64));
        ds.set_attr(
            "vortex_state",
            AttrValue::F64List(vec![vortex.x_km, vortex.y_km, vortex.depth_hpa]),
        );

        put_fields(&mut ds, "parent", fields);
        if let Some(n) = nest {
            put_fields(&mut ds, "nest", &n.fields);
        }
        ds.to_bytes().to_vec()
    }

    /// Checkpoint straight to a durable snapshot file (tmp + fsync +
    /// atomic rename).
    pub fn checkpoint_to_file(&self, path: &Path) -> io::Result<()> {
        write_snapshot_file(path, &self.checkpoint())
    }

    /// Restore from a snapshot file written by
    /// [`checkpoint_to_file`](Self::checkpoint_to_file). I/O problems and
    /// container corruption both surface as
    /// [`ModelError::BadCheckpoint`].
    pub fn restore_from_file(path: &Path) -> Result<Self, ModelError> {
        let payload =
            read_snapshot_file(path).map_err(|e| ModelError::BadCheckpoint(e.to_string()))?;
        Self::restore(&payload)
    }

    /// Rebuild a model from checkpoint bytes.
    pub fn restore(bytes: &[u8]) -> Result<Self, ModelError> {
        let ds =
            Dataset::from_bytes(bytes).map_err(|e| ModelError::BadCheckpoint(e.to_string()))?;
        let list = |name: &str, len: usize| -> Result<Vec<f64>, ModelError> {
            let v = ds
                .attr(name)
                .and_then(|a| a.as_f64_list())
                .ok_or_else(|| ModelError::BadCheckpoint(format!("missing attr {name}")))?;
            if v.len() != len {
                return Err(ModelError::BadCheckpoint(format!(
                    "attr {name} has {} values, expected {len}",
                    v.len()
                )));
            }
            Ok(v.to_vec())
        };
        let scalar = |name: &str| -> Result<f64, ModelError> {
            ds.attr(name)
                .and_then(|a| a.as_f64())
                .ok_or_else(|| ModelError::BadCheckpoint(format!("missing attr {name}")))
        };

        let g = list("geom", 5)?;
        let geom = DomainGeom {
            lon_west: g[0],
            lat_south: g[1],
            lon_span: g[2],
            lat_span: g[3],
            km_per_deg_lon: g[4],
        };
        let p = list("phys", 12)?;
        let phys = PhysicsParams {
            gravity: p[0],
            mean_depth_m: p[1],
            coriolis_f0: p[2],
            beta: p[3],
            rayleigh: p[4],
            diffusion_courant: p[5],
            nudge_tau_secs: p[6],
            y_center_km: p[7],
            q_land: p[8],
            q_sea: p[9],
            q_vortex_boost: p[10],
            q_tau_secs: p[11],
        };
        let v = list("vortex_params", 11)?;
        let vortex_params = VortexParams {
            start_lon: v[0],
            start_lat: v[1],
            steer_east_ms: v[2],
            steer_north_ms: v[3],
            initial_depth_hpa: v[4],
            max_depth_hpa: v[5],
            deepen_rate_per_hour: v[6],
            fill_rate_per_hour: v[7],
            radius_km: v[8],
            hpa_per_eta_m: v[9],
            wind_per_depth: v[10],
        };
        let n = list("nest_cfg", 4)?;
        let nest_cfg = NestConfig {
            ratio: n[0] as usize,
            width_km: n[1],
            height_km: n[2],
            recenter_km: n[3],
        };
        // Absent in pre-lanes checkpoints: default. Present but unknown:
        // reject rather than silently run a different kernel.
        let kernel_path = match ds.attr("kernel_path").and_then(|a| a.as_f64()) {
            None => KernelPath::default(),
            Some(idx) => KernelPath::from_index(idx as i64).ok_or_else(|| {
                ModelError::BadCheckpoint(format!("unknown kernel_path index {idx}"))
            })?,
        };
        let cfg = ModelConfig {
            geom,
            phys,
            vortex: vortex_params,
            nest: nest_cfg,
            resolution_km: scalar("resolution_km")?,
            decimation: scalar("decimation")? as usize,
            kernel_path,
        };
        let vs = list("vortex_state", 3)?;
        let vortex = VortexState {
            x_km: vs[0],
            y_km: vs[1],
            depth_hpa: vs[2],
        };
        let fields = get_fields(&ds, "parent")?;
        let nest = if ds.var("nest_eta").is_some() {
            let nf = get_fields(&ds, "nest")?;
            Some(Nest::from_checkpoint(nf, nest_cfg))
        } else {
            None
        };

        WrfModel::from_parts(
            cfg,
            fields,
            nest,
            vortex,
            scalar("sim_secs")?,
            scalar("steps_taken")? as u64,
        )
    }
}

impl Nest {
    /// Reassemble a nest from checkpointed fields.
    pub(crate) fn from_checkpoint(fields: Fields, cfg: NestConfig) -> Nest {
        Nest::from_fields(fields, cfg)
    }
}

fn put_fields(ds: &mut Dataset, prefix: &str, f: &Fields) {
    let y = ds
        .add_dim(format!("{prefix}_sn"), f.ny())
        .expect("unique dims per prefix");
    let x = ds
        .add_dim(format!("{prefix}_we"), f.nx())
        .expect("unique dims per prefix");
    ds.set_attr(
        format!("{prefix}_meta"),
        AttrValue::F64List(vec![f.dx_km, f.origin_x_km, f.origin_y_km]),
    );
    let add = |ds: &mut Dataset, name: String, g: &Grid2, dims: &[DimId]| {
        ds.add_var(name, dims, Data::F64(g.data().to_vec()))
            .expect("shape matches grid");
    };
    add(ds, format!("{prefix}_eta"), &f.eta, &[y, x]);
    add(ds, format!("{prefix}_u"), &f.u, &[y, x]);
    add(ds, format!("{prefix}_v"), &f.v, &[y, x]);
    add(ds, format!("{prefix}_q"), &f.q, &[y, x]);
}

fn get_fields(ds: &Dataset, prefix: &str) -> Result<Fields, ModelError> {
    let meta = ds
        .attr(&format!("{prefix}_meta"))
        .and_then(|a| a.as_f64_list())
        .ok_or_else(|| ModelError::BadCheckpoint(format!("missing {prefix}_meta")))?;
    if meta.len() != 3 {
        return Err(ModelError::BadCheckpoint(format!("bad {prefix}_meta")));
    }
    let grid = |name: String| -> Result<Grid2, ModelError> {
        let var = ds
            .var(&name)
            .ok_or_else(|| ModelError::BadCheckpoint(format!("missing var {name}")))?;
        let shape = var.shape(ds);
        if shape.len() != 2 {
            return Err(ModelError::BadCheckpoint(format!("{name} is not 2-D")));
        }
        let data = var
            .data
            .as_f64()
            .ok_or_else(|| ModelError::BadCheckpoint(format!("{name} is not f64")))?;
        let (ny, nx) = (shape[0], shape[1]);
        if nx == 0 || ny == 0 {
            return Err(ModelError::BadCheckpoint(format!("{name} has empty dims")));
        }
        let mut g = Grid2::zeros(nx, ny);
        g.data_mut().copy_from_slice(data);
        Ok(g)
    };
    let eta = grid(format!("{prefix}_eta"))?;
    let u = grid(format!("{prefix}_u"))?;
    let v = grid(format!("{prefix}_v"))?;
    let q = grid(format!("{prefix}_q"))?;
    let same = |g: &Grid2| g.nx() == eta.nx() && g.ny() == eta.ny();
    if !same(&u) || !same(&v) || !same(&q) {
        return Err(ModelError::BadCheckpoint("field shapes disagree".into()));
    }
    if !(meta[0] > 0.0 && meta[0].is_finite()) {
        return Err(ModelError::BadCheckpoint(
            "non-positive grid spacing".into(),
        ));
    }
    let mut f = Fields::zeros(eta.nx(), eta.ny(), meta[0]);
    f.eta = eta;
    f.u = u;
    f.v = v;
    f.q = q;
    f.origin_x_km = meta[1];
    f.origin_y_km = meta[2];
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> WrfModel {
        let cfg = ModelConfig::aila_default().with_decimation(8);
        WrfModel::new(cfg).unwrap()
    }

    #[test]
    fn roundtrip_without_nest() {
        let mut m = model();
        m.advance_steps(7, 1).unwrap();
        let bytes = m.checkpoint();
        let r = WrfModel::restore(&bytes).unwrap();
        assert_eq!(m, r);
    }

    #[test]
    fn roundtrip_with_nest() {
        let mut m = model();
        m.advance_steps(3, 1).unwrap();
        m.spawn_nest();
        m.advance_steps(3, 1).unwrap();
        let r = WrfModel::restore(&m.checkpoint()).unwrap();
        assert_eq!(m, r);
        assert!(r.has_nest());
    }

    #[test]
    fn restart_continues_bit_exactly() {
        // Uninterrupted run vs checkpoint-restore-continue: identical.
        let mut a = model();
        a.advance_steps(10, 1).unwrap();

        let mut b = model();
        b.advance_steps(4, 1).unwrap();
        let mut b2 = WrfModel::restore(&b.checkpoint()).unwrap();
        b2.advance_steps(6, 1).unwrap();

        assert_eq!(a, b2);
    }

    #[test]
    fn restart_on_different_thread_count_is_identical() {
        let mut a = model();
        a.advance_steps(8, 2).unwrap();

        let mut b = model();
        b.advance_steps(4, 1).unwrap();
        let mut b2 = WrfModel::restore(&b.checkpoint()).unwrap();
        // "Rescheduled on a different number of processors."
        b2.advance_steps(4, 3).unwrap();
        assert_eq!(a, b2);
    }

    #[test]
    fn kernel_path_round_trips_and_defaults_when_absent() {
        // Scalar path survives a checkpoint round trip.
        let cfg = ModelConfig::aila_default()
            .with_decimation(8)
            .with_kernel_path(KernelPath::Scalar);
        let mut m = WrfModel::new(cfg).unwrap();
        m.advance_steps(3, 2).unwrap();
        let r = WrfModel::restore(&m.checkpoint()).unwrap();
        assert_eq!(r.config().kernel_path, KernelPath::Scalar);
        assert_eq!(m, r);

        // A pre-lanes checkpoint (no kernel_path attr) restores with the
        // default path — old snapshots stay loadable.
        let bytes = m.checkpoint();
        let mut ds = Dataset::from_bytes(&bytes).unwrap();
        ds.remove_attr("kernel_path");
        let legacy = WrfModel::restore(&ds.to_bytes()).unwrap();
        assert_eq!(legacy.config().kernel_path, KernelPath::default());

        // An unknown index is corruption, not a silent fallback.
        let mut ds = Dataset::from_bytes(&bytes).unwrap();
        ds.set_attr("kernel_path", AttrValue::I64(42));
        assert!(matches!(
            WrfModel::restore(&ds.to_bytes()),
            Err(ModelError::BadCheckpoint(_))
        ));
    }

    #[test]
    fn garbage_rejected() {
        assert!(matches!(
            WrfModel::restore(b"not a checkpoint"),
            Err(ModelError::BadCheckpoint(_))
        ));
        // Valid ncdf but missing attributes.
        let empty = Dataset::new().to_bytes();
        assert!(matches!(
            WrfModel::restore(&empty),
            Err(ModelError::BadCheckpoint(_))
        ));
    }

    #[test]
    fn truncated_checkpoint_rejected() {
        let m = model();
        let bytes = m.checkpoint();
        let r = WrfModel::restore(&bytes[..bytes.len() / 2]);
        assert!(matches!(r, Err(ModelError::BadCheckpoint(_))));
    }

    fn tmppath(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("wrf-snapshot-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("state.acp")
    }

    #[test]
    fn snapshot_file_roundtrip_is_bit_exact() {
        let path = tmppath("roundtrip");
        let mut m = model();
        m.advance_steps(5, 1).unwrap();
        m.checkpoint_to_file(&path).unwrap();
        let r = WrfModel::restore_from_file(&path).unwrap();
        assert_eq!(m, r);
        // The tmp sibling must not linger after the atomic rename.
        assert!(!path.with_extension("tmp").exists());
    }

    #[test]
    fn snapshot_file_rewrite_replaces_atomically() {
        let path = tmppath("rewrite");
        let mut m = model();
        m.checkpoint_to_file(&path).unwrap();
        m.advance_steps(4, 1).unwrap();
        m.checkpoint_to_file(&path).unwrap();
        let r = WrfModel::restore_from_file(&path).unwrap();
        assert_eq!(m, r, "reader sees the newest complete snapshot");
    }

    #[test]
    fn corrupt_snapshot_file_is_invalid_data() {
        let path = tmppath("corrupt");
        let m = model();
        m.checkpoint_to_file(&path).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        let n = data.len();
        data[n / 2] ^= 0x5a;
        std::fs::write(&path, &data).unwrap();
        let err = read_snapshot_file(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(matches!(
            WrfModel::restore_from_file(&path),
            Err(ModelError::BadCheckpoint(_))
        ));
    }

    #[test]
    fn truncated_snapshot_file_is_invalid_data() {
        let path = tmppath("short");
        let m = model();
        m.checkpoint_to_file(&path).unwrap();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 7]).unwrap();
        let err = read_snapshot_file(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_version_snapshot_rejected() {
        let path = tmppath("version");
        write_snapshot_file(&path, b"payload").unwrap();
        let mut data = std::fs::read(&path).unwrap();
        data[4] = 99; // version field
        std::fs::write(&path, &data).unwrap();
        let err = read_snapshot_file(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn missing_snapshot_is_not_found_not_invalid() {
        let path = tmppath("absent");
        let err = read_snapshot_file(&path.with_file_name("nope.acp")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }
}
