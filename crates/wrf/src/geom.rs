//! Domain geometry: the forecast region, its grid, and the land/sea mask.
//!
//! The paper's parent domain spans 60°E–120°E and 10°S–40°N ("an area of
//! approximately 32×10⁶ sq. km"). We work on a local Cartesian plane in
//! kilometres with a fixed conversion at the domain's reference latitude —
//! adequate for a reduced model — and keep the lon/lat mapping for
//! geography (land mask, track output, figure labels).

use serde::{Deserialize, Serialize};

/// Kilometres per degree of latitude (spherical Earth).
pub const KM_PER_DEG_LAT: f64 = 111.2;

/// Rectangular forecast domain with a lon/lat anchor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainGeom {
    /// Western edge, degrees east.
    pub lon_west: f64,
    /// Southern edge, degrees north (negative = south).
    pub lat_south: f64,
    /// East–west extent in degrees.
    pub lon_span: f64,
    /// South–north extent in degrees.
    pub lat_span: f64,
    /// Kilometres per degree of longitude at the reference latitude.
    pub km_per_deg_lon: f64,
}

impl DomainGeom {
    /// The paper's domain: 60°E–120°E, 10°S–40°N. Longitude scale taken at
    /// 15°N (the cyclone's genesis latitude).
    pub fn bay_of_bengal() -> Self {
        DomainGeom {
            lon_west: 60.0,
            lat_south: -10.0,
            lon_span: 60.0,
            lat_span: 50.0,
            km_per_deg_lon: KM_PER_DEG_LAT * (15.0f64).to_radians().cos(),
        }
    }

    /// Domain width in kilometres.
    pub fn width_km(&self) -> f64 {
        self.lon_span * self.km_per_deg_lon
    }

    /// Domain height in kilometres.
    pub fn height_km(&self) -> f64 {
        self.lat_span * KM_PER_DEG_LAT
    }

    /// Grid extent `(nx, ny)` at `resolution_km` spacing (at least 2×2).
    pub fn grid_size(&self, resolution_km: f64) -> (usize, usize) {
        assert!(resolution_km > 0.0);
        let nx = (self.width_km() / resolution_km).round() as usize + 1;
        let ny = (self.height_km() / resolution_km).round() as usize + 1;
        (nx.max(2), ny.max(2))
    }

    /// Kilometre coordinates of a lon/lat point (origin at the domain's
    /// south-west corner).
    pub fn lonlat_to_km(&self, lon: f64, lat: f64) -> (f64, f64) {
        (
            (lon - self.lon_west) * self.km_per_deg_lon,
            (lat - self.lat_south) * KM_PER_DEG_LAT,
        )
    }

    /// Inverse of [`DomainGeom::lonlat_to_km`].
    pub fn km_to_lonlat(&self, x_km: f64, y_km: f64) -> (f64, f64) {
        (
            self.lon_west + x_km / self.km_per_deg_lon,
            self.lat_south + y_km / KM_PER_DEG_LAT,
        )
    }

    /// True when the kilometre point lies inside the domain.
    pub fn contains_km(&self, x_km: f64, y_km: f64) -> bool {
        (0.0..=self.width_km()).contains(&x_km) && (0.0..=self.height_km()).contains(&y_km)
    }

    /// Land/sea mask for the cyclone's world: a coarse Bay-of-Bengal
    /// coastline sufficient for the intensify-over-sea / decay-over-land
    /// lifecycle. Land is:
    /// - the Gangetic plain and Himalayan foothills north of 21.5°N,
    /// - the Indian peninsula west of a slanted east coast,
    /// - the Burmese coast east of 94°E.
    pub fn is_land(&self, lon: f64, lat: f64) -> bool {
        if lat >= 21.5 {
            return true;
        }
        // Indian east coast: runs roughly from (80°E, 8°N) to (87°E, 21.5°N).
        let coast_lon = 80.0 + (lat - 8.0) * (7.0 / 13.5);
        if lat >= 8.0 && lon <= coast_lon {
            return true;
        }
        // Burma / Andaman coast.
        if lon >= 94.0 && lat >= 10.0 {
            return true;
        }
        false
    }

    /// Land mask at kilometre coordinates.
    pub fn is_land_km(&self, x_km: f64, y_km: f64) -> bool {
        let (lon, lat) = self.km_to_lonlat(x_km, y_km);
        self.is_land(lon, lat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bay_of_bengal_extent_matches_paper() {
        let g = DomainGeom::bay_of_bengal();
        // ~32 million square kilometres.
        let area = g.width_km() * g.height_km();
        assert!(
            (3.0e7..4.0e7).contains(&area),
            "area {area} outside the paper's ~3.2e7 km²"
        );
    }

    #[test]
    fn lonlat_km_roundtrip() {
        let g = DomainGeom::bay_of_bengal();
        let (x, y) = g.lonlat_to_km(88.0, 14.0);
        let (lon, lat) = g.km_to_lonlat(x, y);
        assert!((lon - 88.0).abs() < 1e-9);
        assert!((lat - 14.0).abs() < 1e-9);
        assert!(x > 0.0 && y > 0.0);
    }

    #[test]
    fn grid_size_scales_with_resolution() {
        let g = DomainGeom::bay_of_bengal();
        let (nx24, ny24) = g.grid_size(24.0);
        let (nx10, ny10) = g.grid_size(10.0);
        assert!(nx10 > 2 * nx24 && ny10 > 2 * ny24);
        // 24 km over ~6450 km width → ~270 points.
        assert!((240..320).contains(&nx24), "nx24 = {nx24}");
        assert!((200..260).contains(&ny24), "ny24 = {ny24}");
    }

    #[test]
    fn land_mask_geography() {
        let g = DomainGeom::bay_of_bengal();
        assert!(!g.is_land(88.0, 14.0), "central Bay of Bengal is sea");
        assert!(g.is_land(88.4, 22.6), "Kolkata is land");
        assert!(g.is_land(88.3, 27.0), "Darjeeling is land");
        assert!(g.is_land(78.0, 15.0), "Indian peninsula is land");
        assert!(!g.is_land(90.0, 18.0), "northern bay is sea");
        assert!(g.is_land(96.0, 18.0), "Burma is land");
        assert!(!g.is_land(85.0, -5.0), "southern ocean is sea");
    }

    #[test]
    fn contains_km_bounds() {
        let g = DomainGeom::bay_of_bengal();
        assert!(g.contains_km(0.0, 0.0));
        assert!(g.contains_km(g.width_km(), g.height_km()));
        assert!(!g.contains_km(-1.0, 0.0));
        assert!(!g.contains_km(0.0, g.height_km() + 1.0));
    }

    #[test]
    fn aila_track_crosses_coast() {
        // The cyclone starts at sea (~88E, 14N) and ends on land near
        // Darjeeling (~88.3E, 27N): the mask must flip along the way.
        let g = DomainGeom::bay_of_bengal();
        let mut crossings = 0;
        let mut prev = g.is_land(88.0, 14.0);
        for step in 1..=100 {
            let lat = 14.0 + 13.0 * step as f64 / 100.0;
            let now = g.is_land(88.0 + 0.3 * step as f64 / 100.0, lat);
            if now != prev {
                crossings += 1;
            }
            prev = now;
        }
        assert_eq!(crossings, 1, "exactly one landfall");
    }
}
