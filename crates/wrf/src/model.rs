//! The top-level model: configuration, stepping, frames, lifecycle.

use crate::fields::Fields;
use crate::geom::DomainGeom;
use crate::nest::{Nest, NestConfig};
use crate::pool::WorkerPool;
use crate::solver::{KernelPath, PhysicsParams};
use crate::vortex::{VortexParams, VortexState};
use crate::{dt_for_resolution_secs, Grid2};
use ncdf::{AttrValue, Data, Dataset};
use serde::{Deserialize, Serialize};

/// Errors from model construction and control.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Requested resolution is non-positive or absurd for the domain.
    BadResolution(f64),
    /// Decimation must be at least 1.
    BadDecimation(usize),
    /// A checkpoint could not be decoded.
    BadCheckpoint(String),
    /// The integrator produced a non-finite value (CFL violation or
    /// corrupted state) — the run cannot continue.
    NumericalBlowup {
        /// Simulated seconds reached when the blow-up was detected.
        at_sim_secs: f64,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::BadResolution(r) => write!(f, "invalid resolution {r} km"),
            ModelError::BadDecimation(d) => write!(f, "invalid decimation {d}"),
            ModelError::BadCheckpoint(m) => write!(f, "bad checkpoint: {m}"),
            ModelError::NumericalBlowup { at_sim_secs } => {
                write!(f, "numerical blow-up at simulated t = {at_sim_secs} s")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Full model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Forecast domain geometry.
    pub geom: DomainGeom,
    /// Integrator parameters.
    pub phys: PhysicsParams,
    /// Cyclone scenario.
    pub vortex: VortexParams,
    /// Nest geometry (spawning is the caller's policy decision).
    pub nest: NestConfig,
    /// Nominal parent resolution, km — what the frame sizes, time step,
    /// and compute model are quoted at.
    pub resolution_km: f64,
    /// Physics-grid coarsening: the PDE integrates on a grid whose spacing
    /// is `resolution_km × decimation`. 1 = full resolution. Experiments
    /// that only need the pressure lifecycle and frames run decimated so a
    /// 60-hour mission integrates in milliseconds; the nominal resolution
    /// still drives dt, frame bytes, and the performance model.
    pub decimation: usize,
    /// Which stencil kernels the rank team runs: the original scalar path
    /// or the vectorized lanes path (default). Both are bitwise
    /// deterministic against their own serial reference; they differ from
    /// each other only in low-order floating-point bits (DESIGN.md §17).
    /// Old (pre-lanes) ncdf checkpoints restore with the default — see
    /// `checkpoint::restore`.
    pub kernel_path: KernelPath,
}

impl ModelConfig {
    /// The paper's Aila setup at 24 km, full-resolution physics.
    pub fn aila_default() -> Self {
        ModelConfig {
            geom: DomainGeom::bay_of_bengal(),
            phys: PhysicsParams::bay_of_bengal(),
            vortex: VortexParams::aila(),
            nest: NestConfig::aila(),
            resolution_km: 24.0,
            decimation: 1,
            kernel_path: KernelPath::default(),
        }
    }

    /// Builder: physics-grid coarsening factor.
    pub fn with_decimation(mut self, d: usize) -> Self {
        self.decimation = d;
        self
    }

    /// Builder: nominal parent resolution.
    pub fn with_resolution(mut self, km: f64) -> Self {
        self.resolution_km = km;
        self
    }

    /// Builder: stencil kernel path.
    pub fn with_kernel_path(mut self, path: KernelPath) -> Self {
        self.kernel_path = path;
        self
    }

    /// Physics-grid spacing, km.
    pub fn physics_dx_km(&self) -> f64 {
        self.resolution_km * self.decimation as f64
    }

    /// Physics-grid extent.
    pub fn physics_grid(&self) -> (usize, usize) {
        self.geom.grid_size(self.physics_dx_km())
    }

    /// Nominal grid extent at the quoted resolution (sizes frames and the
    /// performance model's workload).
    pub fn nominal_grid(&self) -> (usize, usize) {
        self.geom.grid_size(self.resolution_km)
    }

    fn validate(&self) -> Result<(), ModelError> {
        if !(self.resolution_km > 0.0 && self.resolution_km.is_finite()) {
            return Err(ModelError::BadResolution(self.resolution_km));
        }
        if self.decimation == 0 {
            return Err(ModelError::BadDecimation(0));
        }
        let (nx, ny) = self.physics_grid();
        if nx < 4 || ny < 4 {
            return Err(ModelError::BadResolution(self.resolution_km));
        }
        Ok(())
    }
}

/// Ephemeral per-process machinery of a running model: the persistent
/// integrator rank team and the double-buffer scratch fields. Not part of
/// the model *state* — it is rebuilt lazily after clone or checkpoint
/// restore, compares equal to everything, and is never serialized.
#[derive(Debug)]
struct Runtime {
    /// Long-lived rank team; spawned on the first `advance_steps` and
    /// resized (not respawned per step) when the worker count changes.
    pool: Option<WorkerPool>,
    /// Ping-pong partner of the parent `fields` buffer.
    scratch: Fields,
    /// Ping-pong partner of the nest fields.
    nest_scratch: Fields,
}

impl Default for Runtime {
    fn default() -> Self {
        // Minimal placeholder shapes: the first step reshapes in place.
        Runtime {
            pool: None,
            scratch: Fields::zeros(1, 1, 1.0),
            nest_scratch: Fields::zeros(1, 1, 1.0),
        }
    }
}

impl Clone for Runtime {
    fn clone(&self) -> Self {
        // A cloned model gets fresh lazy machinery, not shared threads.
        Runtime::default()
    }
}

impl PartialEq for Runtime {
    fn eq(&self, _: &Self) -> bool {
        // Runtime machinery never participates in state comparisons (the
        // restart logic compares models across different worker counts).
        true
    }
}

impl Runtime {
    fn ensure_pool(&mut self, workers: usize, path: KernelPath) {
        match &mut self.pool {
            Some(p) => {
                if p.workers() != workers {
                    p.resize(workers);
                }
                if p.kernel_path() != path {
                    p.set_kernel_path(path);
                }
            }
            None => self.pool = Some(WorkerPool::with_kernel_path(workers, path)),
        }
    }
}

/// A running simulation instance (the paper's "WRF simulation process").
#[derive(Debug, Clone, PartialEq)]
pub struct WrfModel {
    cfg: ModelConfig,
    fields: Fields,
    nest: Option<Nest>,
    vortex: VortexState,
    sim_secs: f64,
    steps_taken: u64,
    runtime: Runtime,
}

impl WrfModel {
    /// Cold-start the model at mission time zero from the analytic state.
    pub fn new(cfg: ModelConfig) -> Result<Self, ModelError> {
        cfg.validate()?;
        let (nx, ny) = cfg.physics_grid();
        let vortex = VortexState::genesis(&cfg.vortex, &cfg.geom);
        let mut fields = Fields::zeros(nx, ny, cfg.physics_dx_km());
        for j in 0..ny {
            for i in 0..nx {
                let (x, y) = (fields.x_km(i), fields.y_km(j));
                fields.eta.set(i, j, vortex.target_eta(x, y, &cfg.vortex));
                let (u, v) = vortex.target_uv(x, y, &cfg.vortex);
                fields.u.set(i, j, u);
                fields.v.set(i, j, v);
                // Moisture starts at its land/sea background.
                let q0 = if cfg.geom.is_land_km(x, y) {
                    cfg.phys.q_land
                } else {
                    cfg.phys.q_sea
                };
                fields.q.set(i, j, q0);
            }
        }
        Ok(WrfModel {
            cfg,
            fields,
            nest: None,
            vortex,
            sim_secs: 0.0,
            steps_taken: 0,
            runtime: Runtime::default(),
        })
    }

    /// Active configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Integration time step, seconds (WRF's 6 s/km rule at the nominal
    /// resolution).
    pub fn dt_secs(&self) -> f64 {
        dt_for_resolution_secs(self.cfg.resolution_km)
    }

    /// Simulated time reached, seconds from mission start.
    pub fn sim_secs(&self) -> f64 {
        self.sim_secs
    }

    /// Simulated time reached, minutes from mission start.
    pub fn sim_minutes(&self) -> f64 {
        self.sim_secs / 60.0
    }

    /// Total integration steps taken (parent steps).
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Parent-grid prognostic fields.
    pub fn fields(&self) -> &Fields {
        &self.fields
    }

    /// The live nest, if one is spawned.
    pub fn nest(&self) -> Option<&Nest> {
        self.nest.as_ref()
    }

    /// True when a nest is active.
    pub fn has_nest(&self) -> bool {
        self.nest.is_some()
    }

    /// Analytic vortex state (truth for tests and diagnostics).
    pub fn vortex(&self) -> &VortexState {
        &self.vortex
    }

    /// Advance exactly `n` parent steps on `threads` workers.
    ///
    /// The rank team persists across calls; changing `threads` resizes it
    /// once, not per step. Each step ping-pongs the prognostic buffers
    /// through the runtime scratch fields, so the hot loop is
    /// allocation-free, and blow-up detection rides on the kernels'
    /// finite probes instead of an extra full-grid scan (nest feedback
    /// and re-centre only bilinearly sample probe-covered values, which
    /// cannot manufacture a non-finite parent point).
    pub fn advance_steps(&mut self, n: usize, threads: usize) -> Result<(), ModelError> {
        self.runtime.ensure_pool(threads, self.cfg.kernel_path);
        for _ in 0..n {
            let dt = self.dt_secs();
            let Runtime {
                pool,
                scratch,
                nest_scratch,
            } = &mut self.runtime;
            let pool = pool.as_mut().expect("pool ensured above");
            // Parent step (vortex frozen during the parent pass; the nest
            // substeps advance it through the same interval).
            let mut probe = pool.step(
                &self.fields,
                &self.vortex,
                &self.cfg.phys,
                &self.cfg.vortex,
                &self.cfg.geom,
                dt,
                scratch,
            );
            std::mem::swap(&mut self.fields, scratch);
            match &mut self.nest {
                Some(nest) => {
                    probe += nest.advance_parent_step(
                        &mut self.vortex,
                        &self.cfg.phys,
                        &self.cfg.vortex,
                        &self.cfg.geom,
                        dt,
                        pool,
                        nest_scratch,
                    );
                    nest.feedback(&mut self.fields);
                    let (ex, ey) = (self.vortex.x_km, self.vortex.y_km);
                    nest.maybe_recenter(&self.fields, ex, ey);
                }
                None => {
                    self.vortex.advance(dt, &self.cfg.vortex, &self.cfg.geom);
                }
            }
            self.sim_secs += dt;
            self.steps_taken += 1;
            if !probe.is_finite() {
                return Err(ModelError::NumericalBlowup {
                    at_sim_secs: self.sim_secs,
                });
            }
        }
        Ok(())
    }

    /// Advance until simulated time reaches at least `target_minutes`.
    pub fn advance_to_minutes(
        &mut self,
        target_minutes: f64,
        threads: usize,
    ) -> Result<(), ModelError> {
        while self.sim_minutes() < target_minutes {
            self.advance_steps(1, threads)?;
        }
        Ok(())
    }

    /// Minimum diagnosed surface pressure, hPa — from the nest when one is
    /// active (finer sampling of the eye), else the parent.
    pub fn min_pressure_hpa(&self) -> f64 {
        let hpa = self.cfg.vortex.hpa_per_eta_m;
        let parent_min = self.fields.min_pressure(hpa).0;
        match &self.nest {
            Some(n) => parent_min.min(n.fields.min_pressure(hpa).0),
            None => parent_min,
        }
    }

    /// Eye position (pressure minimum) in lon/lat.
    pub fn eye_lonlat(&self) -> (f64, f64) {
        let hpa = self.cfg.vortex.hpa_per_eta_m;
        let (_, x, y) = match &self.nest {
            Some(n) => n.fields.min_pressure(hpa),
            None => self.fields.min_pressure(hpa),
        };
        self.cfg.geom.km_to_lonlat(x, y)
    }

    /// Maximum wind speed over all grids, m/s.
    pub fn max_wind_ms(&self) -> f64 {
        let parent = self.fields.max_wind();
        match &self.nest {
            Some(n) => parent.max(n.fields.max_wind()),
            None => parent,
        }
    }

    /// Spawn the nest centred on the current eye (idempotent).
    pub fn spawn_nest(&mut self) {
        if self.nest.is_none() {
            self.nest = Some(Nest::spawn(
                &self.fields,
                self.cfg.nest,
                self.vortex.x_km,
                self.vortex.y_km,
            ));
        }
    }

    /// Remove the nest (e.g. after the cyclone dissipates).
    pub fn despawn_nest(&mut self) {
        self.nest = None;
    }

    /// Change the nominal resolution: resample the parent (and rebuild the
    /// nest) onto the new grid. This is the paper's "changes the resolution
    /// of the nest multiple times" — in WRF it requires a stop/restart,
    /// which the job handler accounts for separately.
    pub fn set_resolution(&mut self, km: f64) -> Result<(), ModelError> {
        if !(km > 0.0 && km.is_finite()) {
            return Err(ModelError::BadResolution(km));
        }
        let new_cfg = ModelConfig {
            resolution_km: km,
            ..self.cfg
        };
        new_cfg.validate()?;
        let (nx, ny) = new_cfg.physics_grid();
        self.fields = self.fields.resample(nx, ny, new_cfg.physics_dx_km());
        self.cfg = new_cfg;
        if let Some(nest) = &self.nest {
            self.nest = Some(nest.rebuild_for_parent(&self.fields));
        }
        Ok(())
    }

    /// Encode the current state as one history frame (the NetCDF stand-in
    /// the pipeline ships to the visualization site).
    pub fn frame(&self) -> Dataset {
        let mut ds = Dataset::new();
        ds.set_attr("title", AttrValue::Text("wrf-lite history frame".into()));
        ds.set_attr("sim_minutes", AttrValue::F64(self.sim_minutes()));
        ds.set_attr("resolution_km", AttrValue::F64(self.cfg.resolution_km));
        ds.set_attr("physics_dx_km", AttrValue::F64(self.fields.dx_km));
        ds.set_attr(
            "hpa_per_eta_m",
            AttrValue::F64(self.cfg.vortex.hpa_per_eta_m),
        );
        ds.set_attr(
            "domain_lonlat",
            AttrValue::F64List(vec![
                self.cfg.geom.lon_west,
                self.cfg.geom.lat_south,
                self.cfg.geom.lon_west + self.cfg.geom.lon_span,
                self.cfg.geom.lat_south + self.cfg.geom.lat_span,
            ]),
        );
        let (nx, ny) = (self.fields.nx(), self.fields.ny());
        let y = ds.add_dim("south_north", ny).expect("fresh dataset");
        let x = ds.add_dim("west_east", nx).expect("fresh dataset");
        let to_f32 = |g: &Grid2| Data::F32(g.data().iter().map(|&v| v as f32).collect());
        ds.add_var("eta", &[y, x], to_f32(&self.fields.eta))
            .expect("shape matches");
        ds.add_var("u", &[y, x], to_f32(&self.fields.u))
            .expect("shape matches");
        ds.add_var("v", &[y, x], to_f32(&self.fields.v))
            .expect("shape matches");
        ds.add_var("qvapor", &[y, x], to_f32(&self.fields.q))
            .expect("shape matches");
        ds.add_var(
            "pressure",
            &[y, x],
            to_f32(&self.fields.pressure_field(self.cfg.vortex.hpa_per_eta_m)),
        )
        .expect("shape matches");
        let land: Vec<u8> = (0..ny)
            .flat_map(|j| {
                (0..nx).map(move |i| {
                    u8::from(
                        self.cfg
                            .geom
                            .is_land_km(self.fields.x_km(i), self.fields.y_km(j)),
                    )
                })
            })
            .collect();
        ds.add_var("landmask", &[y, x], Data::U8(land))
            .expect("shape matches");

        if let Some(nest) = &self.nest {
            let (nnx, nny) = (nest.fields.nx(), nest.fields.ny());
            let nyd = ds.add_dim("nest_south_north", nny).expect("fresh dim");
            let nxd = ds.add_dim("nest_west_east", nnx).expect("fresh dim");
            ds.set_attr(
                "nest_origin_km",
                AttrValue::F64List(vec![nest.fields.origin_x_km, nest.fields.origin_y_km]),
            );
            ds.set_attr("nest_dx_km", AttrValue::F64(nest.fields.dx_km));
            ds.add_var("nest_eta", &[nyd, nxd], to_f32(&nest.fields.eta))
                .expect("shape matches");
            ds.add_var("nest_u", &[nyd, nxd], to_f32(&nest.fields.u))
                .expect("shape matches");
            ds.add_var("nest_v", &[nyd, nxd], to_f32(&nest.fields.v))
                .expect("shape matches");
            ds.add_var("nest_qvapor", &[nyd, nxd], to_f32(&nest.fields.q))
                .expect("shape matches");
            ds.add_var(
                "nest_pressure",
                &[nyd, nxd],
                to_f32(&nest.fields.pressure_field(self.cfg.vortex.hpa_per_eta_m)),
            )
            .expect("shape matches");
        }
        ds
    }

    // -- checkpoint plumbing (serialization lives in `checkpoint.rs`) -----

    pub(crate) fn parts(&self) -> (&ModelConfig, &Fields, Option<&Nest>, &VortexState, f64, u64) {
        (
            &self.cfg,
            &self.fields,
            self.nest.as_ref(),
            &self.vortex,
            self.sim_secs,
            self.steps_taken,
        )
    }

    pub(crate) fn from_parts(
        cfg: ModelConfig,
        fields: Fields,
        nest: Option<Nest>,
        vortex: VortexState,
        sim_secs: f64,
        steps_taken: u64,
    ) -> Result<Self, ModelError> {
        cfg.validate()?;
        Ok(WrfModel {
            cfg,
            fields,
            nest,
            vortex,
            sim_secs,
            steps_taken,
            runtime: Runtime::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> ModelConfig {
        // Heavy decimation: tiny physics grid, instant tests.
        ModelConfig::aila_default().with_decimation(8)
    }

    #[test]
    fn cold_start_has_weak_depression() {
        let m = WrfModel::new(fast_cfg()).unwrap();
        let p = m.min_pressure_hpa();
        assert!((1004.0..1010.0).contains(&p), "initial pressure {p}");
        assert_eq!(m.sim_secs(), 0.0);
        assert!(!m.has_nest());
    }

    #[test]
    fn dt_follows_wrf_rule() {
        let m = WrfModel::new(fast_cfg()).unwrap();
        assert_eq!(m.dt_secs(), 144.0); // 6 s/km × 24 km
    }

    #[test]
    fn advances_and_deepens() {
        let mut m = WrfModel::new(fast_cfg()).unwrap();
        let p0 = m.min_pressure_hpa();
        m.advance_to_minutes(12.0 * 60.0, 1).unwrap(); // 12 simulated hours
        assert!(m.sim_minutes() >= 12.0 * 60.0);
        let p1 = m.min_pressure_hpa();
        assert!(p1 < p0, "cyclone deepened: {p0} → {p1}");
        assert!(m.steps_taken() > 0);
    }

    #[test]
    fn nest_lifecycle() {
        let mut m = WrfModel::new(fast_cfg()).unwrap();
        m.advance_steps(5, 1).unwrap();
        m.spawn_nest();
        assert!(m.has_nest());
        m.spawn_nest(); // idempotent
        let before = m.min_pressure_hpa();
        m.advance_steps(5, 2).unwrap();
        assert!(m.min_pressure_hpa() <= before + 1.0);
        m.despawn_nest();
        assert!(!m.has_nest());
    }

    #[test]
    fn resolution_change_preserves_state_roughly() {
        let mut m = WrfModel::new(fast_cfg()).unwrap();
        m.advance_to_minutes(6.0 * 60.0, 1).unwrap();
        let p_before = m.min_pressure_hpa();
        let t_before = m.sim_minutes();
        m.set_resolution(18.0).unwrap();
        assert_eq!(m.config().resolution_km, 18.0);
        assert_eq!(
            m.sim_minutes(),
            t_before,
            "resolution change is not time travel"
        );
        let p_after = m.min_pressure_hpa();
        assert!(
            (p_before - p_after).abs() < 2.0,
            "pressure continuity across regrid: {p_before} vs {p_after}"
        );
        assert_eq!(m.dt_secs(), 108.0);
        // Finer grid has more points.
        let (nx, _) = m.config().physics_grid();
        assert!(
            nx > ModelConfig::aila_default()
                .with_decimation(8)
                .physics_grid()
                .0
        );
    }

    #[test]
    fn bad_configs_rejected() {
        assert!(matches!(
            WrfModel::new(ModelConfig::aila_default().with_resolution(-1.0)),
            Err(ModelError::BadResolution(_))
        ));
        assert!(matches!(
            WrfModel::new(ModelConfig::aila_default().with_decimation(0)),
            Err(ModelError::BadDecimation(0))
        ));
        let mut m = WrfModel::new(fast_cfg()).unwrap();
        assert!(m.set_resolution(f64::NAN).is_err());
    }

    #[test]
    fn frame_contains_expected_variables() {
        let mut m = WrfModel::new(fast_cfg()).unwrap();
        m.advance_steps(3, 1).unwrap();
        let ds = m.frame();
        for name in ["eta", "u", "v", "pressure", "landmask"] {
            assert!(ds.var(name).is_some(), "missing variable {name}");
        }
        assert!(ds.var("nest_eta").is_none());
        let t = ds.attr("sim_minutes").unwrap().as_f64().unwrap();
        assert!((t - m.sim_minutes()).abs() < 1e-9);

        m.spawn_nest();
        let ds = m.frame();
        assert!(ds.var("nest_eta").is_some());
        assert!(ds.var("nest_pressure").is_some());
        // Frames round-trip through the wire format.
        let back = Dataset::from_bytes(&ds.to_bytes()).unwrap();
        assert_eq!(back.var("pressure").unwrap().shape(&back), {
            let (nx, ny) = m.config().physics_grid();
            vec![ny, nx]
        });
    }

    #[test]
    fn moisture_tracer_behaves_physically() {
        let mut m = WrfModel::new(fast_cfg()).unwrap();
        m.advance_to_minutes(6.0 * 60.0, 1).unwrap();
        let f = m.fields();
        let geom = m.config().geom;
        // Sample a deep-sea point and a deep-land point.
        let mut sea = None;
        let mut land = None;
        for j in 0..f.ny() {
            for i in 0..f.nx() {
                let (lon, lat) = geom.km_to_lonlat(f.x_km(i), f.y_km(j));
                if sea.is_none() && (lon - 90.0).abs() < 2.0 && (lat - 5.0).abs() < 2.0 {
                    sea = Some(f.q.at(i, j));
                }
                if land.is_none() && (lon - 75.0).abs() < 2.0 && (lat - 25.0).abs() < 2.0 {
                    land = Some(f.q.at(i, j));
                }
            }
        }
        let (sea, land) = (sea.expect("sea point"), land.expect("land point"));
        assert!(sea > land, "maritime air moister: sea {sea} vs land {land}");
        // Tracer bounded by its sources.
        let phys = m.config().phys;
        for &q in f.q.data() {
            assert!(
                q >= phys.q_land * 0.5 && q <= (phys.q_sea + phys.q_vortex_boost) * 1.5,
                "tracer escaped its source range: {q}"
            );
        }
        // The frame carries it.
        let ds = m.frame();
        assert!(ds.var("qvapor").is_some());
    }

    #[test]
    fn eye_tracks_north_over_a_day() {
        let mut m = WrfModel::new(fast_cfg()).unwrap();
        let (_, lat0) = m.eye_lonlat();
        m.advance_to_minutes(24.0 * 60.0, 1).unwrap();
        let (_, lat1) = m.eye_lonlat();
        assert!(lat1 > lat0 + 1.0, "eye moved north: {lat0} → {lat1}");
    }

    #[test]
    fn scalar_kernel_path_still_advances() {
        let cfg = fast_cfg().with_kernel_path(crate::KernelPath::Scalar);
        let mut m = WrfModel::new(cfg).unwrap();
        m.advance_steps(10, 2).unwrap();
        assert_eq!(m.config().kernel_path, crate::KernelPath::Scalar);
        assert!(m.min_pressure_hpa().is_finite());
        // Scalar and lanes integrate the same physics; over a few steps the
        // trajectories stay close even though they differ in low-order bits.
        let mut l = WrfModel::new(fast_cfg()).unwrap();
        l.advance_steps(10, 2).unwrap();
        assert!((m.min_pressure_hpa() - l.min_pressure_hpa()).abs() < 1e-6);
    }

    #[test]
    fn threads_do_not_change_the_trajectory() {
        let run = |threads: usize| {
            let mut m = WrfModel::new(fast_cfg()).unwrap();
            m.advance_steps(20, threads).unwrap();
            m
        };
        let a = run(1);
        let b = run(3);
        assert_eq!(a, b, "thread count must not alter results");
    }
}
