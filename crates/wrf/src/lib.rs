//! Reduced mesoscale dynamical core — the WRF stand-in.
//!
//! The paper runs the Weather Research and Forecasting model (WRF) to track
//! tropical cyclone Aila across the Bay of Bengal at resolutions from 24 km
//! down to a 1:3 nest, writing a history frame every output interval. The
//! adaptive framework consumes four things from that simulation:
//!
//! 1. a realistic minimum-surface-pressure lifecycle (it drives the
//!    pressure→resolution schedule of Table III and nest spawning),
//! 2. per-step compute cost as a function of processors and resolution,
//! 3. history frames — sized by the grid — written through parallel I/O,
//! 4. stop / checkpoint / restart semantics for reconfiguration.
//!
//! This crate provides all four with a genuine PDE integrator: a linearized
//! shallow-water system on a beta plane (forward–backward time stepping,
//! Coriolis, Rayleigh damping, Laplacian diffusion) nudged toward an
//! analytic cyclone whose intensity obeys a logistic deepening law over
//! ocean and exponential filling over land, and whose track follows a
//! steering flow. A two-way moving nest refines the cyclone region at a
//! 1:3 ratio, exactly as the paper configures WRF.
//!
//! Parallelism mirrors the MPI decomposition two ways: a persistent
//! rank team ([`pool::WorkerPool`]) used for real speed — spawned once
//! per model, parked on a reusable barrier between passes, double-buffered
//! so the hot loop never allocates — and an explicit halo-exchange rank
//! solver ([`par::HaloWorkspace`]) that reproduces the message-passing
//! structure with reusable channels and boundary-row buffers. Both are
//! tested bitwise against the serial integrator.
//!
//! # Quickstart
//!
//! ```
//! use wrf::{ModelConfig, WrfModel};
//!
//! let cfg = ModelConfig::aila_default().with_decimation(16);
//! let mut model = WrfModel::new(cfg).unwrap();
//! model.advance_to_minutes(60.0, 1).unwrap(); // one simulated hour
//! let p = model.min_pressure_hpa();
//! assert!(p > 900.0 && p < 1020.0);
//! let frame = model.frame();
//! assert!(frame.var("pressure").is_some());
//! ```

pub mod checkpoint;
pub mod decomp;
mod fields;
mod geom;
mod grid;
mod model;
mod nest;
pub mod par;
pub mod pool;
mod simd;
mod solver;
mod vortex;

pub use fields::Fields;
pub use geom::DomainGeom;
pub use grid::Grid2;
pub use model::{ModelConfig, ModelError, WrfModel};
pub use nest::{Nest, NestConfig};
pub use pool::WorkerPool;
pub use solver::{KernelPath, PhysicsParams};
pub use vortex::{VortexParams, VortexState, BASE_PRESSURE_HPA};

/// WRF's rule of thumb tying the integration time step to resolution:
/// roughly six seconds per kilometre of grid spacing.
pub fn dt_for_resolution_secs(resolution_km: f64) -> f64 {
    assert!(resolution_km > 0.0);
    6.0 * resolution_km
}

/// Minimum parent-domain grid points each MPI rank must own (the paper's
/// "each MPI process should have at least 6x6 parent domain grid points").
pub const MIN_PARENT_POINTS_PER_RANK: usize = 6;
/// Minimum nest-domain grid points per rank ("9x9 nest domain grid
/// points").
pub const MIN_NEST_POINTS_PER_RANK: usize = 9;
