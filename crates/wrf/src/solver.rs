//! The shallow-water integrator: forward–backward time stepping.
//!
//! Per step, two passes:
//!
//! 1. **continuity + tracer (fused)** — `η' = η + dt·(−H ∇·(u,v) + ν∇²η +
//!    nudge − damp)` and the upwind moisture update, row by row. Both read
//!    only the previous state, so fusing them halves the number of
//!    synchronization points and sweeps over the input stencil once while
//!    the rows are hot in cache.
//! 2. **momentum** — `(u,v)' from the *new* η` (forward–backward coupling,
//!    which is stable for linear gravity waves up to CFL ≈ 1), with
//!    Coriolis on a beta plane, Rayleigh damping, diffusion, and nudging
//!    toward the analytic vortex.
//!
//! Each pass writes a fresh output array from read-only inputs, so a pass
//! parallelizes over row bands with no synchronization beyond the barrier
//! between passes — exactly the halo-exchange structure of the MPI
//! decomposition it stands in for (see [`crate::par`] and [`crate::pool`]).
//!
//! Every kernel returns a **finite probe**: the sum of all values it wrote.
//! IEEE-754 guarantees the sum is non-finite if any addend is (`inf + x`
//! stays `inf` or becomes `NaN`, and `NaN` propagates), so the caller can
//! detect numerical blow-up without a separate full-grid `all_finite()`
//! sweep per step. Physical magnitudes here are ≤ 1e2 and grids are ≤ 1e6
//! points, so the sum cannot overflow to `inf` on healthy data.

use crate::fields::Fields;
use crate::geom::DomainGeom;
use crate::vortex::{VortexParams, VortexState};
use serde::{Deserialize, Serialize};

/// Physical and numerical parameters of the integrator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysicsParams {
    /// Gravitational acceleration, m/s².
    pub gravity: f64,
    /// Equivalent mean depth of the shallow-water layer, m (sets the
    /// gravity-wave speed √(gH); 500 m → 70 m/s, comfortably inside the
    /// CFL bound for WRF's 6 s/km time-step rule).
    pub mean_depth_m: f64,
    /// Coriolis parameter at the domain reference latitude, 1/s.
    pub coriolis_f0: f64,
    /// Beta-plane gradient df/dy, 1/(m·s).
    pub beta: f64,
    /// Rayleigh damping rate, 1/s.
    pub rayleigh: f64,
    /// Diffusion strength as a Courant-like number: ν = c·dx²/dt.
    pub diffusion_courant: f64,
    /// Nudging relaxation time toward the analytic vortex, seconds.
    pub nudge_tau_secs: f64,
    /// Domain-centre y coordinate, km (beta-plane origin).
    pub y_center_km: f64,
    /// Background water-vapour mixing ratio over land, kg/kg.
    pub q_land: f64,
    /// Background water-vapour mixing ratio over sea, kg/kg.
    pub q_sea: f64,
    /// Extra moisture loading in the vortex core, kg/kg.
    pub q_vortex_boost: f64,
    /// Relaxation time of the moisture source/sink, seconds.
    pub q_tau_secs: f64,
}

impl PhysicsParams {
    /// Defaults for the Bay-of-Bengal domain (reference latitude 15°N).
    pub fn bay_of_bengal() -> Self {
        let omega = 7.292e-5;
        let lat_ref = 15.0f64.to_radians();
        PhysicsParams {
            gravity: 9.81,
            mean_depth_m: 500.0,
            coriolis_f0: 2.0 * omega * lat_ref.sin(),
            beta: 2.0 * omega * lat_ref.cos() / 6.371e6,
            rayleigh: 1.0 / (12.0 * 3600.0),
            diffusion_courant: 0.02,
            // 30 minutes: strong enough that residual imbalance between
            // the analytic wind and height targets cannot drift the
            // diagnosed central pressure away from the calibrated
            // lifecycle, weak enough that the PDE dynamics still shape the
            // fields between targets.
            nudge_tau_secs: 1800.0,
            y_center_km: 2780.0,
            q_land: 0.008,
            q_sea: 0.016,
            q_vortex_boost: 0.006,
            q_tau_secs: 6.0 * 3600.0,
        }
    }

    /// Gravity-wave speed √(gH), m/s.
    pub fn wave_speed(&self) -> f64 {
        (self.gravity * self.mean_depth_m).sqrt()
    }

    /// Coriolis parameter at parent-frame `y_km`.
    #[inline]
    pub fn coriolis_at(&self, y_km: f64) -> f64 {
        self.coriolis_f0 + self.beta * (y_km - self.y_center_km) * 1000.0
    }
}

/// Everything one integration step needs, borrowed.
pub(crate) struct StepInputs<'a> {
    pub old: &'a Fields,
    pub vortex: &'a VortexState,
    pub phys: &'a PhysicsParams,
    pub vparams: &'a VortexParams,
    pub geom: &'a DomainGeom,
    pub dt_secs: f64,
}

impl StepInputs<'_> {
    /// Moisture relaxation target: maritime background over sea, drier
    /// over land, with a moist core following the vortex.
    fn q_target(&self, x_km: f64, y_km: f64) -> f64 {
        let base = if self.geom.is_land_km(x_km, y_km) {
            self.phys.q_land
        } else {
            self.phys.q_sea
        };
        let r2 = (x_km - self.vortex.x_km).powi(2) + (y_km - self.vortex.y_km).powi(2);
        let core = self.phys.q_vortex_boost
            * (self.vortex.depth_hpa / self.vparams.max_depth_hpa)
            * (-r2 / (2.0 * self.vparams.radius_km.powi(2))).exp();
        base + core
    }
}

impl StepInputs<'_> {
    fn dx_m(&self) -> f64 {
        self.old.dx_km * 1000.0
    }

    fn nu(&self) -> f64 {
        self.phys.diffusion_courant * self.dx_m() * self.dx_m() / self.dt_secs
    }
}

/// Pass 1 (fused continuity + tracer): write new `eta` and `q` values for
/// rows `j0..j1` into `out_eta`/`out_q`, which must be the row-major slices
/// of those rows (`(j1 − j0) · nx` values each). Returns the finite probe
/// (sum of everything written).
///
/// The eta row is computed before the q row of the same `j`, and each point
/// uses exactly the arithmetic of the historical separate passes, so the
/// fusion is bitwise-neutral.
pub(crate) fn step_eta_q_rows(
    inp: &StepInputs<'_>,
    j0: usize,
    j1: usize,
    out_eta: &mut [f64],
    out_q: &mut [f64],
) -> f64 {
    let f = inp.old;
    let (nx, ny) = (f.nx(), f.ny());
    debug_assert_eq!(out_eta.len(), (j1 - j0) * nx);
    debug_assert_eq!(out_q.len(), (j1 - j0) * nx);
    let dx = inp.dx_m();
    let dt = inp.dt_secs;
    let h = inp.phys.mean_depth_m;
    let nu = inp.nu();
    let tau = inp.phys.nudge_tau_secs;
    let damp = inp.phys.rayleigh;
    let q_tau = inp.phys.q_tau_secs;
    let mut probe = 0.0;

    for j in j0..j1 {
        let row = &mut out_eta[(j - j0) * nx..(j - j0 + 1) * nx];
        for (i, slot) in row.iter_mut().enumerate() {
            let y = f.y_km(j);
            let x = f.x_km(i);
            let target = inp.vortex.target_eta(x, y, inp.vparams);
            if i == 0 || j == 0 || i == nx - 1 || j == ny - 1 {
                // Analytic boundary: the nudging target is the large-scale
                // state, which is what a limited-area model's boundary
                // forcing provides.
                *slot = target;
                continue;
            }
            let eta = f.eta.at(i, j);
            let div = (f.u.at(i + 1, j) - f.u.at(i - 1, j) + f.v.at(i, j + 1) - f.v.at(i, j - 1))
                / (2.0 * dx);
            let lap =
                (f.eta.at(i + 1, j) + f.eta.at(i - 1, j) + f.eta.at(i, j + 1) + f.eta.at(i, j - 1)
                    - 4.0 * eta)
                    / (dx * dx);
            *slot = eta + dt * (-h * div + nu * lap + (target - eta) / tau - damp * eta);
        }
        probe += row.iter().sum::<f64>();

        let row = &mut out_q[(j - j0) * nx..(j - j0 + 1) * nx];
        for (i, slot) in row.iter_mut().enumerate() {
            let x = f.x_km(i);
            let y = f.y_km(j);
            let target = inp.q_target(x, y);
            if i == 0 || j == 0 || i == nx - 1 || j == ny - 1 {
                *slot = target;
                continue;
            }
            let q = f.q.at(i, j);
            let u = f.u.at(i, j);
            let v = f.v.at(i, j);
            // First-order upwind derivatives (monotone, keeps the tracer
            // free of advective over/undershoots).
            let dqdx = if u >= 0.0 {
                (q - f.q.at(i - 1, j)) / dx
            } else {
                (f.q.at(i + 1, j) - q) / dx
            };
            let dqdy = if v >= 0.0 {
                (q - f.q.at(i, j - 1)) / dx
            } else {
                (f.q.at(i, j + 1) - q) / dx
            };
            let lap = (f.q.at(i + 1, j) + f.q.at(i - 1, j) + f.q.at(i, j + 1) + f.q.at(i, j - 1)
                - 4.0 * q)
                / (dx * dx);
            *slot = q + dt * (-(u * dqdx + v * dqdy) + nu * lap + (target - q) / q_tau);
        }
        probe += row.iter().sum::<f64>();
    }
    probe
}

/// Pass 2: write new `(u, v)` for rows `j0..j1`, reading the *new* eta.
/// Returns the finite probe (sum of everything written).
pub(crate) fn step_uv_rows(
    inp: &StepInputs<'_>,
    eta_new: &[f64],
    j0: usize,
    j1: usize,
    out_u: &mut [f64],
    out_v: &mut [f64],
) -> f64 {
    let f = inp.old;
    let (nx, ny) = (f.nx(), f.ny());
    debug_assert_eq!(eta_new.len(), nx * ny);
    debug_assert_eq!(out_u.len(), (j1 - j0) * nx);
    debug_assert_eq!(out_v.len(), (j1 - j0) * nx);
    let dx = inp.dx_m();
    let dt = inp.dt_secs;
    let g = inp.phys.gravity;
    let nu = inp.nu();
    let tau = inp.phys.nudge_tau_secs;
    let damp = inp.phys.rayleigh;
    let eta_at = |i: usize, j: usize| eta_new[j * nx + i];
    let mut probe = 0.0;

    for j in j0..j1 {
        let base = (j - j0) * nx;
        for i in 0..nx {
            let x = f.x_km(i);
            let y = f.y_km(j);
            let (tu, tv) = inp.vortex.target_uv(x, y, inp.vparams);
            if i == 0 || j == 0 || i == nx - 1 || j == ny - 1 {
                out_u[base + i] = tu;
                out_v[base + i] = tv;
                continue;
            }
            let u = f.u.at(i, j);
            let v = f.v.at(i, j);
            let detadx = (eta_at(i + 1, j) - eta_at(i - 1, j)) / (2.0 * dx);
            let detady = (eta_at(i, j + 1) - eta_at(i, j - 1)) / (2.0 * dx);
            let lap_u = (f.u.at(i + 1, j) + f.u.at(i - 1, j) + f.u.at(i, j + 1) + f.u.at(i, j - 1)
                - 4.0 * u)
                / (dx * dx);
            let lap_v = (f.v.at(i + 1, j) + f.v.at(i - 1, j) + f.v.at(i, j + 1) + f.v.at(i, j - 1)
                - 4.0 * v)
                / (dx * dx);
            let fcor = inp.phys.coriolis_at(y);
            out_u[base + i] =
                u + dt * (-g * detadx + fcor * v + nu * lap_u + (tu - u) / tau - damp * u);
            out_v[base + i] =
                v + dt * (-g * detady - fcor * u + nu * lap_v + (tv - v) / tau - damp * v);
        }
        let row_u = &out_u[base..base + nx];
        let row_v = &out_v[base..base + nx];
        probe += row_u.iter().sum::<f64>() + row_v.iter().sum::<f64>();
    }
    probe
}

/// One full serial step into a caller-owned output buffer (reshaped if its
/// geometry differs). The kernels write every cell, so no zeroing is
/// needed; a warm `out` makes the step allocation-free. Returns the finite
/// probe.
pub(crate) fn step_serial_into(inp: &StepInputs<'_>, out: &mut Fields) -> f64 {
    let ny = inp.old.ny();
    out.shape_like(inp.old);
    let mut probe = {
        let Fields { eta, q, .. } = out;
        step_eta_q_rows(inp, 0, ny, eta.data_mut(), q.data_mut())
    };
    // Disjoint field borrows: eta read-only, u and v written.
    let Fields { eta, u, v, .. } = out;
    probe += step_uv_rows(inp, eta.data(), 0, ny, u.data_mut(), v.data_mut());
    probe
}

/// One full serial step: returns the new fields (allocating convenience
/// wrapper over [`step_serial_into`], used as the parity reference in
/// tests).
#[cfg(test)]
pub(crate) fn step_serial(inp: &StepInputs<'_>) -> Fields {
    let mut new = Fields::zeros(inp.old.nx(), inp.old.ny(), inp.old.dx_km);
    step_serial_into(inp, &mut new);
    new
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::DomainGeom;

    #[test]
    fn wave_speed_within_cfl_for_wrf_timestep() {
        let p = PhysicsParams::bay_of_bengal();
        // dt = 6 s per km of dx → Courant = c·dt/dx = 6e-3 s/m · c.
        let courant = p.wave_speed() * 6.0 / 1000.0;
        assert!(courant < 0.7, "Courant {courant} too close to instability");
    }

    #[test]
    fn coriolis_changes_sign_across_equator() {
        let g = DomainGeom::bay_of_bengal();
        let p = PhysicsParams::bay_of_bengal();
        let (_, y_north) = g.lonlat_to_km(90.0, 30.0);
        let (_, y_south) = g.lonlat_to_km(90.0, -8.0);
        assert!(p.coriolis_at(y_north) > 0.0);
        assert!(p.coriolis_at(y_south) < 0.0);
    }
}
