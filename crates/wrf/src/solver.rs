//! The shallow-water integrator: forward–backward time stepping.
//!
//! Per step, two passes:
//!
//! 1. **continuity + tracer (fused)** — `η' = η + dt·(−H ∇·(u,v) + ν∇²η +
//!    nudge − damp)` and the upwind moisture update, row by row. Both read
//!    only the previous state, so fusing them halves the number of
//!    synchronization points and sweeps over the input stencil once while
//!    the rows are hot in cache.
//! 2. **momentum** — `(u,v)' from the *new* η` (forward–backward coupling,
//!    which is stable for linear gravity waves up to CFL ≈ 1), with
//!    Coriolis on a beta plane, Rayleigh damping, diffusion, and nudging
//!    toward the analytic vortex.
//!
//! Each pass writes a fresh output array from read-only inputs, so a pass
//! parallelizes over row bands with no synchronization beyond the barrier
//! between passes — exactly the halo-exchange structure of the MPI
//! decomposition it stands in for (see [`crate::par`] and [`crate::pool`]).
//!
//! Every kernel returns a **finite probe**: the sum of all values it wrote.
//! IEEE-754 guarantees the sum is non-finite if any addend is (`inf + x`
//! stays `inf` or becomes `NaN`, and `NaN` propagates), so the caller can
//! detect numerical blow-up without a separate full-grid `all_finite()`
//! sweep per step. Physical magnitudes here are ≤ 1e2 and grids are ≤ 1e6
//! points, so the sum cannot overflow to `inf` on healthy data.

use crate::fields::Fields;
use crate::geom::DomainGeom;
use crate::simd::{exp4, F64x4};
use crate::vortex::{VortexParams, VortexState};
use serde::{Deserialize, Serialize};

/// Which kernel implementation the engines run.
///
/// Both paths are full implementations of the same physics; they differ in
/// arithmetic organization and therefore in low-order bits. Each path has
/// its *own* serial reference and its own bitwise-parity contract across
/// team sizes, tilings, and mid-run resizes — `Scalar` stays byte-exact
/// with the historical kernels, `Lanes` is byte-exact with the
/// lane-ordered serial reference (see DESIGN.md §17).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum KernelPath {
    /// The original point-at-a-time kernels: libm transcendentals, true
    /// divisions, left-to-right row sums. Kept selectable as the parity
    /// baseline and the profiling reference.
    Scalar,
    /// f64×4 lane kernels (`wrf::simd`): separable Gaussian nudge
    /// targets, branch-free `exp4`, reciprocal multiplies, and the fixed
    /// per-row probe reduction order.
    #[default]
    Lanes,
}

impl KernelPath {
    /// Stable integer tag used by the checkpoint attribute encoding.
    pub fn as_index(self) -> i64 {
        match self {
            KernelPath::Scalar => 0,
            KernelPath::Lanes => 1,
        }
    }

    /// Inverse of [`KernelPath::as_index`].
    pub fn from_index(idx: i64) -> Option<Self> {
        match idx {
            0 => Some(KernelPath::Scalar),
            1 => Some(KernelPath::Lanes),
            _ => None,
        }
    }

    /// Lower-case label used in bench artifacts (`BENCH_physics.json`).
    pub fn label(self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Lanes => "lanes",
        }
    }
}

/// Physical and numerical parameters of the integrator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhysicsParams {
    /// Gravitational acceleration, m/s².
    pub gravity: f64,
    /// Equivalent mean depth of the shallow-water layer, m (sets the
    /// gravity-wave speed √(gH); 500 m → 70 m/s, comfortably inside the
    /// CFL bound for WRF's 6 s/km time-step rule).
    pub mean_depth_m: f64,
    /// Coriolis parameter at the domain reference latitude, 1/s.
    pub coriolis_f0: f64,
    /// Beta-plane gradient df/dy, 1/(m·s).
    pub beta: f64,
    /// Rayleigh damping rate, 1/s.
    pub rayleigh: f64,
    /// Diffusion strength as a Courant-like number: ν = c·dx²/dt.
    pub diffusion_courant: f64,
    /// Nudging relaxation time toward the analytic vortex, seconds.
    pub nudge_tau_secs: f64,
    /// Domain-centre y coordinate, km (beta-plane origin).
    pub y_center_km: f64,
    /// Background water-vapour mixing ratio over land, kg/kg.
    pub q_land: f64,
    /// Background water-vapour mixing ratio over sea, kg/kg.
    pub q_sea: f64,
    /// Extra moisture loading in the vortex core, kg/kg.
    pub q_vortex_boost: f64,
    /// Relaxation time of the moisture source/sink, seconds.
    pub q_tau_secs: f64,
}

impl PhysicsParams {
    /// Defaults for the Bay-of-Bengal domain (reference latitude 15°N).
    pub fn bay_of_bengal() -> Self {
        let omega = 7.292e-5;
        let lat_ref = 15.0f64.to_radians();
        PhysicsParams {
            gravity: 9.81,
            mean_depth_m: 500.0,
            coriolis_f0: 2.0 * omega * lat_ref.sin(),
            beta: 2.0 * omega * lat_ref.cos() / 6.371e6,
            rayleigh: 1.0 / (12.0 * 3600.0),
            diffusion_courant: 0.02,
            // 30 minutes: strong enough that residual imbalance between
            // the analytic wind and height targets cannot drift the
            // diagnosed central pressure away from the calibrated
            // lifecycle, weak enough that the PDE dynamics still shape the
            // fields between targets.
            nudge_tau_secs: 1800.0,
            y_center_km: 2780.0,
            q_land: 0.008,
            q_sea: 0.016,
            q_vortex_boost: 0.006,
            q_tau_secs: 6.0 * 3600.0,
        }
    }

    /// Gravity-wave speed √(gH), m/s.
    pub fn wave_speed(&self) -> f64 {
        (self.gravity * self.mean_depth_m).sqrt()
    }

    /// Coriolis parameter at parent-frame `y_km`.
    #[inline]
    pub fn coriolis_at(&self, y_km: f64) -> f64 {
        self.coriolis_f0 + self.beta * (y_km - self.y_center_km) * 1000.0
    }
}

/// Everything one integration step needs, borrowed.
pub(crate) struct StepInputs<'a> {
    pub old: &'a Fields,
    pub vortex: &'a VortexState,
    pub phys: &'a PhysicsParams,
    pub vparams: &'a VortexParams,
    pub geom: &'a DomainGeom,
    pub dt_secs: f64,
}

impl StepInputs<'_> {
    /// Moisture relaxation target: maritime background over sea, drier
    /// over land, with a moist core following the vortex.
    fn q_target(&self, x_km: f64, y_km: f64) -> f64 {
        let base = if self.geom.is_land_km(x_km, y_km) {
            self.phys.q_land
        } else {
            self.phys.q_sea
        };
        let r2 = (x_km - self.vortex.x_km).powi(2) + (y_km - self.vortex.y_km).powi(2);
        let core = self.phys.q_vortex_boost
            * (self.vortex.depth_hpa / self.vparams.max_depth_hpa)
            * (-r2 / (2.0 * self.vparams.radius_km.powi(2))).exp();
        base + core
    }
}

impl StepInputs<'_> {
    fn dx_m(&self) -> f64 {
        self.old.dx_km * 1000.0
    }

    fn nu(&self) -> f64 {
        self.phys.diffusion_courant * self.dx_m() * self.dx_m() / self.dt_secs
    }
}

/// Pass 1 (fused continuity + tracer): write new `eta` and `q` values for
/// rows `j0..j1` into `out_eta`/`out_q`, which must be the row-major slices
/// of those rows (`(j1 − j0) · nx` values each). Returns the finite probe
/// (sum of everything written).
///
/// The eta row is computed before the q row of the same `j`, and each point
/// uses exactly the arithmetic of the historical separate passes, so the
/// fusion is bitwise-neutral.
pub(crate) fn step_eta_q_rows(
    inp: &StepInputs<'_>,
    j0: usize,
    j1: usize,
    out_eta: &mut [f64],
    out_q: &mut [f64],
) -> f64 {
    let f = inp.old;
    let (nx, ny) = (f.nx(), f.ny());
    debug_assert_eq!(out_eta.len(), (j1 - j0) * nx);
    debug_assert_eq!(out_q.len(), (j1 - j0) * nx);
    let dx = inp.dx_m();
    let dt = inp.dt_secs;
    let h = inp.phys.mean_depth_m;
    let nu = inp.nu();
    let tau = inp.phys.nudge_tau_secs;
    let damp = inp.phys.rayleigh;
    let q_tau = inp.phys.q_tau_secs;
    let mut probe = 0.0;

    for j in j0..j1 {
        let row = &mut out_eta[(j - j0) * nx..(j - j0 + 1) * nx];
        for (i, slot) in row.iter_mut().enumerate() {
            let y = f.y_km(j);
            let x = f.x_km(i);
            let target = inp.vortex.target_eta(x, y, inp.vparams);
            if i == 0 || j == 0 || i == nx - 1 || j == ny - 1 {
                // Analytic boundary: the nudging target is the large-scale
                // state, which is what a limited-area model's boundary
                // forcing provides.
                *slot = target;
                continue;
            }
            let eta = f.eta.at(i, j);
            let div = (f.u.at(i + 1, j) - f.u.at(i - 1, j) + f.v.at(i, j + 1) - f.v.at(i, j - 1))
                / (2.0 * dx);
            let lap =
                (f.eta.at(i + 1, j) + f.eta.at(i - 1, j) + f.eta.at(i, j + 1) + f.eta.at(i, j - 1)
                    - 4.0 * eta)
                    / (dx * dx);
            *slot = eta + dt * (-h * div + nu * lap + (target - eta) / tau - damp * eta);
        }
        probe += row.iter().sum::<f64>();

        let row = &mut out_q[(j - j0) * nx..(j - j0 + 1) * nx];
        for (i, slot) in row.iter_mut().enumerate() {
            let x = f.x_km(i);
            let y = f.y_km(j);
            let target = inp.q_target(x, y);
            if i == 0 || j == 0 || i == nx - 1 || j == ny - 1 {
                *slot = target;
                continue;
            }
            let q = f.q.at(i, j);
            let u = f.u.at(i, j);
            let v = f.v.at(i, j);
            // First-order upwind derivatives (monotone, keeps the tracer
            // free of advective over/undershoots).
            let dqdx = if u >= 0.0 {
                (q - f.q.at(i - 1, j)) / dx
            } else {
                (f.q.at(i + 1, j) - q) / dx
            };
            let dqdy = if v >= 0.0 {
                (q - f.q.at(i, j - 1)) / dx
            } else {
                (f.q.at(i, j + 1) - q) / dx
            };
            let lap = (f.q.at(i + 1, j) + f.q.at(i - 1, j) + f.q.at(i, j + 1) + f.q.at(i, j - 1)
                - 4.0 * q)
                / (dx * dx);
            *slot = q + dt * (-(u * dqdx + v * dqdy) + nu * lap + (target - q) / q_tau);
        }
        probe += row.iter().sum::<f64>();
    }
    probe
}

/// Pass 2: write new `(u, v)` for rows `j0..j1`, reading the *new* eta.
/// Returns the finite probe (sum of everything written).
pub(crate) fn step_uv_rows(
    inp: &StepInputs<'_>,
    eta_new: &[f64],
    j0: usize,
    j1: usize,
    out_u: &mut [f64],
    out_v: &mut [f64],
) -> f64 {
    let f = inp.old;
    let (nx, ny) = (f.nx(), f.ny());
    debug_assert_eq!(eta_new.len(), nx * ny);
    debug_assert_eq!(out_u.len(), (j1 - j0) * nx);
    debug_assert_eq!(out_v.len(), (j1 - j0) * nx);
    let dx = inp.dx_m();
    let dt = inp.dt_secs;
    let g = inp.phys.gravity;
    let nu = inp.nu();
    let tau = inp.phys.nudge_tau_secs;
    let damp = inp.phys.rayleigh;
    let eta_at = |i: usize, j: usize| eta_new[j * nx + i];
    let mut probe = 0.0;

    for j in j0..j1 {
        let base = (j - j0) * nx;
        for i in 0..nx {
            let x = f.x_km(i);
            let y = f.y_km(j);
            let (tu, tv) = inp.vortex.target_uv(x, y, inp.vparams);
            if i == 0 || j == 0 || i == nx - 1 || j == ny - 1 {
                out_u[base + i] = tu;
                out_v[base + i] = tv;
                continue;
            }
            let u = f.u.at(i, j);
            let v = f.v.at(i, j);
            let detadx = (eta_at(i + 1, j) - eta_at(i - 1, j)) / (2.0 * dx);
            let detady = (eta_at(i, j + 1) - eta_at(i, j - 1)) / (2.0 * dx);
            let lap_u = (f.u.at(i + 1, j) + f.u.at(i - 1, j) + f.u.at(i, j + 1) + f.u.at(i, j - 1)
                - 4.0 * u)
                / (dx * dx);
            let lap_v = (f.v.at(i + 1, j) + f.v.at(i - 1, j) + f.v.at(i, j + 1) + f.v.at(i, j - 1)
                - 4.0 * v)
                / (dx * dx);
            let fcor = inp.phys.coriolis_at(y);
            out_u[base + i] =
                u + dt * (-g * detadx + fcor * v + nu * lap_u + (tu - u) / tau - damp * u);
            out_v[base + i] =
                v + dt * (-g * detady - fcor * u + nu * lap_v + (tv - v) / tau - damp * v);
        }
        let row_u = &out_u[base..base + nx];
        let row_v = &out_v[base..base + nx];
        probe += row_u.iter().sum::<f64>() + row_v.iter().sum::<f64>();
    }
    probe
}

/// Per-rank scratch for the lanes kernels, prepared once per step.
///
/// The expensive per-point work of the scalar kernels is transcendental:
/// the Gaussian nudge targets cost two `exp` per point in pass 1 and a
/// `sqrt` + `exp` per point in pass 2. The eta target and the moisture
/// core share the same radius, and a Gaussian separates —
/// `exp(−(Δx²+Δy²)·s) = exp(−Δx²·s) · exp(−Δy²·s)` — so pass 1 needs only
/// an `nx`-length column table plus one row factor: `nx + ny` libm exps
/// per rank per step instead of `2·nx·ny`. Pass 2's Rankine decay does not
/// separate (it is a function of `r`, not `r²`) and is evaluated four-wide
/// with [`exp4`] instead.
#[derive(Debug, Default, Clone)]
pub(crate) struct LaneScratch {
    /// `x_km(i)` per column.
    xcol: Vec<f64>,
    /// `exp(−(x_i − cx)²/(2·radius²))` per column — the separable half of
    /// both pass-1 Gaussian targets.
    gauss_col: Vec<f64>,
    /// Per-row land/sea moisture background, filled inside pass 1.
    qbase_row: Vec<f64>,
}

impl LaneScratch {
    /// Rebuild the column tables for this step's grid and vortex position.
    pub fn prepare(&mut self, inp: &StepInputs<'_>) {
        let f = inp.old;
        let nx = f.nx();
        self.xcol.clear();
        self.xcol.extend((0..nx).map(|i| f.x_km(i)));
        let inv2s2 = 1.0 / (2.0 * inp.vparams.radius_km * inp.vparams.radius_km);
        let cx = inp.vortex.x_km;
        self.gauss_col.clear();
        for &x in &self.xcol {
            let d = x - cx;
            self.gauss_col.push((-(d * d) * inv2s2).exp());
        }
        self.qbase_row.clear();
        self.qbase_row.resize(nx, 0.0);
    }
}

/// Lanes pass 1 (fused continuity + tracer) for rows `j0..j1`.
///
/// Writes the same rows as [`step_eta_q_rows`] but four columns at a time,
/// and writes each row's finite-probe contribution into `probes[j − j0]`
/// instead of returning a running sum. The per-row probe is computed in a
/// *fixed* order — left boundary value, then the lane accumulator reduced
/// as `(l0+l1)+(l2+l3)` ([`F64x4::reduce`]), then scalar remainder columns
/// in ascending `i`, then the right boundary value; eta's row sum plus q's
/// row sum — so a row's probe depends only on the row's inputs and `nx`,
/// never on how rows were split into bands or tiles.
pub(crate) fn step_eta_q_rows_lanes(
    inp: &StepInputs<'_>,
    scratch: &mut LaneScratch,
    j0: usize,
    j1: usize,
    out_eta: &mut [f64],
    out_q: &mut [f64],
    probes: &mut [f64],
) {
    let f = inp.old;
    let (nx, ny) = (f.nx(), f.ny());
    debug_assert_eq!(out_eta.len(), (j1 - j0) * nx);
    debug_assert_eq!(out_q.len(), (j1 - j0) * nx);
    debug_assert_eq!(probes.len(), j1 - j0);
    debug_assert_eq!(scratch.gauss_col.len(), nx, "prepare() not called");

    let dx = inp.dx_m();
    let dt = inp.dt_secs;
    let h = inp.phys.mean_depth_m;
    let nu = inp.nu();
    let damp = inp.phys.rayleigh;
    // The lanes reference multiplies by reciprocals where the scalar path
    // divides — one of the deliberate low-order-bit differences between
    // the two paths.
    let inv_2dx = 1.0 / (2.0 * dx);
    let inv_dx = 1.0 / dx;
    let inv_dx2 = 1.0 / (dx * dx);
    let inv_tau = 1.0 / inp.phys.nudge_tau_secs;
    let inv_qtau = 1.0 / inp.phys.q_tau_secs;

    let amp = inp.vortex.depth_hpa / inp.vparams.hpa_per_eta_m;
    let boost = inp.phys.q_vortex_boost * (inp.vortex.depth_hpa / inp.vparams.max_depth_hpa);
    let inv2s2 = 1.0 / (2.0 * inp.vparams.radius_km * inp.vparams.radius_km);
    let cy = inp.vortex.y_km;
    let (q_land, q_sea) = (inp.phys.q_land, inp.phys.q_sea);

    let eta = f.eta.data();
    let u = f.u.data();
    let v = f.v.data();
    let q = f.q.data();

    let dt4 = F64x4::splat(dt);
    let neg_h4 = F64x4::splat(-h);
    let nu4 = F64x4::splat(nu);
    let damp4 = F64x4::splat(damp);
    let inv_2dx4 = F64x4::splat(inv_2dx);
    let inv_dx4 = F64x4::splat(inv_dx);
    let inv_dx2_4 = F64x4::splat(inv_dx2);
    let inv_tau4 = F64x4::splat(inv_tau);
    let inv_qtau4 = F64x4::splat(inv_qtau);
    let four4 = F64x4::splat(4.0);
    let neg_amp4 = F64x4::splat(-amp);
    let boost4 = F64x4::splat(boost);

    let LaneScratch {
        xcol,
        gauss_col,
        qbase_row,
    } = scratch;

    for j in j0..j1 {
        let y = f.y_km(j);
        let dyk = y - cy;
        let gy = (-(dyk * dyk) * inv2s2).exp();
        let gy4 = F64x4::splat(gy);
        for (slot, &x) in qbase_row.iter_mut().zip(xcol.iter()) {
            *slot = if inp.geom.is_land_km(x, y) {
                q_land
            } else {
                q_sea
            };
        }
        let base = (j - j0) * nx;
        let row_eta = &mut out_eta[base..base + nx];
        let row_q = &mut out_q[base..base + nx];

        if j == 0 || j == ny - 1 {
            // Boundary rows are pure analytic targets; plain ascending sum.
            for i in 0..nx {
                row_eta[i] = (-amp) * gauss_col[i] * gy;
                row_q[i] = qbase_row[i] + boost * gauss_col[i] * gy;
            }
            probes[j - j0] = row_eta.iter().sum::<f64>() + row_q.iter().sum::<f64>();
            continue;
        }

        let ec = &eta[j * nx..(j + 1) * nx];
        let en = &eta[(j + 1) * nx..(j + 2) * nx];
        let es = &eta[(j - 1) * nx..j * nx];
        let uc = &u[j * nx..(j + 1) * nx];
        let vc = &v[j * nx..(j + 1) * nx];
        let vn = &v[(j + 1) * nx..(j + 2) * nx];
        let vs = &v[(j - 1) * nx..j * nx];
        let qc = &q[j * nx..(j + 1) * nx];
        let qn = &q[(j + 1) * nx..(j + 2) * nx];
        let qs = &q[(j - 1) * nx..j * nx];

        // --- eta row ---
        row_eta[0] = (-amp) * gauss_col[0] * gy;
        let mut p_eta = row_eta[0];
        let mut acc = F64x4::splat(0.0);
        let mut i = 1;
        while i + F64x4::LANES < nx {
            let e = F64x4::load(&ec[i..]);
            let div = ((F64x4::load(&uc[i + 1..]) - F64x4::load(&uc[i - 1..]))
                + (F64x4::load(&vn[i..]) - F64x4::load(&vs[i..])))
                * inv_2dx4;
            let lap = ((F64x4::load(&ec[i + 1..]) + F64x4::load(&ec[i - 1..]))
                + (F64x4::load(&en[i..]) + F64x4::load(&es[i..]))
                - four4 * e)
                * inv_dx2_4;
            let tgt = neg_amp4 * F64x4::load(&gauss_col[i..]) * gy4;
            let val = e + dt4 * (neg_h4 * div + nu4 * lap + (tgt - e) * inv_tau4 - damp4 * e);
            val.store(&mut row_eta[i..]);
            acc = acc + val;
            i += F64x4::LANES;
        }
        p_eta += acc.reduce();
        while i < nx - 1 {
            let e = ec[i];
            let div = ((uc[i + 1] - uc[i - 1]) + (vn[i] - vs[i])) * inv_2dx;
            let lap = ((ec[i + 1] + ec[i - 1]) + (en[i] + es[i]) - 4.0 * e) * inv_dx2;
            let tgt = (-amp) * gauss_col[i] * gy;
            let val = e + dt * ((-h) * div + nu * lap + (tgt - e) * inv_tau - damp * e);
            row_eta[i] = val;
            p_eta += val;
            i += 1;
        }
        row_eta[nx - 1] = (-amp) * gauss_col[nx - 1] * gy;
        p_eta += row_eta[nx - 1];

        // --- q row ---
        row_q[0] = qbase_row[0] + boost * gauss_col[0] * gy;
        let mut p_q = row_q[0];
        let mut acc = F64x4::splat(0.0);
        let mut i = 1;
        while i + F64x4::LANES < nx {
            let qv = F64x4::load(&qc[i..]);
            let ql = F64x4::load(&qc[i - 1..]);
            let qr = F64x4::load(&qc[i + 1..]);
            let qup = F64x4::load(&qn[i..]);
            let qdn = F64x4::load(&qs[i..]);
            let uv = F64x4::load(&uc[i..]);
            let vv = F64x4::load(&vc[i..]);
            // Upwind selects replace the scalar path's branches.
            let dqdx = F64x4::select(uv.ge_zero(), (qv - ql) * inv_dx4, (qr - qv) * inv_dx4);
            let dqdy = F64x4::select(vv.ge_zero(), (qv - qdn) * inv_dx4, (qup - qv) * inv_dx4);
            let lap = ((qr + ql) + (qup + qdn) - four4 * qv) * inv_dx2_4;
            let tgt = F64x4::load(&qbase_row[i..]) + boost4 * F64x4::load(&gauss_col[i..]) * gy4;
            let val = qv + dt4 * (-(uv * dqdx + vv * dqdy) + nu4 * lap + (tgt - qv) * inv_qtau4);
            val.store(&mut row_q[i..]);
            acc = acc + val;
            i += F64x4::LANES;
        }
        p_q += acc.reduce();
        while i < nx - 1 {
            let qv = qc[i];
            let uv = uc[i];
            let vv = vc[i];
            let dqdx = if uv >= 0.0 {
                (qv - qc[i - 1]) * inv_dx
            } else {
                (qc[i + 1] - qv) * inv_dx
            };
            let dqdy = if vv >= 0.0 {
                (qv - qs[i]) * inv_dx
            } else {
                (qn[i] - qv) * inv_dx
            };
            let lap = ((qc[i + 1] + qc[i - 1]) + (qn[i] + qs[i]) - 4.0 * qv) * inv_dx2;
            let tgt = qbase_row[i] + boost * gauss_col[i] * gy;
            let val = qv + dt * (-(uv * dqdx + vv * dqdy) + nu * lap + (tgt - qv) * inv_qtau);
            row_q[i] = val;
            p_q += val;
            i += 1;
        }
        row_q[nx - 1] = qbase_row[nx - 1] + boost * gauss_col[nx - 1] * gy;
        p_q += row_q[nx - 1];

        probes[j - j0] = p_eta + p_q;
    }
}

/// Lanes pass 2 (momentum) for rows `j0..j1`, reading the *new* eta.
///
/// Adds each row's probe contribution into `probes[j − j0]` (pass 1 wrote
/// the slot), u's row sum then v's, each in the same fixed order as pass 1.
/// The Rankine wind target is evaluated four-wide: `sqrt` lowers to
/// `sqrtpd`, the outside-the-eyewall decay uses [`exp4`], and the calm-eye
/// and solid-body branches become lane selects.
#[allow(clippy::too_many_arguments)]
pub(crate) fn step_uv_rows_lanes(
    inp: &StepInputs<'_>,
    scratch: &LaneScratch,
    eta_new: &[f64],
    j0: usize,
    j1: usize,
    out_u: &mut [f64],
    out_v: &mut [f64],
    probes: &mut [f64],
) {
    let f = inp.old;
    let (nx, ny) = (f.nx(), f.ny());
    debug_assert_eq!(eta_new.len(), nx * ny);
    debug_assert_eq!(out_u.len(), (j1 - j0) * nx);
    debug_assert_eq!(out_v.len(), (j1 - j0) * nx);
    debug_assert_eq!(probes.len(), j1 - j0);
    debug_assert_eq!(scratch.xcol.len(), nx, "prepare() not called");

    let dx = inp.dx_m();
    let dt = inp.dt_secs;
    let g = inp.phys.gravity;
    let nu = inp.nu();
    let damp = inp.phys.rayleigh;
    let inv_2dx = 1.0 / (2.0 * dx);
    let inv_dx2 = 1.0 / (dx * dx);
    let inv_tau = 1.0 / inp.phys.nudge_tau_secs;

    let cx = inp.vortex.x_km;
    let cy = inp.vortex.y_km;
    let rm = inp.vparams.radius_km;
    let vmax = inp.vparams.wind_per_depth * inp.vortex.depth_hpa;
    let steer_e = inp.vparams.steer_east_ms;
    let steer_n = inp.vparams.steer_north_ms;

    let u = f.u.data();
    let v = f.v.data();

    let dt4 = F64x4::splat(dt);
    let neg_g4 = F64x4::splat(-g);
    let nu4 = F64x4::splat(nu);
    let damp4 = F64x4::splat(damp);
    let inv_2dx4 = F64x4::splat(inv_2dx);
    let inv_dx2_4 = F64x4::splat(inv_dx2);
    let inv_tau4 = F64x4::splat(inv_tau);
    let four4 = F64x4::splat(4.0);
    let one4 = F64x4::splat(1.0);
    let eps4 = F64x4::splat(1e-9);
    let cx4 = F64x4::splat(cx);
    let rm4 = F64x4::splat(rm);
    let inv_rm4 = F64x4::splat(1.0 / rm);
    let inv_2rm4 = F64x4::splat(1.0 / (2.0 * rm));
    let vmax4 = F64x4::splat(vmax);
    let steer_e4 = F64x4::splat(steer_e);
    let steer_n4 = F64x4::splat(steer_n);

    for j in j0..j1 {
        let y = f.y_km(j);
        let dyk = y - cy;
        let dy4 = F64x4::splat(dyk);
        let base = (j - j0) * nx;
        let row_u = &mut out_u[base..base + nx];
        let row_v = &mut out_v[base..base + nx];

        if j == 0 || j == ny - 1 {
            for i in 0..nx {
                let (tu, tv) = inp.vortex.target_uv(f.x_km(i), y, inp.vparams);
                row_u[i] = tu;
                row_v[i] = tv;
            }
            probes[j - j0] += row_u.iter().sum::<f64>() + row_v.iter().sum::<f64>();
            continue;
        }

        let uc = &u[j * nx..(j + 1) * nx];
        let un = &u[(j + 1) * nx..(j + 2) * nx];
        let us = &u[(j - 1) * nx..j * nx];
        let vc = &v[j * nx..(j + 1) * nx];
        let vn = &v[(j + 1) * nx..(j + 2) * nx];
        let vs = &v[(j - 1) * nx..j * nx];
        let ec = &eta_new[j * nx..(j + 1) * nx];
        let en = &eta_new[(j + 1) * nx..(j + 2) * nx];
        let es = &eta_new[(j - 1) * nx..j * nx];
        let fcor = inp.phys.coriolis_at(y);
        let fcor4 = F64x4::splat(fcor);

        let (tu0, tv0) = inp.vortex.target_uv(f.x_km(0), y, inp.vparams);
        row_u[0] = tu0;
        row_v[0] = tv0;
        let mut p_u = row_u[0];
        let mut p_v = row_v[0];
        let mut acc_u = F64x4::splat(0.0);
        let mut acc_v = F64x4::splat(0.0);
        let mut i = 1;
        while i + F64x4::LANES < nx {
            // Wind target, four points at once.
            let dxk = F64x4::load(&scratch.xcol[i..]) - cx4;
            let r = (dxk * dxk + dy4 * dy4).sqrt();
            let near = r.lt(eps4);
            let inv_r = one4 / r;
            let decay = exp4(-((r - rm4) * inv_2rm4));
            let vt = F64x4::select(r.le(rm4), vmax4 * r * inv_rm4, vmax4 * decay);
            // At the exact eye r = 0 gives 0·∞ = NaN in the unselected
            // lane; the select masks it out.
            let tu = F64x4::select(near, steer_e4, vt * (-dy4 * inv_r) + steer_e4);
            let tv = F64x4::select(near, steer_n4, vt * (dxk * inv_r) + steer_n4);

            let uv = F64x4::load(&uc[i..]);
            let vv = F64x4::load(&vc[i..]);
            let detadx = (F64x4::load(&ec[i + 1..]) - F64x4::load(&ec[i - 1..])) * inv_2dx4;
            let detady = (F64x4::load(&en[i..]) - F64x4::load(&es[i..])) * inv_2dx4;
            let lap_u = ((F64x4::load(&uc[i + 1..]) + F64x4::load(&uc[i - 1..]))
                + (F64x4::load(&un[i..]) + F64x4::load(&us[i..]))
                - four4 * uv)
                * inv_dx2_4;
            let lap_v = ((F64x4::load(&vc[i + 1..]) + F64x4::load(&vc[i - 1..]))
                + (F64x4::load(&vn[i..]) + F64x4::load(&vs[i..]))
                - four4 * vv)
                * inv_dx2_4;
            let val_u = uv
                + dt4
                    * (neg_g4 * detadx + fcor4 * vv + nu4 * lap_u + (tu - uv) * inv_tau4
                        - damp4 * uv);
            let val_v = vv
                + dt4
                    * (neg_g4 * detady - fcor4 * uv + nu4 * lap_v + (tv - vv) * inv_tau4
                        - damp4 * vv);
            val_u.store(&mut row_u[i..]);
            val_v.store(&mut row_v[i..]);
            acc_u = acc_u + val_u;
            acc_v = acc_v + val_v;
            i += F64x4::LANES;
        }
        p_u += acc_u.reduce();
        p_v += acc_v.reduce();
        while i < nx - 1 {
            let (tu, tv) = inp.vortex.target_uv(f.x_km(i), y, inp.vparams);
            let uv = uc[i];
            let vv = vc[i];
            let detadx = (ec[i + 1] - ec[i - 1]) * inv_2dx;
            let detady = (en[i] - es[i]) * inv_2dx;
            let lap_u = ((uc[i + 1] + uc[i - 1]) + (un[i] + us[i]) - 4.0 * uv) * inv_dx2;
            let lap_v = ((vc[i + 1] + vc[i - 1]) + (vn[i] + vs[i]) - 4.0 * vv) * inv_dx2;
            let val_u = uv
                + dt * ((-g) * detadx + fcor * vv + nu * lap_u + (tu - uv) * inv_tau - damp * uv);
            let val_v = vv
                + dt * ((-g) * detady - fcor * uv + nu * lap_v + (tv - vv) * inv_tau - damp * vv);
            row_u[i] = val_u;
            row_v[i] = val_v;
            p_u += val_u;
            p_v += val_v;
            i += 1;
        }
        let (tu1, tv1) = inp.vortex.target_uv(f.x_km(nx - 1), y, inp.vparams);
        row_u[nx - 1] = tu1;
        row_v[nx - 1] = tv1;
        p_u += row_u[nx - 1];
        p_v += row_v[nx - 1];

        probes[j - j0] += p_u + p_v;
    }
}

/// One full serial lanes step into a caller-owned output buffer: the
/// lane-ordered serial reference every parallel lanes engine must match
/// bitwise. Sweeps in the same L2-sized row tiles as the parallel engines
/// (tiling is bit-neutral — rows are independent), records per-row probes
/// in `probe_rows`, and reduces them in ascending row order.
pub(crate) fn step_serial_lanes_into(
    inp: &StepInputs<'_>,
    scratch: &mut LaneScratch,
    probe_rows: &mut Vec<f64>,
    out: &mut Fields,
) -> f64 {
    let (nx, ny) = (inp.old.nx(), inp.old.ny());
    out.shape_like(inp.old);
    probe_rows.clear();
    probe_rows.resize(ny, 0.0);
    scratch.prepare(inp);
    {
        let Fields { eta, q, .. } = out;
        for (t0, t1) in crate::par::row_tiles(0, ny, nx) {
            step_eta_q_rows_lanes(
                inp,
                scratch,
                t0,
                t1,
                &mut eta.data_mut()[t0 * nx..t1 * nx],
                &mut q.data_mut()[t0 * nx..t1 * nx],
                &mut probe_rows[t0..t1],
            );
        }
    }
    let Fields { eta, u, v, .. } = out;
    for (t0, t1) in crate::par::row_tiles(0, ny, nx) {
        step_uv_rows_lanes(
            inp,
            scratch,
            eta.data(),
            t0,
            t1,
            &mut u.data_mut()[t0 * nx..t1 * nx],
            &mut v.data_mut()[t0 * nx..t1 * nx],
            &mut probe_rows[t0..t1],
        );
    }
    // Ascending-row reduction: the probe's bits are independent of band
    // and tile decomposition because each slot is a pure per-row value.
    probe_rows.iter().sum()
}

/// One full serial step into a caller-owned output buffer (reshaped if its
/// geometry differs). The kernels write every cell, so no zeroing is
/// needed; a warm `out` makes the step allocation-free. Returns the finite
/// probe.
pub(crate) fn step_serial_into(inp: &StepInputs<'_>, out: &mut Fields) -> f64 {
    let ny = inp.old.ny();
    out.shape_like(inp.old);
    let mut probe = {
        let Fields { eta, q, .. } = out;
        step_eta_q_rows(inp, 0, ny, eta.data_mut(), q.data_mut())
    };
    // Disjoint field borrows: eta read-only, u and v written.
    let Fields { eta, u, v, .. } = out;
    probe += step_uv_rows(inp, eta.data(), 0, ny, u.data_mut(), v.data_mut());
    probe
}

/// One full serial step: returns the new fields (allocating convenience
/// wrapper over [`step_serial_into`], used as the parity reference in
/// tests).
#[cfg(test)]
pub(crate) fn step_serial(inp: &StepInputs<'_>) -> Fields {
    let mut new = Fields::zeros(inp.old.nx(), inp.old.ny(), inp.old.dx_km);
    step_serial_into(inp, &mut new);
    new
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::DomainGeom;

    #[test]
    fn wave_speed_within_cfl_for_wrf_timestep() {
        let p = PhysicsParams::bay_of_bengal();
        // dt = 6 s per km of dx → Courant = c·dt/dx = 6e-3 s/m · c.
        let courant = p.wave_speed() * 6.0 / 1000.0;
        assert!(courant < 0.7, "Courant {courant} too close to instability");
    }

    #[test]
    fn coriolis_changes_sign_across_equator() {
        let g = DomainGeom::bay_of_bengal();
        let p = PhysicsParams::bay_of_bengal();
        let (_, y_north) = g.lonlat_to_km(90.0, 30.0);
        let (_, y_south) = g.lonlat_to_km(90.0, -8.0);
        assert!(p.coriolis_at(y_north) > 0.0);
        assert!(p.coriolis_at(y_south) < 0.0);
    }

    #[test]
    fn kernel_path_index_roundtrip() {
        for path in [KernelPath::Scalar, KernelPath::Lanes] {
            assert_eq!(KernelPath::from_index(path.as_index()), Some(path));
        }
        assert_eq!(KernelPath::from_index(7), None);
        assert_eq!(KernelPath::default(), KernelPath::Lanes);
        assert_eq!(KernelPath::Lanes.label(), "lanes");
        assert_eq!(KernelPath::Scalar.label(), "scalar");
    }

    struct Scene {
        fields: Fields,
        vortex: VortexState,
        phys: PhysicsParams,
        vparams: VortexParams,
        geom: DomainGeom,
    }

    fn scene(nx: usize, ny: usize) -> Scene {
        let geom = DomainGeom::bay_of_bengal();
        let phys = PhysicsParams::bay_of_bengal();
        let vparams = VortexParams::aila();
        let vortex = VortexState::genesis(&vparams, &geom);
        let mut fields = Fields::zeros(nx, ny, 27.0);
        // Deterministic non-trivial state with both wind signs so the
        // upwind selects exercise every branch.
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for slot in fields.eta.data_mut() {
            *slot = 10.0 * next();
        }
        for slot in fields.u.data_mut() {
            *slot = 60.0 * next();
        }
        for slot in fields.v.data_mut() {
            *slot = 60.0 * next();
        }
        for slot in fields.q.data_mut() {
            *slot = 0.015 + 0.01 * next();
        }
        Scene {
            fields,
            vortex,
            phys,
            vparams,
            geom,
        }
    }

    impl Scene {
        fn inputs(&self) -> StepInputs<'_> {
            StepInputs {
                old: &self.fields,
                vortex: &self.vortex,
                phys: &self.phys,
                vparams: &self.vparams,
                geom: &self.geom,
                dt_secs: 120.0,
            }
        }
    }

    /// Tiling is bit-neutral: the tiled serial lanes reference must equal
    /// one untiled kernel invocation over the whole grid.
    #[test]
    fn lanes_tiled_matches_untiled_bitwise() {
        for (nx, ny) in [(4, 4), (7, 5), (33, 29), (130, 90)] {
            let sc = scene(nx, ny);
            let inp = sc.inputs();
            let mut scratch = LaneScratch::default();
            let mut probe_rows = Vec::new();
            let mut tiled = Fields::zeros(nx, ny, 27.0);
            let p_tiled = step_serial_lanes_into(&inp, &mut scratch, &mut probe_rows, &mut tiled);

            let mut flat = Fields::zeros(nx, ny, 27.0);
            let mut rows = vec![0.0; ny];
            scratch.prepare(&inp);
            {
                let Fields { eta, q, .. } = &mut flat;
                step_eta_q_rows_lanes(
                    &inp,
                    &mut scratch,
                    0,
                    ny,
                    eta.data_mut(),
                    q.data_mut(),
                    &mut rows,
                );
            }
            {
                let Fields { eta, u, v, .. } = &mut flat;
                step_uv_rows_lanes(
                    &inp,
                    &scratch,
                    eta.data(),
                    0,
                    ny,
                    u.data_mut(),
                    v.data_mut(),
                    &mut rows,
                );
            }
            let p_flat: f64 = rows.iter().sum();
            assert_eq!(tiled.eta.data(), flat.eta.data(), "{nx}x{ny} eta");
            assert_eq!(tiled.u.data(), flat.u.data(), "{nx}x{ny} u");
            assert_eq!(tiled.v.data(), flat.v.data(), "{nx}x{ny} v");
            assert_eq!(tiled.q.data(), flat.q.data(), "{nx}x{ny} q");
            assert_eq!(p_tiled.to_bits(), p_flat.to_bits(), "{nx}x{ny} probe");
        }
    }

    /// The two kernel paths implement the same physics: they agree to
    /// within stencil-arithmetic rounding, far tighter than any physical
    /// signal, but are not (and need not be) bitwise equal.
    #[test]
    fn lanes_and_scalar_agree_physically() {
        let sc = scene(90, 70);
        let inp = sc.inputs();
        let scalar = step_serial(&inp);
        let mut lanes = Fields::zeros(90, 70, 27.0);
        let mut scratch = LaneScratch::default();
        let mut rows = Vec::new();
        step_serial_lanes_into(&inp, &mut scratch, &mut rows, &mut lanes);
        for (name, a, b) in [
            ("eta", scalar.eta.data(), lanes.eta.data()),
            ("u", scalar.u.data(), lanes.u.data()),
            ("v", scalar.v.data(), lanes.v.data()),
            ("q", scalar.q.data(), lanes.q.data()),
        ] {
            let mut worst = 0.0f64;
            for (x, y) in a.iter().zip(b) {
                worst = worst.max((x - y).abs());
            }
            assert!(worst < 1e-9, "{name}: worst |scalar − lanes| = {worst:e}");
        }
    }

    /// The lanes probe keeps the blow-up guarantee: a non-finite value
    /// anywhere in the written state makes the reduced probe non-finite.
    #[test]
    fn lanes_probe_detects_blowup() {
        let mut sc = scene(24, 18);
        sc.fields.u.set(11, 9, f64::NAN);
        let inp = sc.inputs();
        let mut scratch = LaneScratch::default();
        let mut rows = Vec::new();
        let mut out = Fields::zeros(24, 18, 27.0);
        let probe = step_serial_lanes_into(&inp, &mut scratch, &mut rows, &mut out);
        assert!(!probe.is_finite());
    }
}
