//! Analytic cyclone: track, intensity, and target fields for nudging.
//!
//! The reduced dynamical core nudges its prognostic fields toward this
//! analytic vortex (a data-assimilation-style relaxation). The vortex
//! carries the climatology the framework reacts to:
//!
//! - **track** — advected by a steering flow (Aila: north-north-east from
//!   the central Bay of Bengal toward the Gangetic plain),
//! - **intensity** — central pressure depth follows a logistic deepening
//!   law while the eye is over ocean and exponential filling over land,
//! - **structure** — a Gaussian height depression plus a Rankine-like
//!   rotational wind profile.

use crate::geom::DomainGeom;
use serde::{Deserialize, Serialize};

/// Background (environmental) mean sea-level pressure, hPa.
pub const BASE_PRESSURE_HPA: f64 = 1013.0;

/// Static description of the cyclone scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VortexParams {
    /// Genesis longitude, degrees east.
    pub start_lon: f64,
    /// Genesis latitude, degrees north.
    pub start_lat: f64,
    /// Steering flow, eastward component (m/s).
    pub steer_east_ms: f64,
    /// Steering flow, northward component (m/s).
    pub steer_north_ms: f64,
    /// Central pressure depth below [`BASE_PRESSURE_HPA`] at t = 0, hPa.
    pub initial_depth_hpa: f64,
    /// Saturation depth of the logistic deepening, hPa.
    pub max_depth_hpa: f64,
    /// Logistic deepening rate over ocean, per hour.
    pub deepen_rate_per_hour: f64,
    /// Exponential filling rate over land, per hour.
    pub fill_rate_per_hour: f64,
    /// Radius of maximum structure, km.
    pub radius_km: f64,
    /// hPa of surface-pressure perturbation per metre of height-field
    /// perturbation (couples η to the pressure diagnostic).
    pub hpa_per_eta_m: f64,
    /// Peak tangential wind per hPa of depth (m/s per hPa). Aila peaked
    /// near 31 m/s at ~26 hPa depth → ≈1.2.
    pub wind_per_depth: f64,
}

impl VortexParams {
    /// Cyclone Aila, calibrated so the pressure lifecycle sweeps the whole
    /// Table III schedule across a 60-hour mission starting 2009-05-22
    /// 18:00 UTC: crosses 995 hPa (nest spawn) in the first day, bottoms
    /// out near 984 hPa before landfall around t ≈ 53 h, then fills inland.
    pub fn aila() -> Self {
        // `hpa_per_eta_m` is chosen so the Gaussian height target and the
        // rotational wind target sit in approximate gradient-wind balance:
        // a geostrophically balanced vortex of peak wind `w·D` and radius
        // `R` carries a height depression of ≈ f·(w·D)·R/g metres for a
        // depth of D hPa, i.e. hPa-per-metre ≈ g/(f·R·w). Without this the
        // integrator's geostrophic adjustment would deepen the height
        // field far past the calibrated pressure lifecycle.
        let f0 = 2.0 * 7.292e-5 * 15.0f64.to_radians().sin();
        let radius_km = 200.0;
        let wind_per_depth = 1.2;
        VortexParams {
            start_lon: 88.0,
            start_lat: 14.0,
            steer_east_ms: 0.7,
            steer_north_ms: 4.4,
            initial_depth_hpa: 6.0,
            // A little above Aila's observed ~968-hPa-minus-environment
            // depth so that even a coarse (decimated) grid, which
            // undersamples the Gaussian eye by a few hPa, still crosses
            // the deepest Table III stage (986 hPa).
            max_depth_hpa: 34.0,
            deepen_rate_per_hour: 0.07,
            fill_rate_per_hour: 0.12,
            radius_km,
            hpa_per_eta_m: 9.81 / (f0 * radius_km * 1000.0 * wind_per_depth),
            wind_per_depth,
        }
    }
}

/// Evolving vortex state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VortexState {
    /// Eye position, km east of the domain's south-west corner.
    pub x_km: f64,
    /// Eye position, km north of the domain's south-west corner.
    pub y_km: f64,
    /// Central pressure depth below the environment, hPa.
    pub depth_hpa: f64,
}

impl VortexState {
    /// Vortex at genesis.
    pub fn genesis(params: &VortexParams, geom: &DomainGeom) -> Self {
        let (x, y) = geom.lonlat_to_km(params.start_lon, params.start_lat);
        VortexState {
            x_km: x,
            y_km: y,
            depth_hpa: params.initial_depth_hpa,
        }
    }

    /// Advance track and intensity by `dt_secs` (explicit Euler — the
    /// time scales here are hours, so the integration-step sizes used by
    /// the dynamical core resolve them by orders of magnitude).
    pub fn advance(&mut self, dt_secs: f64, params: &VortexParams, geom: &DomainGeom) {
        let dt_h = dt_secs / 3600.0;
        self.x_km += params.steer_east_ms * dt_secs / 1000.0;
        self.y_km += params.steer_north_ms * dt_secs / 1000.0;
        let over_land = geom.is_land_km(self.x_km, self.y_km);
        if over_land {
            self.depth_hpa -= params.fill_rate_per_hour * self.depth_hpa * dt_h;
        } else {
            self.depth_hpa += params.deepen_rate_per_hour
                * self.depth_hpa
                * (1.0 - self.depth_hpa / params.max_depth_hpa)
                * dt_h;
        }
        self.depth_hpa = self.depth_hpa.clamp(0.0, params.max_depth_hpa);
    }

    /// Central (minimum) pressure of the analytic vortex, hPa.
    pub fn central_pressure_hpa(&self) -> f64 {
        BASE_PRESSURE_HPA - self.depth_hpa
    }

    /// Target height-field perturbation at a point, metres
    /// (Gaussian depression).
    pub fn target_eta(&self, x_km: f64, y_km: f64, params: &VortexParams) -> f64 {
        let r2 = (x_km - self.x_km).powi(2) + (y_km - self.y_km).powi(2);
        let amp_m = self.depth_hpa / params.hpa_per_eta_m;
        -amp_m * (-r2 / (2.0 * params.radius_km.powi(2))).exp()
    }

    /// Target wind at a point, `(u, v)` m/s: solid-body rotation inside the
    /// radius of maximum wind, exponential decay outside (Rankine-like,
    /// smooth), plus the steering flow.
    pub fn target_uv(&self, x_km: f64, y_km: f64, params: &VortexParams) -> (f64, f64) {
        let dx = x_km - self.x_km;
        let dy = y_km - self.y_km;
        let r = (dx * dx + dy * dy).sqrt();
        let rm = params.radius_km;
        let vmax = params.wind_per_depth * self.depth_hpa;
        let vt = if r < 1e-9 {
            0.0
        } else if r <= rm {
            vmax * r / rm
        } else {
            vmax * (-((r - rm) / (2.0 * rm))).exp()
        };
        // Cyclonic (counter-clockwise, northern hemisphere): tangential
        // unit vector is (-dy, dx)/r.
        let (tu, tv) = if r < 1e-9 {
            (0.0, 0.0)
        } else {
            (-dy / r, dx / r)
        };
        (
            vt * tu + params.steer_east_ms,
            vt * tv + params.steer_north_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (VortexParams, DomainGeom, VortexState) {
        let p = VortexParams::aila();
        let g = DomainGeom::bay_of_bengal();
        let s = VortexState::genesis(&p, &g);
        (p, g, s)
    }

    /// Advance by hours using many small steps.
    fn run_hours(s: &mut VortexState, hours: f64, p: &VortexParams, g: &DomainGeom) {
        let dt = 144.0;
        let steps = (hours * 3600.0 / dt).round() as usize;
        for _ in 0..steps {
            s.advance(dt, p, g);
        }
    }

    #[test]
    fn genesis_matches_start_position() {
        let (p, g, s) = setup();
        let (lon, lat) = g.km_to_lonlat(s.x_km, s.y_km);
        assert!((lon - p.start_lon).abs() < 1e-9);
        assert!((lat - p.start_lat).abs() < 1e-9);
        assert!((s.central_pressure_hpa() - 1007.0).abs() < 1e-9);
    }

    #[test]
    fn lifecycle_deepens_then_fills_over_land() {
        let (p, g, mut s) = setup();
        // Deepening phase: crosses the 995 hPa nest threshold within 30 h.
        run_hours(&mut s, 30.0, &p, &g);
        assert!(
            s.central_pressure_hpa() < 995.0,
            "after 30 h: {}",
            s.central_pressure_hpa()
        );
        let deep = s.depth_hpa;
        // Approaches the Table III floor before landfall (~53 h).
        run_hours(&mut s, 20.0, &p, &g);
        assert!(
            s.central_pressure_hpa() < 988.0,
            "after 50 h: {}",
            s.central_pressure_hpa()
        );
        assert!(s.depth_hpa > deep);
        // Landfall and inland decay: pressure fills back up.
        run_hours(&mut s, 20.0, &p, &g);
        let (_, lat) = g.km_to_lonlat(s.x_km, s.y_km);
        assert!(lat > 21.5, "eye is inland by 70 h (lat = {lat})");
        let after_landfall = s.depth_hpa;
        run_hours(&mut s, 10.0, &p, &g);
        assert!(s.depth_hpa < after_landfall, "filling over land");
    }

    #[test]
    fn track_moves_north_north_east() {
        let (p, g, mut s) = setup();
        let (lon0, lat0) = g.km_to_lonlat(s.x_km, s.y_km);
        run_hours(&mut s, 24.0, &p, &g);
        let (lon1, lat1) = g.km_to_lonlat(s.x_km, s.y_km);
        assert!(lat1 > lat0 + 2.0, "moved north");
        assert!(lon1 > lon0, "drifted east");
        assert!((lat1 - lat0) > 3.0 * (lon1 - lon0), "mostly northward");
    }

    #[test]
    fn eta_is_deepest_at_the_eye() {
        let (p, _, s) = setup();
        let center = s.target_eta(s.x_km, s.y_km, &p);
        assert!(center < 0.0);
        let off = s.target_eta(s.x_km + 300.0, s.y_km, &p);
        assert!(off > center && off < 0.0);
        let far = s.target_eta(s.x_km + 3000.0, s.y_km, &p);
        assert!(far.abs() < 1e-3, "far field flat: {far}");
        // Depth ↔ eta coupling: center amplitude = depth / hpa_per_eta_m.
        assert!((center + s.depth_hpa / p.hpa_per_eta_m).abs() < 1e-12);
    }

    #[test]
    fn wind_profile_peaks_at_radius_of_maximum_wind() {
        let (p, _, mut s) = setup();
        s.depth_hpa = 26.0; // Aila peak
        let speed = |r: f64| {
            let (u, v) = s.target_uv(s.x_km + r, s.y_km, &p);
            // Remove steering before comparing the rotational part.
            ((u - p.steer_east_ms).powi(2) + (v - p.steer_north_ms).powi(2)).sqrt()
        };
        let at_rm = speed(p.radius_km);
        assert!(
            (at_rm - 31.2).abs() < 0.5,
            "peak wind ≈ 31 m/s, got {at_rm}"
        );
        assert!(speed(50.0) < at_rm);
        assert!(speed(800.0) < at_rm * 0.3);
        // Eye itself is calm (plus steering).
        let (u, v) = s.target_uv(s.x_km, s.y_km, &p);
        assert!((u - p.steer_east_ms).abs() < 1e-9 && (v - p.steer_north_ms).abs() < 1e-9);
    }

    #[test]
    fn rotation_is_cyclonic() {
        let (p, _, s) = setup();
        // East of the eye, a counter-clockwise vortex blows northward.
        let (_, v) = s.target_uv(s.x_km + p.radius_km, s.y_km, &p);
        assert!(v > p.steer_north_ms);
        // West of the eye it blows southward.
        let (_, v) = s.target_uv(s.x_km - p.radius_km, s.y_km, &p);
        assert!(v < p.steer_north_ms);
    }

    #[test]
    fn depth_never_exceeds_bounds() {
        let (p, g, mut s) = setup();
        run_hours(&mut s, 500.0, &p, &g);
        assert!(s.depth_hpa >= 0.0 && s.depth_hpa <= p.max_depth_hpa);
    }
}
