//! Prognostic fields of one domain (parent or nest) and their diagnostics.

use crate::grid::Grid2;
use crate::vortex::BASE_PRESSURE_HPA;
use serde::{Deserialize, Serialize};

/// The shallow-water prognostic state on one grid: height perturbation
/// `eta` (m) and horizontal wind `(u, v)` (m/s), plus the grid spacing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fields {
    /// Grid spacing, km.
    pub dx_km: f64,
    /// Height-field perturbation, metres.
    pub eta: Grid2,
    /// Eastward wind, m/s.
    pub u: Grid2,
    /// Northward wind, m/s.
    pub v: Grid2,
    /// Column water-vapour mixing ratio, kg/kg (advected tracer with
    /// evaporation over sea and drying over land — the `QVAPOR` of a real
    /// WRF history).
    pub q: Grid2,
    /// Kilometre offset of this grid's (0,0) point from the parent
    /// domain's south-west corner (zero for the parent itself).
    pub origin_x_km: f64,
    /// Kilometre offset, northward component.
    pub origin_y_km: f64,
}

impl Fields {
    /// New zero state.
    pub fn zeros(nx: usize, ny: usize, dx_km: f64) -> Self {
        assert!(dx_km > 0.0, "grid spacing must be positive");
        Fields {
            dx_km,
            eta: Grid2::zeros(nx, ny),
            u: Grid2::zeros(nx, ny),
            v: Grid2::zeros(nx, ny),
            q: Grid2::zeros(nx, ny),
            origin_x_km: 0.0,
            origin_y_km: 0.0,
        }
    }

    /// Points west–east.
    pub fn nx(&self) -> usize {
        self.eta.nx()
    }

    /// Points south–north.
    pub fn ny(&self) -> usize {
        self.eta.ny()
    }

    /// Parent-frame kilometre x-coordinate of column `i`.
    #[inline]
    pub fn x_km(&self, i: usize) -> f64 {
        self.origin_x_km + i as f64 * self.dx_km
    }

    /// Parent-frame kilometre y-coordinate of row `j`.
    #[inline]
    pub fn y_km(&self, j: usize) -> f64 {
        self.origin_y_km + j as f64 * self.dx_km
    }

    /// Diagnosed surface pressure at `(i, j)`, hPa (linear in `eta`).
    #[inline]
    pub fn pressure_at(&self, i: usize, j: usize, hpa_per_eta_m: f64) -> f64 {
        BASE_PRESSURE_HPA + hpa_per_eta_m * self.eta.at(i, j)
    }

    /// Full diagnosed pressure field, hPa.
    pub fn pressure_field(&self, hpa_per_eta_m: f64) -> Grid2 {
        Grid2::from_fn(self.nx(), self.ny(), |i, j| {
            self.pressure_at(i, j, hpa_per_eta_m)
        })
    }

    /// Minimum diagnosed pressure and its parent-frame km location.
    pub fn min_pressure(&self, hpa_per_eta_m: f64) -> (f64, f64, f64) {
        let (eta_min, i, j) = self.eta.min_with_pos();
        (
            BASE_PRESSURE_HPA + hpa_per_eta_m * eta_min,
            self.x_km(i),
            self.y_km(j),
        )
    }

    /// Maximum wind speed over the grid, m/s.
    pub fn max_wind(&self) -> f64 {
        let mut max = 0.0f64;
        for (u, v) in self.u.data().iter().zip(self.v.data()) {
            max = max.max((u * u + v * v).sqrt());
        }
        max
    }

    /// Resample onto a grid of new extents spanning the same physical
    /// region (resolution change).
    pub fn resample(&self, nx: usize, ny: usize, dx_km: f64) -> Fields {
        Fields {
            dx_km,
            eta: self.eta.resample(nx, ny),
            u: self.u.resample(nx, ny),
            v: self.v.resample(nx, ny),
            q: self.q.resample(nx, ny),
            origin_x_km: self.origin_x_km,
            origin_y_km: self.origin_y_km,
        }
    }

    /// Adopt the grid extents, spacing, and origin of `other` in place,
    /// reusing existing allocations when possible. Cell values are
    /// unspecified afterwards — this is the scratch-buffer half of the
    /// integrator's double-buffering, and every kernel writes every cell.
    pub fn shape_like(&mut self, other: &Fields) {
        let (nx, ny) = (other.nx(), other.ny());
        if self.nx() != nx || self.ny() != ny {
            self.eta.reshape(nx, ny);
            self.u.reshape(nx, ny);
            self.v.reshape(nx, ny);
            self.q.reshape(nx, ny);
        }
        self.dx_km = other.dx_km;
        self.origin_x_km = other.origin_x_km;
        self.origin_y_km = other.origin_y_km;
    }

    /// True when every value in every field is finite — the integrator's
    /// blow-up detector (now used at checkpoints and on ingest; the
    /// per-step hot path relies on the kernels' finite probes instead).
    pub fn all_finite(&self) -> bool {
        self.eta.data().iter().all(|v| v.is_finite())
            && self.u.data().iter().all(|v| v.is_finite())
            && self.v.data().iter().all(|v| v.is_finite())
            && self.q.data().iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinates_account_for_origin() {
        let mut f = Fields::zeros(4, 4, 10.0);
        f.origin_x_km = 100.0;
        f.origin_y_km = 200.0;
        assert_eq!(f.x_km(0), 100.0);
        assert_eq!(f.x_km(3), 130.0);
        assert_eq!(f.y_km(2), 220.0);
    }

    #[test]
    fn pressure_diagnostic_is_linear_in_eta() {
        let mut f = Fields::zeros(3, 3, 10.0);
        f.eta.set(1, 1, -2.0);
        assert_eq!(f.pressure_at(1, 1, 10.0), BASE_PRESSURE_HPA - 20.0);
        assert_eq!(f.pressure_at(0, 0, 10.0), BASE_PRESSURE_HPA);
        let (p, x, y) = f.min_pressure(10.0);
        assert_eq!(p, BASE_PRESSURE_HPA - 20.0);
        assert_eq!((x, y), (10.0, 10.0));
    }

    #[test]
    fn max_wind_is_speed_not_component() {
        let mut f = Fields::zeros(2, 2, 1.0);
        f.u.set(0, 0, 3.0);
        f.v.set(0, 0, 4.0);
        assert!((f.max_wind() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn resample_changes_extent_keeps_origin() {
        let mut f = Fields::zeros(5, 5, 20.0);
        f.origin_x_km = 50.0;
        f.eta.set(2, 2, 1.0);
        let r = f.resample(9, 9, 10.0);
        assert_eq!(r.nx(), 9);
        assert_eq!(r.dx_km, 10.0);
        assert_eq!(r.origin_x_km, 50.0);
        // Centre value survives resampling.
        assert!((r.eta.at(4, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn finiteness_detector() {
        let mut f = Fields::zeros(2, 2, 1.0);
        assert!(f.all_finite());
        f.v.set(1, 1, f64::NAN);
        assert!(!f.all_finite());
    }
}
