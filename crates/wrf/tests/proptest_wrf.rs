//! Property tests for the dynamical core's numerical building blocks.

use proptest::prelude::*;
use wrf::decomp;
use wrf::{DomainGeom, Grid2, ModelConfig, VortexParams, VortexState, WrfModel};

fn arb_grid() -> impl Strategy<Value = Grid2> {
    (2usize..12, 2usize..12).prop_flat_map(|(nx, ny)| {
        prop::collection::vec(-1e3f64..1e3, nx * ny..=nx * ny).prop_map(move |vals| {
            let mut g = Grid2::zeros(nx, ny);
            g.data_mut().copy_from_slice(&vals);
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bilinear_sampling_is_bounded_by_grid_extremes(
        g in arb_grid(),
        x in -5.0f64..20.0,
        y in -5.0f64..20.0,
    ) {
        let v = g.sample(x, y);
        let (min, _, _) = g.min_with_pos();
        let max = g.max_value();
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9,
            "sample {v} escapes [{min}, {max}]");
    }

    #[test]
    fn resampling_is_bounded_and_idempotent_at_identity(
        g in arb_grid(),
        nx in 2usize..20,
        ny in 2usize..20,
    ) {
        let r = g.resample(nx, ny);
        let (min, _, _) = g.min_with_pos();
        let max = g.max_value();
        let (rmin, _, _) = r.min_with_pos();
        prop_assert!(rmin >= min - 1e-9);
        prop_assert!(r.max_value() <= max + 1e-9);
        // Identity resample is exact.
        let same = g.resample(g.nx(), g.ny());
        prop_assert_eq!(&same, &g);
    }

    #[test]
    fn vortex_depth_stays_in_bounds_for_any_step_pattern(
        steps in prop::collection::vec(1.0f64..3600.0, 1..200),
    ) {
        let params = VortexParams::aila();
        let geom = DomainGeom::bay_of_bengal();
        let mut v = VortexState::genesis(&params, &geom);
        for dt in steps {
            v.advance(dt, &params, &geom);
            prop_assert!(v.depth_hpa >= 0.0);
            prop_assert!(v.depth_hpa <= params.max_depth_hpa + 1e-9);
            prop_assert!(v.x_km.is_finite() && v.y_km.is_finite());
        }
    }

    #[test]
    fn decomposition_counts_are_internally_consistent(
        nx in 6usize..400,
        ny in 6usize..400,
        max_procs in 1usize..128,
    ) {
        let counts = decomp::allowed_proc_counts((nx, ny), 6, None, max_procs);
        for &p in &counts {
            prop_assert!(p <= max_procs);
            let (px, py) = decomp::best_decomposition(nx, ny, p, 6)
                .expect("allowed implies decomposable");
            prop_assert_eq!(px * py, p);
            prop_assert!(nx / px >= 6);
            prop_assert!(ny / py >= 6);
        }
        // Conversely: any count not in the list has no valid factorization.
        for p in 1..=max_procs {
            if !counts.contains(&p) {
                prop_assert!(!decomp::is_valid(nx, ny, p, 6));
            }
        }
    }

    #[test]
    fn integration_is_finite_and_thread_invariant(
        steps in 1usize..10,
        threads in 2usize..5,
        decimation in 12usize..24,
        resolution in prop::sample::select(vec![24.0f64, 18.0, 12.0, 10.0]),
    ) {
        let cfg = ModelConfig::aila_default()
            .with_decimation(decimation)
            .with_resolution(resolution);
        let mut serial = WrfModel::new(cfg).expect("valid");
        let mut parallel = serial.clone();
        serial.advance_steps(steps, 1).expect("finite");
        parallel.advance_steps(steps, threads).expect("finite");
        prop_assert!(serial.fields().all_finite());
        prop_assert_eq!(&serial, &parallel,
            "trajectory must not depend on worker count");
        prop_assert!(serial.min_pressure_hpa().is_finite());
        prop_assert!(serial.min_pressure_hpa() <= 1013.5);
    }
}
