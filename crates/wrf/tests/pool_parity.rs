//! Property tests for the persistent rank team: every parallel execution
//! path of the dynamical core must be *bitwise* identical to the serial
//! step, for any grid shape, any team size, nest active or not, and
//! across mid-run pool resizes. Parity is load-bearing — the adaptation
//! layer retunes the worker count mid-mission, and a retune that nudged
//! the trajectory would make every golden track and recovery byte-compare
//! in the repo flaky.

use proptest::prelude::*;
use wrf::par::HaloWorkspace;
use wrf::{
    DomainGeom, Fields, KernelPath, ModelConfig, PhysicsParams, VortexParams, VortexState,
    WorkerPool, WrfModel,
};

/// Deterministic splitmix64 — cheap way to fill four grids from one seed
/// without asking proptest for tens of thousands of shrinkable floats.
fn splitmix(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // Uniform in [0, 1).
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A physically plausible random state on an arbitrary grid.
fn random_fields(nx: usize, ny: usize, seed: u64) -> Fields {
    let mut f = Fields::zeros(nx, ny, 27.0);
    let mut s = seed;
    for v in f.eta.data_mut() {
        *v = 10.0 * splitmix(&mut s) - 5.0;
    }
    for v in f.u.data_mut() {
        *v = 60.0 * splitmix(&mut s) - 30.0;
    }
    for v in f.v.data_mut() {
        *v = 60.0 * splitmix(&mut s) - 30.0;
    }
    for v in f.q.data_mut() {
        *v = 0.03 * splitmix(&mut s);
    }
    f
}

struct Scene {
    vortex: VortexState,
    phys: PhysicsParams,
    vparams: VortexParams,
    geom: DomainGeom,
}

impl Scene {
    fn aila() -> Self {
        let vparams = VortexParams::aila();
        let geom = DomainGeom::bay_of_bengal();
        Scene {
            vortex: VortexState::genesis(&vparams, &geom),
            phys: PhysicsParams::bay_of_bengal(),
            vparams,
            geom,
        }
    }

    fn serial_step(&self, old: &Fields) -> (Fields, f64) {
        self.serial_step_path(old, KernelPath::default())
    }

    /// The per-path serial reference: team size 1 takes the serial fast
    /// path inside the pool, which is `step_serial_into` for Scalar and
    /// the lane-ordered `step_serial_lanes_into` for Lanes.
    fn serial_step_path(&self, old: &Fields, path: KernelPath) -> (Fields, f64) {
        let mut reference = WorkerPool::with_exact_team_path(1, path);
        let mut out = Fields::zeros(1, 1, 1.0);
        let probe = reference.step(
            old,
            &self.vortex,
            &self.phys,
            &self.vparams,
            &self.geom,
            120.0,
            &mut out,
        );
        (out, probe)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The pooled step is bitwise identical to serial for any grid shape
    /// and any team size, including teams larger than the row count.
    #[test]
    fn pooled_step_matches_serial_bitwise(
        nx in 4usize..40,
        ny in 4usize..40,
        team in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let scene = Scene::aila();
        let old = random_fields(nx, ny, seed);
        let (want, want_probe) = scene.serial_step(&old);

        let mut pool = WorkerPool::with_exact_team(team);
        let mut got = Fields::zeros(1, 1, 1.0);
        let probe = pool.step(
            &old, &scene.vortex, &scene.phys, &scene.vparams, &scene.geom, 120.0, &mut got,
        );
        prop_assert_eq!(&got, &want, "team {} diverged from serial", team);
        // The probe is a float sum reduced in band order, so its low bits
        // may differ from the serial row order — only its finiteness is
        // meaningful (and here everything is finite).
        prop_assert_eq!(probe.is_finite(), want_probe.is_finite());
    }

    /// A reused halo-exchange workspace (recycled channel buffers, warm
    /// shim rows) stays bitwise identical to serial over multiple steps.
    #[test]
    fn reused_halo_workspace_matches_serial_across_steps(
        nx in 4usize..32,
        ny in 4usize..32,
        ranks in 1usize..=8,
        steps in 1usize..4,
        seed in any::<u64>(),
    ) {
        let scene = Scene::aila();
        let mut serial = random_fields(nx, ny, seed);
        let mut pooled = serial.clone();
        let mut ws = HaloWorkspace::new(ranks, nx, ny);
        let mut out = Fields::zeros(1, 1, 1.0);
        for step in 0..steps {
            let (want, want_probe) = scene.serial_step(&serial);
            serial = want;
            let probe = ws.step(
                &pooled, &scene.vortex, &scene.phys, &scene.vparams, &scene.geom, 120.0, &mut out,
            );
            std::mem::swap(&mut pooled, &mut out);
            prop_assert_eq!(&pooled, &serial, "step {} diverged", step);
            prop_assert_eq!(probe.is_finite(), want_probe.is_finite());
        }
    }

    /// Resizing the pool between steps — what `FollowDecision` does when
    /// the manager retunes the processor count — never changes results.
    #[test]
    fn mid_run_pool_resizes_preserve_trajectory(
        nx in 4usize..32,
        ny in 4usize..32,
        teams in prop::collection::vec(1usize..=8, 2..5),
        seed in any::<u64>(),
    ) {
        let scene = Scene::aila();
        let mut serial = random_fields(nx, ny, seed);
        let mut pooled = serial.clone();
        let mut pool = WorkerPool::with_exact_team(teams[0]);
        let mut out = Fields::zeros(1, 1, 1.0);
        for &team in &teams {
            pool.resize(team);
            let (want, _) = scene.serial_step(&serial);
            serial = want;
            pool.step(
                &pooled, &scene.vortex, &scene.phys, &scene.vparams, &scene.geom, 120.0, &mut out,
            );
            std::mem::swap(&mut pooled, &mut out);
            prop_assert_eq!(&pooled, &serial, "diverged after resize to {}", team);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The lanes pool is bitwise identical to the lane-ordered serial
    /// reference — fields AND probe — for any grid and team size. The
    /// probe comparison is exact because the lanes path carries per-row
    /// probe slots and reduces them in a documented fixed order, so the
    /// team decomposition can never reorder the sum.
    #[test]
    fn lanes_pool_matches_lane_ordered_serial_bitwise(
        nx in 4usize..40,
        ny in 4usize..40,
        team in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let scene = Scene::aila();
        let old = random_fields(nx, ny, seed);
        let (want, want_probe) = scene.serial_step_path(&old, KernelPath::Lanes);

        let mut pool = WorkerPool::with_exact_team_path(team, KernelPath::Lanes);
        let mut got = Fields::zeros(1, 1, 1.0);
        let probe = pool.step(
            &old, &scene.vortex, &scene.phys, &scene.vparams, &scene.geom, 120.0, &mut got,
        );
        prop_assert_eq!(&got, &want, "lanes team {} diverged from lanes serial", team);
        prop_assert_eq!(
            probe.to_bits(), want_probe.to_bits(),
            "lanes probe must be bit-exact: {} vs {}", probe, want_probe
        );
    }

    /// Regression: the scalar path is untouched by the vectorization —
    /// a scalar pool at any team size still reproduces the original
    /// serial kernel bit for bit.
    #[test]
    fn scalar_pool_still_matches_original_serial_bitwise(
        nx in 4usize..40,
        ny in 4usize..40,
        team in 1usize..=8,
        seed in any::<u64>(),
    ) {
        let scene = Scene::aila();
        let old = random_fields(nx, ny, seed);
        let (want, want_probe) = scene.serial_step_path(&old, KernelPath::Scalar);

        let mut pool = WorkerPool::with_exact_team_path(team, KernelPath::Scalar);
        let mut got = Fields::zeros(1, 1, 1.0);
        let probe = pool.step(
            &old, &scene.vortex, &scene.phys, &scene.vparams, &scene.geom, 120.0, &mut got,
        );
        prop_assert_eq!(&got, &want, "scalar team {} diverged from serial", team);
        // The scalar probe is still reduced in band order (pre-existing
        // contract), so only finiteness is comparable across team sizes.
        prop_assert_eq!(probe.is_finite(), want_probe.is_finite());
    }

    /// Mid-run resizes of a lanes pool — the adaptation layer retuning
    /// workers — keep the trajectory and every probe bit-exact against
    /// the lane-ordered serial reference.
    #[test]
    fn lanes_mid_run_resizes_stay_bitwise(
        nx in 4usize..32,
        ny in 4usize..32,
        teams in prop::collection::vec(1usize..=8, 2..5),
        seed in any::<u64>(),
    ) {
        let scene = Scene::aila();
        let mut serial = random_fields(nx, ny, seed);
        let mut pooled = serial.clone();
        let mut pool = WorkerPool::with_exact_team_path(teams[0], KernelPath::Lanes);
        let mut out = Fields::zeros(1, 1, 1.0);
        for &team in &teams {
            pool.resize(team);
            prop_assert_eq!(pool.kernel_path(), KernelPath::Lanes, "resize must keep the path");
            let (want, want_probe) = scene.serial_step_path(&serial, KernelPath::Lanes);
            serial = want;
            let probe = pool.step(
                &pooled, &scene.vortex, &scene.phys, &scene.vparams, &scene.geom, 120.0, &mut out,
            );
            std::mem::swap(&mut pooled, &mut out);
            prop_assert_eq!(&pooled, &serial, "diverged after resize to {}", team);
            prop_assert_eq!(probe.to_bits(), want_probe.to_bits(), "probe drifted at team {}", team);
        }
    }
}

proptest! {
    // Full-model cases integrate a real (coarse) mission grid, so run few.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The whole model — double-buffered parent step, nest substeps,
    /// feedback, recentring — is thread-count invariant, nest or not.
    #[test]
    fn model_advance_is_thread_count_invariant(
        threads in 2usize..=6,
        with_nest in any::<bool>(),
        scalar_path in any::<bool>(),
        steps in 1usize..3,
    ) {
        let path = if scalar_path { KernelPath::Scalar } else { KernelPath::Lanes };
        let cfg = ModelConfig::aila_default()
            .with_resolution(48.0)
            .with_kernel_path(path);
        let mut reference = WrfModel::new(cfg).expect("valid configuration");
        let mut parallel = reference.clone();
        if with_nest {
            reference.spawn_nest();
            parallel.spawn_nest();
        }
        reference.advance_steps(steps, 1).expect("finite");
        parallel.advance_steps(steps, threads).expect("finite");
        prop_assert_eq!(reference.fields(), parallel.fields());
        prop_assert_eq!(
            reference.nest().map(|n| &n.fields),
            parallel.nest().map(|n| &n.fields)
        );
    }
}
