//! Mission-length integration test: the dynamically-simulated pressure
//! lifecycle must sweep the paper's Table III schedule with sensible
//! timing, because every experiment's resolution adaptation hangs off it.

use wrf::{ModelConfig, WrfModel};

/// Run the full 60-hour Aila mission on a decimated physics grid and
/// record when each Table III pressure threshold is first crossed.
#[test]
fn pressure_lifecycle_sweeps_table_iii() {
    let cfg = ModelConfig::aila_default().with_decimation(8);
    let mut model = WrfModel::new(cfg).unwrap();
    let thresholds = [995.0, 994.0, 992.0, 990.0, 988.0, 986.0];
    let mut crossed_at_h: Vec<Option<f64>> = vec![None; thresholds.len()];
    let mut min_seen = f64::INFINITY;

    let mut hour = 0.0;
    while hour < 60.0 {
        hour += 1.0;
        model.advance_to_minutes(hour * 60.0, 1).unwrap();
        let p = model.min_pressure_hpa();
        min_seen = min_seen.min(p);
        for (k, &th) in thresholds.iter().enumerate() {
            if crossed_at_h[k].is_none() && p < th {
                crossed_at_h[k] = Some(hour);
            }
        }
    }

    // Every threshold is crossed during the mission.
    for (k, t) in crossed_at_h.iter().enumerate() {
        assert!(
            t.is_some(),
            "threshold {} hPa never crossed (min seen {min_seen:.1})",
            thresholds[k]
        );
    }
    // Crossings are ordered and spread out — not all in one epoch.
    let times: Vec<f64> = crossed_at_h.iter().map(|t| t.unwrap()).collect();
    for w in times.windows(2) {
        assert!(w[1] >= w[0], "crossings in order: {times:?}");
    }
    assert!(
        times[0] >= 6.0 && times[0] <= 36.0,
        "995 hPa (nest spawn) in the first day-and-a-half: {times:?}"
    );
    assert!(
        times[5] - times[0] >= 10.0,
        "schedule spread over ≥10 h: {times:?}"
    );
    assert!(
        times[5] <= 55.0,
        "deepest stage reached before landfall: {times:?}"
    );
    // The dynamic minimum tracks the analytic cap (not an adjustment
    // artefact far below it).
    assert!(
        min_seen > 975.0 && min_seen < 990.0,
        "peak intensity in range: {min_seen:.1} hPa"
    );
}

/// The eye found by the dynamic fields lands near Darjeeling-ish latitudes
/// by mission end, having started in the central bay.
#[test]
fn track_reaches_the_gangetic_plain() {
    let cfg = ModelConfig::aila_default().with_decimation(8);
    let mut model = WrfModel::new(cfg).unwrap();
    let (lon0, lat0) = model.eye_lonlat();
    assert!((13.0..15.5).contains(&lat0), "genesis latitude {lat0}");
    model.advance_to_minutes(60.0 * 60.0, 1).unwrap();
    let (lon1, lat1) = model.eye_lonlat();
    assert!(lat1 > 20.0, "eye reached the north bay/coast: {lat1}");
    assert!(lon1 >= lon0 - 1.0, "no westward jump: {lon0} → {lon1}");
}
