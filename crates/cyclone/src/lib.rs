//! Cyclone-Aila tracking scenario: the application layer of the paper.
//!
//! This crate binds the generic substrates together into the paper's
//! concrete experiment:
//!
//! - [`ResolutionSchedule`] — Table III's pressure → resolution mapping
//!   ("climate scientists ... use coarser resolutions for the initial
//!   stages of cyclone formation and finer resolutions when the cyclone
//!   intensifies"), plus the 995 hPa nest-spawn threshold,
//! - [`Mission`] — the 2.5-day Aila tracking mission: model configuration,
//!   output-interval bounds, decision epoch, the frame-size model (bytes
//!   per history frame as a function of resolution and nest state), and
//!   the workload measure the performance model scales with,
//! - [`Site`] — Table IV's three resource configurations (`fire`,
//!   `gg-blr`, `moria`) with calibrated scaling laws, disks, and
//!   wide-area links.

mod mission;
mod schedule;
mod sites;

pub use mission::{FrameSizeModel, Mission};
pub use schedule::{ResolutionSchedule, ScheduleStage};
pub use sites::{Site, SiteKind};
