//! Table III: simulation resolutions for different pressure values.

use serde::{Deserialize, Serialize};

/// One stage of the resolution schedule: when the minimum pressure drops
/// to (or below) `pressure_hpa`, simulate at `resolution_km`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStage {
    /// Activation threshold, hPa.
    pub pressure_hpa: f64,
    /// Parent-domain resolution, km (the nest runs at a 1:3 ratio).
    pub resolution_km: f64,
}

/// The pressure-indexed resolution schedule, finest stage last.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolutionSchedule {
    /// Resolution before the first threshold is reached.
    pub default_resolution_km: f64,
    /// Stages sorted by descending pressure threshold.
    pub stages: Vec<ScheduleStage>,
    /// Spawn the tracking nest when pressure first drops below this.
    pub nest_spawn_hpa: f64,
}

impl ResolutionSchedule {
    /// The paper's Table III: 995→24, 994→21, 992→18, 990→15, 988→12,
    /// 986→10 km, with the nest spawned at 995 hPa.
    pub fn table_iii() -> Self {
        ResolutionSchedule {
            default_resolution_km: 24.0,
            stages: vec![
                ScheduleStage {
                    pressure_hpa: 995.0,
                    resolution_km: 24.0,
                },
                ScheduleStage {
                    pressure_hpa: 994.0,
                    resolution_km: 21.0,
                },
                ScheduleStage {
                    pressure_hpa: 992.0,
                    resolution_km: 18.0,
                },
                ScheduleStage {
                    pressure_hpa: 990.0,
                    resolution_km: 15.0,
                },
                ScheduleStage {
                    pressure_hpa: 988.0,
                    resolution_km: 12.0,
                },
                ScheduleStage {
                    pressure_hpa: 986.0,
                    resolution_km: 10.0,
                },
            ],
            nest_spawn_hpa: 995.0,
        }
    }

    /// The resolution prescribed for a minimum pressure of `p_hpa`.
    pub fn resolution_for(&self, p_hpa: f64) -> f64 {
        let mut res = self.default_resolution_km;
        for stage in &self.stages {
            if p_hpa <= stage.pressure_hpa {
                res = stage.resolution_km;
            }
        }
        res
    }

    /// True when a nest should exist at this pressure.
    pub fn nest_active(&self, p_hpa: f64) -> bool {
        p_hpa < self.nest_spawn_hpa
    }

    /// Hysteresis band, hPa, for applying the schedule to a *live* run.
    ///
    /// Changing resolution regrids the fields, and resampling a smooth
    /// pressure minimum perturbs it by a fraction of a hPa — enough to
    /// bounce back across the threshold just crossed and thrash the job
    /// handler with restarts. Refinement therefore applies immediately,
    /// but coarsening (and nest removal) waits until the pressure has
    /// risen this far past the threshold.
    pub const HYSTERESIS_HPA: f64 = 1.5;

    /// Schedule decision for a live run currently at `current_res_km`
    /// with `current_nest`: returns the `(resolution, nest)` to apply,
    /// refining eagerly and coarsening with hysteresis.
    pub fn apply_with_hysteresis(
        &self,
        p_hpa: f64,
        current_res_km: f64,
        current_nest: bool,
    ) -> (f64, bool) {
        let prescribed = self.resolution_for(p_hpa);
        let res = if prescribed < current_res_km {
            prescribed
        } else if prescribed > current_res_km {
            // Coarsen only when even a deeper-by-hysteresis reading would
            // still prescribe something coarser than the current grid.
            let conservative = self.resolution_for(p_hpa - Self::HYSTERESIS_HPA);
            if conservative > current_res_km {
                prescribed
            } else {
                current_res_km
            }
        } else {
            current_res_km
        };
        let nest = if self.nest_active(p_hpa) {
            true
        } else if current_nest {
            // Remove the nest only once the pressure has clearly risen
            // back above the spawn threshold.
            self.nest_active(p_hpa - Self::HYSTERESIS_HPA)
        } else {
            false
        };
        (res, nest)
    }

    /// Finest resolution in the schedule.
    pub fn finest_km(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.resolution_km)
            .fold(self.default_resolution_km, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_iii_rows() {
        let s = ResolutionSchedule::table_iii();
        // Exactly the paper's pairs.
        let rows: Vec<(f64, f64)> = s
            .stages
            .iter()
            .map(|st| (st.pressure_hpa, st.resolution_km))
            .collect();
        assert_eq!(
            rows,
            vec![
                (995.0, 24.0),
                (994.0, 21.0),
                (992.0, 18.0),
                (990.0, 15.0),
                (988.0, 12.0),
                (986.0, 10.0)
            ]
        );
    }

    #[test]
    fn resolution_refines_as_pressure_drops() {
        let s = ResolutionSchedule::table_iii();
        assert_eq!(s.resolution_for(1005.0), 24.0);
        assert_eq!(s.resolution_for(995.0), 24.0);
        assert_eq!(s.resolution_for(994.5), 24.0);
        assert_eq!(s.resolution_for(994.0), 21.0);
        assert_eq!(s.resolution_for(991.0), 18.0);
        assert_eq!(s.resolution_for(990.0), 15.0);
        assert_eq!(s.resolution_for(987.0), 12.0);
        assert_eq!(s.resolution_for(986.0), 10.0);
        assert_eq!(s.resolution_for(970.0), 10.0);
    }

    #[test]
    fn nest_spawns_below_995() {
        let s = ResolutionSchedule::table_iii();
        assert!(!s.nest_active(996.0));
        assert!(!s.nest_active(995.0));
        assert!(s.nest_active(994.9));
    }

    #[test]
    fn finest_is_10km_with_333_nest() {
        let s = ResolutionSchedule::table_iii();
        assert_eq!(s.finest_km(), 10.0);
        // The paper's "finest resolution of 3.33 km" is the 1:3 nest of
        // the 10-km stage.
        assert!((s.finest_km() / 3.0 - 3.333).abs() < 0.01);
    }

    #[test]
    fn hysteresis_refines_eagerly_coarsens_lazily() {
        let s = ResolutionSchedule::table_iii();
        // Refinement is immediate.
        assert_eq!(s.apply_with_hysteresis(993.9, 24.0, true), (21.0, true));
        // A wobble just above the threshold does not coarsen back...
        assert_eq!(s.apply_with_hysteresis(994.2, 21.0, true), (21.0, true));
        // ... but a clear rise does.
        assert_eq!(s.apply_with_hysteresis(996.0, 21.0, true), (24.0, true));
        // Nest removal needs the pressure clearly above the spawn level.
        assert!(s.apply_with_hysteresis(995.5, 24.0, true).1);
        assert!(!s.apply_with_hysteresis(997.0, 24.0, true).1);
        // No nest stays no-nest above the threshold.
        assert!(!s.apply_with_hysteresis(1000.0, 24.0, false).1);
        // And spawning is immediate at the threshold.
        assert!(s.apply_with_hysteresis(994.9, 24.0, false).1);
    }

    #[test]
    fn monotone_schedule_means_monotone_refinement() {
        let s = ResolutionSchedule::table_iii();
        let mut prev = f64::INFINITY;
        for p in (960..=1010).rev() {
            let r = s.resolution_for(p as f64);
            assert!(r <= prev, "resolution coarsened as pressure dropped");
            prev = r;
        }
    }
}
