//! Table IV: the three simulation/visualization resource configurations.
//!
//! The scaling-law coefficients are calibrated (DESIGN.md §6) so that the
//! mission's compute time at maximum cores lands in the paper's 20–26
//! wall-hour range per site, with per-site CPU factors reflecting the
//! hardware generations (fire: 2.64 GHz Opteron; gg-blr: 3.16 GHz Xeon;
//! moria: 1.8 GHz Opteron).

use crate::mission::Mission;
use perfmodel::{ProcTable, ScalingFit};
use resources::{Cluster, Disk, Network};
use wrf::{decomp, MIN_NEST_POINTS_PER_RANK, MIN_PARENT_POINTS_PER_RANK};

/// Which of the paper's three experiment settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// `fire` at IISc — visualization in the same campus (56 Mbps).
    InterDepartment,
    /// `gg-blr` at C-DAC Bangalore over the NKN (40 Mbps).
    IntraCountry,
    /// `moria` at UTK, Knoxville — trans-continental link (60 Kbps).
    CrossContinent,
}

impl SiteKind {
    /// All three, in the paper's order.
    pub fn all() -> [SiteKind; 3] {
        [
            SiteKind::InterDepartment,
            SiteKind::IntraCountry,
            SiteKind::CrossContinent,
        ]
    }
}

/// One simulation site plus its link to the visualization workstation.
#[derive(Debug, Clone)]
pub struct Site {
    /// Which experiment setting this is.
    pub kind: SiteKind,
    /// Paper's configuration label.
    pub label: &'static str,
    /// The simulation cluster.
    pub cluster: Cluster,
    /// Stable storage available to the framework, decimal gigabytes
    /// (Table IV's "Maximum Disk Space Used").
    pub disk_gb: f64,
    /// Average sim→vis bandwidth, megabits per second.
    pub bandwidth_mbps: f64,
    /// One-way latency of the link, seconds.
    pub latency_secs: f64,
    /// Multiplicative bandwidth variability half-width.
    pub variability: f64,
    /// Seconds the visualization workstation needs per frame (hardware-
    /// accelerated VisIt on the GeForce 7800 GTX).
    pub render_secs_per_frame: f64,
}

impl Site {
    /// fire: 24 dual-core Opteron 2218 (48 cores), 182 GB, 56 Mbps.
    pub fn inter_department() -> Self {
        Site {
            kind: SiteKind::InterDepartment,
            label: "inter-department",
            cluster: Cluster::new(
                "fire",
                48,
                150e6, // gigabit-ethernet NFS-class parallel I/O
                180.0,
                ScalingFit::from_coeffs([0.3, 2.2e-3, 2e-3, 0.02]),
            ),
            disk_gb: 182.0,
            bandwidth_mbps: 56.0,
            latency_secs: 0.002,
            variability: 0.15,
            render_secs_per_frame: 2.0,
        }
    }

    /// gg-blr: Xeon X5460 quad-cores, 90 cores used, 150 GB, 40 Mbps NKN.
    pub fn intra_country() -> Self {
        Site {
            kind: SiteKind::IntraCountry,
            label: "intra-country",
            cluster: Cluster::new(
                "gg-blr",
                90,
                400e6, // Infiniband-attached storage
                180.0,
                // Per-core constant above fire's despite the newer Xeons:
                // gg-blr was a shared production cluster (the paper's
                // intra-country run took 26 h to fire's 20 h for the same
                // mission) — contention folded into the scaling law.
                ScalingFit::from_coeffs([0.3, 6.0e-3, 2e-3, 0.02]),
            ),
            disk_gb: 150.0,
            bandwidth_mbps: 40.0,
            latency_secs: 0.015,
            variability: 0.2,
            render_secs_per_frame: 2.0,
        }
    }

    /// moria: dual Opteron 265 (56 cores), 100 GB, 60 Kbps observed.
    pub fn cross_continent() -> Self {
        Site {
            kind: SiteKind::CrossContinent,
            label: "cross-continent",
            cluster: Cluster::new(
                "moria",
                56,
                80e6,
                180.0,
                ScalingFit::from_coeffs([0.3, 4.6e-3, 2e-3, 0.02]),
            ),
            disk_gb: 100.0,
            bandwidth_mbps: 0.060,
            latency_secs: 0.25,
            variability: 0.3,
            render_secs_per_frame: 2.0,
        }
    }

    /// Site for a [`SiteKind`].
    pub fn of_kind(kind: SiteKind) -> Self {
        match kind {
            SiteKind::InterDepartment => Self::inter_department(),
            SiteKind::IntraCountry => Self::intra_country(),
            SiteKind::CrossContinent => Self::cross_continent(),
        }
    }

    /// Fresh disk of this site's capacity.
    pub fn make_disk(&self) -> Disk {
        Disk::from_gb(self.disk_gb)
    }

    /// Fresh sim→vis network with this site's characteristics.
    pub fn make_network(&self, seed: u64) -> Network {
        Network::from_mbps(
            self.bandwidth_mbps,
            self.latency_secs,
            self.variability,
            seed,
        )
    }

    /// Processor counts this cluster admits for the mission at `res_km`,
    /// honouring WRF's per-rank grid-point minimums for both the parent
    /// and (when the schedule has one active) the nest.
    pub fn allowed_procs(&self, mission: &Mission, res_km: f64, has_nest: bool) -> Vec<usize> {
        let parent = mission.parent_grid(res_km);
        let nest = has_nest.then(|| (mission.nest_grid(res_km), MIN_NEST_POINTS_PER_RANK));
        decomp::allowed_proc_counts(
            parent,
            MIN_PARENT_POINTS_PER_RANK,
            nest,
            self.cluster.max_cores,
        )
    }

    /// The profiled time-per-step table for this cluster at `res_km` —
    /// the paper's "benchmark profiling runs with WRF" plus curve-fit
    /// interpolation, evaluated on the allowed processor counts.
    pub fn proc_table(&self, mission: &Mission, res_km: f64, has_nest: bool) -> ProcTable {
        let work = mission.work_points(res_km, has_nest);
        let allowed = self.allowed_procs(mission, res_km, has_nest);
        ProcTable::from_fit(&self.cluster.scaling, work, &allowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_headline_numbers() {
        let fire = Site::inter_department();
        assert_eq!(fire.cluster.name, "fire");
        assert_eq!(fire.cluster.max_cores, 48);
        assert_eq!(fire.disk_gb, 182.0);
        assert_eq!(fire.bandwidth_mbps, 56.0);

        let gg = Site::intra_country();
        assert_eq!(gg.cluster.name, "gg-blr");
        assert_eq!(gg.cluster.max_cores, 90);
        assert_eq!(gg.disk_gb, 150.0);
        assert_eq!(gg.bandwidth_mbps, 40.0);

        let moria = Site::cross_continent();
        assert_eq!(moria.cluster.name, "moria");
        assert_eq!(moria.cluster.max_cores, 56);
        assert_eq!(moria.disk_gb, 100.0);
        assert!((moria.bandwidth_mbps - 0.060).abs() < 1e-12);
    }

    #[test]
    fn max_cores_are_legal_at_every_schedule_stage() {
        let mission = Mission::aila();
        for site in SiteKind::all().map(Site::of_kind) {
            for res in [24.0, 21.0, 18.0, 15.0, 12.0, 10.0] {
                let allowed = site.allowed_procs(&mission, res, true);
                assert!(
                    allowed.contains(&site.cluster.max_cores),
                    "{}: {} cores illegal at {res} km",
                    site.label,
                    site.cluster.max_cores
                );
                assert!(allowed.contains(&1));
            }
        }
    }

    #[test]
    fn step_times_are_calibrated_to_paper_scale() {
        // At maximum cores and the coarsest stage, a step takes seconds;
        // at the finest stage, tens of seconds; and moria is slower than
        // gg-blr per step on equal work.
        let mission = Mission::aila();
        let fire = Site::inter_department();
        let t24 = fire.proc_table(&mission, 24.0, true).min_time();
        let t10 = fire.proc_table(&mission, 10.0, true).min_time();
        assert!((2.0..20.0).contains(&t24), "fire t(48) @24km = {t24}");
        assert!((20.0..90.0).contains(&t10), "fire t(48) @10km = {t10}");
        assert!(t10 > 3.0 * t24);

        let gg = Site::intra_country().proc_table(&mission, 24.0, true);
        let moria = Site::cross_continent().proc_table(&mission, 24.0, true);
        // Effective per-core step-time ordering at equal counts:
        // fire < moria < gg-blr (gg-blr's coefficient folds in production
        // -cluster contention — the paper's intra-country run was slower
        // than fire's despite newer CPUs; see the constructor comment).
        let gg48 = gg.time_for(48).unwrap();
        let moria48 = moria.time_for(48).unwrap();
        let fire48 = fire.proc_table(&mission, 24.0, true).time_for(48).unwrap();
        assert!(fire48 < moria48 && moria48 < gg48);
    }

    #[test]
    fn fewer_procs_is_slower() {
        let mission = Mission::aila();
        let t = Site::inter_department().proc_table(&mission, 24.0, true);
        assert!(t.max_time() > 2.0 * t.min_time());
        assert_eq!(t.fastest().0, 48, "max cores is fastest for this law");
    }

    #[test]
    fn networks_and_disks_construct() {
        for site in SiteKind::all().map(Site::of_kind) {
            let disk = site.make_disk();
            assert_eq!(disk.capacity(), (site.disk_gb * 1e9) as u64);
            let net = site.make_network(1);
            assert!((net.nominal_bps() - site.bandwidth_mbps * 1e6 / 8.0).abs() < 1.0);
        }
    }
}
