//! The Aila tracking mission: what the framework is asked to run.

use crate::schedule::ResolutionSchedule;
use serde::{Deserialize, Serialize};
use wrf::ModelConfig;

/// History-frame size model.
///
/// WRF history frames carry a stack of 3-D variables over the domain; the
/// paper's Table I quotes ~31 GB per frame for a 4486² 10-km grid, which
/// corresponds to ~385 values per column. The experiment-scale frames here
/// use 27 vertical levels × 14 variables (a standard WRF history set),
/// 4 bytes each — ≈95 MB at 24 km over the Bay-of-Bengal domain, growing
/// ≈5.8× by 10 km, plus the nest's own stack when one is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameSizeModel {
    /// Vertical levels in the output stack.
    pub levels: usize,
    /// Variables written per level.
    pub vars: usize,
    /// Bytes per value (f32 = 4).
    pub bytes_per_value: usize,
}

impl FrameSizeModel {
    /// The calibrated default (see DESIGN.md §6): a 27-level × 10-variable
    /// double-precision history stack — ≈135 MB at 24 km, ≈0.9 GB at
    /// 10 km including the nest. Sized so that (a) at the greedy
    /// algorithm's initial 3-minute output interval, production outruns
    /// even the fastest site link (the disk-dive dynamics of Fig. 6), yet
    /// (b) a full mission at the 25-minute maximum interval fits the
    /// smallest site disk with margin (the optimization method *can*
    /// complete cross-continent, as in the paper).
    pub fn wrf_history() -> Self {
        FrameSizeModel {
            levels: 27,
            vars: 10,
            bytes_per_value: 8,
        }
    }

    /// Bytes for a grid of `nx × ny` columns.
    pub fn bytes_for_grid(&self, nx: usize, ny: usize) -> u64 {
        (nx * ny * self.levels * self.vars * self.bytes_per_value) as u64
    }
}

/// Everything that defines one experiment mission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mission {
    /// Base model configuration (resolution is overridden by the schedule
    /// as the cyclone evolves).
    pub model: ModelConfig,
    /// Pressure → resolution schedule (Table III).
    pub schedule: ResolutionSchedule,
    /// Mission length in simulated hours (the paper simulates 2.5 days).
    pub duration_hours: f64,
    /// Decision-algorithm invocation period, wall-clock hours (paper: 1.5).
    pub decision_interval_hours: f64,
    /// Minimum output interval, simulated minutes (greedy's starting OI).
    pub min_output_interval_min: f64,
    /// Maximum output interval, simulated minutes (the paper's
    /// `upper_output_interval` of 25 simulated minutes).
    pub max_output_interval_min: f64,
    /// Frame-size model.
    pub frame_size: FrameSizeModel,
}

impl Mission {
    /// The paper's mission: 60 simulated hours starting 2009-05-22 18:00
    /// UTC, decisions every 1.5 h, output interval in [3, 25] simulated
    /// minutes, physics decimated ×8 so a full mission integrates in
    /// milliseconds (the nominal grids still size frames and compute).
    pub fn aila() -> Self {
        Mission {
            model: ModelConfig::aila_default().with_decimation(8),
            schedule: ResolutionSchedule::table_iii(),
            duration_hours: 60.0,
            decision_interval_hours: 1.5,
            min_output_interval_min: 3.0,
            max_output_interval_min: 25.0,
            frame_size: FrameSizeModel::wrf_history(),
        }
    }

    /// Builder: shorter/longer mission (tests run scaled-down missions).
    pub fn with_duration_hours(mut self, hours: f64) -> Self {
        assert!(hours > 0.0);
        self.duration_hours = hours;
        self
    }

    /// Builder: physics decimation override.
    pub fn with_decimation(mut self, decimation: usize) -> Self {
        self.model = self.model.with_decimation(decimation);
        self
    }

    /// Mission length in simulated minutes.
    pub fn duration_minutes(&self) -> f64 {
        self.duration_hours * 60.0
    }

    /// Nominal parent grid at `res_km` (sizes frames and workload).
    pub fn parent_grid(&self, res_km: f64) -> (usize, usize) {
        self.model.geom.grid_size(res_km)
    }

    /// Nominal nest grid at parent resolution `res_km` (the nest runs at
    /// `res_km / ratio` over its fixed window).
    pub fn nest_grid(&self, res_km: f64) -> (usize, usize) {
        let dx = res_km / self.model.nest.ratio as f64;
        let nx = (self.model.nest.width_km / dx).round() as usize + 1;
        let ny = (self.model.nest.height_km / dx).round() as usize + 1;
        (nx, ny)
    }

    /// Bytes of one history frame at `res_km`, with or without the nest.
    pub fn frame_bytes(&self, res_km: f64, has_nest: bool) -> u64 {
        let (nx, ny) = self.parent_grid(res_km);
        let mut bytes = self.frame_size.bytes_for_grid(nx, ny);
        if has_nest {
            let (nnx, nny) = self.nest_grid(res_km);
            bytes += self.frame_size.bytes_for_grid(nnx, nny);
        }
        bytes
    }

    /// Workload measure for the performance model: grid points advanced
    /// per parent step (parent + nest × substeps).
    pub fn work_points(&self, res_km: f64, has_nest: bool) -> f64 {
        let (nx, ny) = self.parent_grid(res_km);
        let mut work = (nx * ny) as f64;
        if has_nest {
            let (nnx, nny) = self.nest_grid(res_km);
            work += (nnx * nny * self.model.nest.ratio) as f64;
        }
        work
    }

    /// Integration step at `res_km`, simulated seconds.
    pub fn dt_secs(&self, res_km: f64) -> f64 {
        wrf::dt_for_resolution_secs(res_km)
    }

    /// Format a simulated-minutes offset as the paper's figure labels do:
    /// `"23-May 09:00"`. Mission time zero is 2009-05-22 18:00 UTC.
    pub fn format_sim_time(sim_minutes: f64) -> String {
        let total = 22.0 * 1440.0 + 18.0 * 60.0 + sim_minutes;
        let day = (total / 1440.0).floor() as i64;
        let rem = total - day as f64 * 1440.0;
        let hour = (rem / 60.0).floor() as i64;
        let min = (rem - hour as f64 * 60.0).round() as i64;
        // Carry a rounded-up minute (e.g. 59.7 → 60).
        let (hour, min) = if min == 60 {
            (hour + 1, 0)
        } else {
            (hour, min)
        };
        let (day, hour) = if hour == 24 {
            (day + 1, 0)
        } else {
            (day, hour)
        };
        if day <= 31 {
            format!("{day:02}-May {hour:02}:{min:02}")
        } else {
            format!("{:02}-Jun {hour:02}:{min:02}", day - 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_bytes_calibration() {
        let m = Mission::aila();
        let b24 = m.frame_bytes(24.0, false);
        // ≈135 MB at 24 km (see DESIGN.md §6); tolerate grid rounding.
        assert!(
            (110e6..165e6).contains(&(b24 as f64)),
            "24 km frame = {b24} bytes"
        );
        let b10 = m.frame_bytes(10.0, false);
        let ratio = b10 as f64 / b24 as f64;
        assert!(
            (5.0..7.0).contains(&ratio),
            "10 km frames ≈5.8× larger, got {ratio}"
        );
        // Nest adds its own stack.
        assert!(m.frame_bytes(24.0, true) > b24);
    }

    #[test]
    fn nest_grid_matches_paper_minimum() {
        let m = Mission::aila();
        // "a minimum nest grid size of 100x127" at the coarsest stage.
        let (nx, ny) = m.nest_grid(24.0);
        assert!((95..=110).contains(&nx), "nest nx = {nx}");
        assert!((120..=135).contains(&ny), "nest ny = {ny}");
        // Finer parent → bigger nest grid.
        let (fx, fy) = m.nest_grid(10.0);
        assert!(fx > 2 * nx && fy > 2 * ny);
    }

    #[test]
    fn work_scales_superlinearly_with_refinement() {
        let m = Mission::aila();
        let w24 = m.work_points(24.0, true);
        let w10 = m.work_points(10.0, true);
        assert!(w10 > 4.0 * w24, "w24={w24}, w10={w10}");
        assert!(m.work_points(24.0, true) > m.work_points(24.0, false));
    }

    #[test]
    fn sim_time_formatting() {
        assert_eq!(Mission::format_sim_time(0.0), "22-May 18:00");
        assert_eq!(Mission::format_sim_time(6.0 * 60.0), "23-May 00:00");
        assert_eq!(Mission::format_sim_time(15.0 * 60.0), "23-May 09:00");
        assert_eq!(Mission::format_sim_time(54.0 * 60.0), "25-May 00:00");
        assert_eq!(Mission::format_sim_time(60.0 * 60.0), "25-May 06:00");
        assert_eq!(Mission::format_sim_time(25.0), "22-May 18:25");
    }

    #[test]
    fn dt_tracks_resolution() {
        let m = Mission::aila();
        assert_eq!(m.dt_secs(24.0), 144.0);
        assert_eq!(m.dt_secs(10.0), 60.0);
    }

    #[test]
    fn duration_builder() {
        let m = Mission::aila().with_duration_hours(6.0);
        assert_eq!(m.duration_minutes(), 360.0);
    }
}
