//! Cluster model: the machine the simulation runs on.

use perfmodel::ScalingFit;

/// A named cluster with its processor space, parallel-I/O bandwidth,
/// restart cost, and fitted scaling law.
///
/// The three instances used in the experiments mirror the paper's
/// Table IV: `fire` (IISc, 48 cores), `gg-blr` (C-DAC, 90 cores used) and
/// `moria` (UTK, 56 cores); their constructors live in the `cyclone`
/// crate's site presets, which also calibrate the scaling coefficients.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Machine name as the paper uses it (`fire`, `gg-blr`, `moria`).
    pub name: String,
    /// Maximum cores the experiments may use.
    pub max_cores: usize,
    /// Aggregate parallel-I/O bandwidth to stable storage, bytes/second.
    pub io_bps: f64,
    /// Wall seconds to stop WRF, reschedule, and restart from checkpoint
    /// with a new configuration.
    pub restart_overhead_secs: f64,
    /// Fitted scaling law for seconds-per-step as f(procs, work).
    pub scaling: ScalingFit,
}

impl Cluster {
    /// New cluster.
    ///
    /// # Panics
    /// On non-positive cores, I/O bandwidth, or negative restart overhead.
    pub fn new(
        name: impl Into<String>,
        max_cores: usize,
        io_bps: f64,
        restart_overhead_secs: f64,
        scaling: ScalingFit,
    ) -> Self {
        assert!(max_cores > 0, "cluster needs at least one core");
        assert!(
            io_bps > 0.0 && io_bps.is_finite(),
            "I/O bandwidth must be positive"
        );
        assert!(
            restart_overhead_secs >= 0.0,
            "restart overhead must be non-negative"
        );
        Cluster {
            name: name.into(),
            max_cores,
            io_bps,
            restart_overhead_secs,
            scaling,
        }
    }

    /// Seconds to write `bytes` through the parallel-I/O subsystem
    /// (the LP's `TIO` for one frame).
    pub fn io_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.io_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(
            "fire",
            48,
            2e9,
            180.0,
            ScalingFit::from_coeffs([0.1, 1e-6, 1e-4, 0.01]),
        )
    }

    #[test]
    fn io_time_is_linear_in_bytes() {
        let c = cluster();
        assert_eq!(c.io_time(2_000_000_000), 1.0);
        assert_eq!(c.io_time(0), 0.0);
    }

    #[test]
    fn scaling_law_is_queryable() {
        let c = cluster();
        let t1 = c.scaling.predict(1.0, 1e6);
        let t48 = c.scaling.predict(48.0, 1e6);
        assert!(t48 < t1, "more cores must be faster for this law");
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        Cluster::new(
            "x",
            0,
            1.0,
            0.0,
            ScalingFit::from_coeffs([1.0, 0.0, 0.0, 0.0]),
        );
    }
}
