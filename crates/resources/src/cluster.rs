//! Cluster model: the machine the simulation runs on.

use perfmodel::ScalingFit;

/// A named cluster with its processor space, parallel-I/O bandwidth,
/// restart cost, and fitted scaling law.
///
/// The three instances used in the experiments mirror the paper's
/// Table IV: `fire` (IISc, 48 cores), `gg-blr` (C-DAC, 90 cores used) and
/// `moria` (UTK, 56 cores); their constructors live in the `cyclone`
/// crate's site presets, which also calibrate the scaling coefficients.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Machine name as the paper uses it (`fire`, `gg-blr`, `moria`).
    pub name: String,
    /// Maximum cores the experiments may use.
    pub max_cores: usize,
    /// Aggregate parallel-I/O bandwidth to stable storage, bytes/second.
    pub io_bps: f64,
    /// Wall seconds to stop WRF, reschedule, and restart from checkpoint
    /// with a new configuration.
    pub restart_overhead_secs: f64,
    /// Fitted scaling law for seconds-per-step as f(procs, work).
    pub scaling: ScalingFit,
}

impl Cluster {
    /// New cluster.
    ///
    /// # Panics
    /// On non-positive cores, I/O bandwidth, or negative restart overhead.
    pub fn new(
        name: impl Into<String>,
        max_cores: usize,
        io_bps: f64,
        restart_overhead_secs: f64,
        scaling: ScalingFit,
    ) -> Self {
        assert!(max_cores > 0, "cluster needs at least one core");
        assert!(
            io_bps > 0.0 && io_bps.is_finite(),
            "I/O bandwidth must be positive"
        );
        assert!(
            restart_overhead_secs >= 0.0,
            "restart overhead must be non-negative"
        );
        Cluster {
            name: name.into(),
            max_cores,
            io_bps,
            restart_overhead_secs,
            scaling,
        }
    }

    /// Seconds to write `bytes` through the parallel-I/O subsystem
    /// (the LP's `TIO` for one frame).
    pub fn io_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.io_bps
    }
}

/// A cluster's core pool shared by several missions (fleet mode).
///
/// One core is *reserved* per member so a mission can never be starved to
/// zero processors; the remaining `total - members` cores are contended.
/// Each member periodically *reallocates* its demand at a decision epoch
/// and is granted its reserve plus whatever slice of the contended pool
/// the other members have left unclaimed, so `sum(held) <= total` always.
/// The grant is a pure function of the call sequence, and the fleet
/// coordinator executes reallocations in global `(time, shard)` order, so
/// contention resolves identically on every run regardless of worker
/// threads: at a tied decision instant the lower shard id claims first.
#[derive(Debug, Clone)]
pub struct SharedCores {
    total: usize,
    held: Vec<usize>,
}

impl SharedCores {
    /// Pool of `total` cores shared by `members` missions, nothing held.
    ///
    /// # Panics
    /// If there are no members or fewer cores than members (each member
    /// needs its reserved core).
    pub fn new(total: usize, members: usize) -> Self {
        assert!(members > 0, "shared core pool needs at least one member");
        assert!(
            total >= members,
            "shared core pool needs at least one core per member \
             (total={total}, members={members})"
        );
        SharedCores {
            total,
            held: vec![0; members],
        }
    }

    /// Total cores in the pool.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Cores currently held by `member`.
    pub fn held(&self, member: usize) -> usize {
        self.held[member]
    }

    /// Cores not held by anyone.
    pub fn free(&self) -> usize {
        self.total - self.held.iter().sum::<usize>()
    }

    /// Replace `member`'s holding with up to `want` cores (at least one —
    /// the member's reserve). Returns the grant actually held after the
    /// call: `1 + min(want - 1, contended cores left by the others)`.
    pub fn realloc(&mut self, member: usize, want: usize) -> usize {
        let members = self.held.len();
        let others_extra: usize = self
            .held
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != member)
            .map(|(_, h)| h.saturating_sub(1))
            .sum();
        let contended_left = (self.total - members).saturating_sub(others_extra);
        let grant = 1 + want.saturating_sub(1).min(contended_left);
        self.held[member] = grant;
        grant
    }

    /// Release everything `member` holds (mission complete or halted).
    pub fn release_all(&mut self, member: usize) {
        self.held[member] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Cluster {
        Cluster::new(
            "fire",
            48,
            2e9,
            180.0,
            ScalingFit::from_coeffs([0.1, 1e-6, 1e-4, 0.01]),
        )
    }

    #[test]
    fn io_time_is_linear_in_bytes() {
        let c = cluster();
        assert_eq!(c.io_time(2_000_000_000), 1.0);
        assert_eq!(c.io_time(0), 0.0);
    }

    #[test]
    fn scaling_law_is_queryable() {
        let c = cluster();
        let t1 = c.scaling.predict(1.0, 1e6);
        let t48 = c.scaling.predict(48.0, 1e6);
        assert!(t48 < t1, "more cores must be faster for this law");
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        Cluster::new(
            "x",
            0,
            1.0,
            0.0,
            ScalingFit::from_coeffs([1.0, 0.0, 0.0, 0.0]),
        );
    }
}

#[cfg(test)]
mod shared_cores_tests {
    use super::*;

    #[test]
    fn realloc_grants_demand_when_uncontended() {
        let mut pool = SharedCores::new(64, 2);
        assert_eq!(pool.realloc(0, 48), 48);
        assert_eq!(pool.held(0), 48);
        assert_eq!(pool.free(), 16);
    }

    #[test]
    fn contention_never_oversubscribes_and_first_claimer_wins() {
        let mut pool = SharedCores::new(64, 2);
        assert_eq!(pool.realloc(0, 48), 48);
        // Member 1 wants 48 but only its reserve + the leftover remain.
        assert_eq!(pool.realloc(1, 48), 16);
        assert_eq!(pool.held(0) + pool.held(1), 64);
        assert_eq!(pool.free(), 0);
    }

    #[test]
    fn every_member_keeps_its_reserved_core() {
        let mut pool = SharedCores::new(8, 4);
        assert_eq!(pool.realloc(0, 100), 5); // 1 reserve + 4 contended
        assert_eq!(pool.realloc(1, 100), 1); // only the reserve left
        assert_eq!(pool.realloc(2, 100), 1);
        let total: usize = (0..4).map(|m| pool.held(m)).sum();
        assert!(total <= 8);
    }

    #[test]
    fn shrinking_returns_cores_to_the_pool() {
        let mut pool = SharedCores::new(16, 2);
        assert_eq!(pool.realloc(0, 15), 15);
        assert_eq!(pool.realloc(0, 4), 4);
        assert_eq!(pool.realloc(1, 12), 12);
    }

    #[test]
    fn release_all_frees_everything() {
        let mut pool = SharedCores::new(16, 2);
        pool.realloc(0, 10);
        pool.release_all(0);
        assert_eq!(pool.held(0), 0);
        assert_eq!(
            pool.realloc(1, 16),
            15,
            "only the peer reserve is kept back"
        );
    }

    #[test]
    #[should_panic(expected = "one core per member")]
    fn fewer_cores_than_members_rejected() {
        SharedCores::new(3, 4);
    }
}
