//! Wide-area network model and the bandwidth probe that observes it.
//!
//! The paper measures "the average observed bandwidth between the
//! simulation and visualization sites, obtained by using the time taken
//! for sending about 1 GB message across the network". Real WAN bandwidth
//! drifts, so the model carries a *temporally-correlated* multiplicative
//! factor (a bounded random walk): consecutive transfers see similar — not
//! identical — conditions, and a probe is an honest sample of the same
//! process the frames experience.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A simulation-site → visualization-site link.
#[derive(Debug, Clone)]
pub struct Network {
    /// Nominal (advertised) bandwidth, bytes per second.
    nominal_bps: f64,
    /// One-way latency added to every transfer, seconds.
    latency_secs: f64,
    /// Half-width of the multiplicative variability band (0 = ideal link).
    variability: f64,
    /// Current multiplicative factor in `[1−variability, 1+variability]`.
    factor: f64,
    /// Fault-injection multiplier (1.0 = healthy). Models route changes,
    /// congestion collapse, or a degraded WAN segment; applied on top of
    /// the variability walk so probes observe the degradation like any
    /// other condition.
    degradation: f64,
    rng: StdRng,
}

impl Network {
    /// New link. `variability` is clamped to `[0, 0.9]`.
    ///
    /// # Panics
    /// If `nominal_bps` is not positive and finite or latency is negative.
    pub fn new(nominal_bps: f64, latency_secs: f64, variability: f64, seed: u64) -> Self {
        assert!(
            nominal_bps > 0.0 && nominal_bps.is_finite(),
            "bandwidth must be positive"
        );
        assert!(latency_secs >= 0.0, "latency must be non-negative");
        Network {
            nominal_bps,
            latency_secs,
            variability: variability.clamp(0.0, 0.9),
            factor: 1.0,
            degradation: 1.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Ideal link: constant bandwidth, zero latency. Used by analytic
    /// cross-checks (Table I) where the paper assumes nominal numbers.
    pub fn ideal(nominal_bps: f64) -> Self {
        Self::new(nominal_bps, 0.0, 0.0, 0)
    }

    /// Convenience: megabits per second → link (as Table IV quotes rates).
    pub fn from_mbps(mbps: f64, latency_secs: f64, variability: f64, seed: u64) -> Self {
        Self::new(mbps * 1e6 / 8.0, latency_secs, variability, seed)
    }

    /// Nominal bandwidth in bytes per second.
    pub fn nominal_bps(&self) -> f64 {
        self.nominal_bps
    }

    /// Bandwidth that the *next* transfer will see, bytes/second.
    pub fn current_bps(&self) -> f64 {
        self.nominal_bps * self.factor * self.degradation
    }

    /// Inject (or clear, with 1.0) a fault: all subsequent transfers and
    /// probes see the nominal bandwidth scaled by `factor`.
    ///
    /// # Panics
    /// If `factor` is not positive and finite (a zero-bandwidth link makes
    /// transfer times infinite and would corrupt the event clock; model a
    /// dead link as a very small factor instead).
    pub fn set_degradation(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "degradation factor must be positive and finite, got {factor}"
        );
        self.degradation = factor;
    }

    /// Current fault multiplier (1.0 = healthy).
    pub fn degradation(&self) -> f64 {
        self.degradation
    }

    /// Advance the variability random walk one step and return the new
    /// effective bandwidth. Called once per transfer so conditions drift
    /// across a run but stay correlated between neighbouring transfers.
    pub fn step(&mut self) -> f64 {
        if self.variability > 0.0 {
            // Bounded random walk: move up to ±¼ of the band per step,
            // reflected at the edges.
            let band = self.variability;
            let delta = self.rng.gen_range(-band / 4.0..=band / 4.0);
            let lo = 1.0 - band;
            let hi = 1.0 + band;
            let mut f = self.factor + delta;
            if f < lo {
                f = lo + (lo - f);
            }
            if f > hi {
                f = hi - (f - hi);
            }
            self.factor = f.clamp(lo, hi);
        }
        self.current_bps()
    }

    /// Seconds to move `bytes` across the link at *current* conditions
    /// (bandwidth term + latency).
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_secs + bytes as f64 / self.current_bps()
    }
}

/// A shared egress pipe: one WAN uplink out of the simulation/broker
/// site that *many* client sessions draw from. Unlike [`Network`] (one
/// point-to-point link with its own variability walk), a `SharedLink`
/// models aggregate capacity: a pacing loop asks for the byte budget of
/// a scheduling quantum and divides it among sessions itself. The same
/// degradation knob as [`Network::set_degradation`] lets fault plans
/// sag the shared uplink.
#[derive(Debug, Clone)]
pub struct SharedLink {
    nominal_bps: f64,
    degradation: f64,
}

impl SharedLink {
    /// New shared uplink with the given aggregate capacity, bytes/second.
    ///
    /// # Panics
    /// If `nominal_bps` is not positive and finite.
    pub fn new(nominal_bps: f64) -> Self {
        assert!(
            nominal_bps > 0.0 && nominal_bps.is_finite(),
            "shared-link capacity must be positive"
        );
        SharedLink {
            nominal_bps,
            degradation: 1.0,
        }
    }

    /// Aggregate capacity currently available, bytes/second.
    pub fn current_bps(&self) -> f64 {
        self.nominal_bps * self.degradation
    }

    /// Nominal (healthy) capacity, bytes/second.
    pub fn nominal_bps(&self) -> f64 {
        self.nominal_bps
    }

    /// Bytes the link can move in a scheduling quantum of `dt_secs`.
    pub fn budget_bytes(&self, dt_secs: f64) -> f64 {
        assert!(dt_secs >= 0.0 && dt_secs.is_finite(), "bad quantum");
        self.current_bps() * dt_secs
    }

    /// Inject (or clear, with 1.0) a fault on the shared uplink; same
    /// contract as [`Network::set_degradation`].
    ///
    /// # Panics
    /// If `factor` is not positive and finite.
    pub fn set_degradation(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "degradation factor must be positive and finite, got {factor}"
        );
        self.degradation = factor;
    }

    /// Current fault multiplier (1.0 = healthy).
    pub fn degradation(&self) -> f64 {
        self.degradation
    }
}

/// Ratio beyond which a bandwidth sample is treated as a regime change
/// rather than in-band drift. The variability walk moves the factor a
/// bounded fraction of its band per step, so even across several steps a
/// jump beyond 2× in either direction cannot be walk noise at the sites'
/// settings — it is a fault appearing or clearing.
const REGIME_RATIO: f64 = 2.0;

/// The paper's bandwidth measurement: time a ~1 GB message and divide.
///
/// Keeps an exponential moving average so a single unlucky sample does not
/// whipsaw the decision algorithm — the paper likewise feeds the *average
/// observed* bandwidth to the manager.
#[derive(Debug, Clone)]
pub struct BandwidthProbe {
    probe_bytes: u64,
    ema_bps: Option<f64>,
    alpha: f64,
}

impl Default for BandwidthProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl BandwidthProbe {
    /// Probe with the paper's 1 GB message and an EMA weight of 0.5.
    pub fn new() -> Self {
        BandwidthProbe {
            probe_bytes: 1_000_000_000,
            ema_bps: None,
            alpha: 0.5,
        }
    }

    /// Use a custom probe size (tests; very slow links where 1 GB would be
    /// impractical — the paper's cross-continent link moves 1 GB in ~37 h).
    pub fn with_probe_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0);
        self.probe_bytes = bytes;
        self
    }

    /// Take one measurement against the link and fold it into the average.
    /// Returns the updated average observed bandwidth (bytes/second).
    ///
    /// The EMA exists to smooth in-band variability noise; a sample that
    /// differs from the average by more than `REGIME_RATIO` (2×) in either
    /// direction is a regime change (fault, route change, restored link),
    /// not noise, and the average snaps to it immediately — otherwise a
    /// 50× link collapse would take the better part of a mission to show
    /// up in the decision inputs.
    pub fn measure(&mut self, net: &mut Network) -> f64 {
        let bps = net.step();
        // Observed rate includes the latency penalty, as a wall-clock
        // timing of a real message would.
        let elapsed = net.latency_secs + self.probe_bytes as f64 / bps;
        let observed = self.probe_bytes as f64 / elapsed;
        let ema = match self.ema_bps {
            None => observed,
            Some(prev) if observed > prev * REGIME_RATIO || observed < prev / REGIME_RATIO => {
                observed
            }
            Some(prev) => self.alpha * observed + (1.0 - self.alpha) * prev,
        };
        self.ema_bps = Some(ema);
        ema
    }

    /// Last averaged observation, if any measurement has been taken.
    pub fn average_bps(&self) -> Option<f64> {
        self.ema_bps
    }
}

/// The shared wide-area uplink contended by a fleet of missions: a single
/// transfer token with a FIFO wait queue and per-member grant mailboxes.
///
/// Exactly one member transfers at a time (the paper's WAN is the scarce
/// serialized resource between the simulation site and the visualization
/// site). A member that finds the link busy *enqueues*; on release the
/// earliest `(request time, member)` waiter is granted. Grants are
/// mailboxes — the releasing shard never touches the waiter's event queue;
/// the waiter's own poll discovers the grant, stamped
/// `max(release time, request time)` so it is always at or after both.
///
/// All decisions are pure functions of the call sequence; the fleet
/// coordinator calls acquire/release in global `(time, shard)` order, so
/// the token's history is identical on every run.
#[derive(Debug, Clone)]
pub struct WanQueue {
    holder: Option<usize>,
    /// Waiting members as `(request time secs, member)`, kept sorted.
    waiters: Vec<(f64, usize)>,
    /// Pending grant time per member, consumed by the member's own poll.
    granted: Vec<Option<f64>>,
}

impl WanQueue {
    /// A free link shared by `members` missions.
    pub fn new(members: usize) -> Self {
        WanQueue {
            holder: None,
            waiters: Vec::new(),
            granted: vec![None; members],
        }
    }

    /// Member currently holding (or granted) the link, if any.
    pub fn holder(&self) -> Option<usize> {
        self.holder
    }

    /// Number of members queued behind the holder.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    /// Try to take the link at time `now`. Returns `true` on success;
    /// otherwise the member is enqueued FIFO and will receive a grant.
    ///
    /// # Panics
    /// If the member already holds or is already queued (a double request
    /// is an engine bug).
    pub fn try_acquire(&mut self, member: usize, now: f64) -> bool {
        assert_ne!(self.holder, Some(member), "member already holds the WAN");
        assert!(
            !self.waiters.iter().any(|&(_, m)| m == member),
            "member already queued for the WAN"
        );
        assert!(
            self.granted[member].is_none(),
            "member has an unconsumed WAN grant"
        );
        if self.holder.is_none() {
            self.holder = Some(member);
            true
        } else {
            let entry = (now, member);
            let pos = self.waiters.partial_cmp_insert_pos(entry);
            self.waiters.insert(pos, entry);
            false
        }
    }

    /// Release the link at time `now`, passing it to the earliest waiter
    /// (its grant mailbox is stamped `max(now, request time)`).
    ///
    /// # Panics
    /// If `member` does not hold the link.
    pub fn release(&mut self, member: usize, now: f64) {
        assert_eq!(self.holder, Some(member), "release by non-holder");
        self.holder = None;
        if !self.waiters.is_empty() {
            let (req_at, next) = self.waiters.remove(0);
            self.holder = Some(next);
            self.granted[next] = Some(now.max(req_at));
        }
    }

    /// The pending grant time for `member`, if one is waiting.
    pub fn grant_time(&self, member: usize) -> Option<f64> {
        self.granted[member]
    }

    /// Consume `member`'s grant (it now owns the link until `release`).
    ///
    /// # Panics
    /// If no grant is pending.
    pub fn take_grant(&mut self, member: usize) -> f64 {
        debug_assert_eq!(self.holder, Some(member));
        self.granted[member]
            .take()
            .expect("take_grant without a pending grant")
    }

    /// Walk away at time `now`: drop a queued request, decline an
    /// unconsumed grant (the link passes on), or release a held link —
    /// whichever state the member is in. Used when an outage or mission
    /// halt cancels interest in the link. No-op if the member has none.
    pub fn cancel(&mut self, member: usize, now: f64) {
        if self.granted[member].is_some() {
            self.granted[member] = None;
            self.release(member, now);
        } else if self.holder == Some(member) {
            self.release(member, now);
        } else {
            self.waiters.retain(|&(_, m)| m != member);
        }
    }
}

/// Insertion-position helper for the sorted waiter list (f64 keys are
/// always finite here, so a partial compare is total in practice).
trait SortedInsert {
    fn partial_cmp_insert_pos(&self, entry: (f64, usize)) -> usize;
}

impl SortedInsert for Vec<(f64, usize)> {
    fn partial_cmp_insert_pos(&self, entry: (f64, usize)) -> usize {
        self.iter()
            .position(|e| (e.0, e.1) > (entry.0, entry.1))
            .unwrap_or(self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_is_exact() {
        let net = Network::ideal(1e6);
        assert_eq!(net.transfer_time(2_000_000), 2.0);
        assert_eq!(net.current_bps(), 1e6);
    }

    #[test]
    fn mbps_conversion() {
        let net = Network::from_mbps(56.0, 0.0, 0.0, 0);
        assert!((net.nominal_bps() - 7e6).abs() < 1.0);
    }

    #[test]
    fn latency_adds_to_transfers() {
        let net = Network::new(1e6, 0.25, 0.0, 0);
        assert_eq!(net.transfer_time(1_000_000), 1.25);
    }

    #[test]
    fn variability_stays_in_band() {
        let mut net = Network::new(1e6, 0.0, 0.3, 42);
        for _ in 0..1000 {
            let bps = net.step();
            assert!(
                (0.7e6..=1.3e6).contains(&bps),
                "bandwidth {bps} escaped the band"
            );
        }
    }

    #[test]
    fn variability_is_deterministic_per_seed() {
        let run = |seed| {
            let mut net = Network::new(1e6, 0.0, 0.3, seed);
            (0..50).map(|_| net.step()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn walk_is_temporally_correlated() {
        // Adjacent steps move at most band/2 (±band/4 walk + reflection).
        let mut net = Network::new(1e6, 0.0, 0.4, 3);
        let mut prev = net.current_bps();
        for _ in 0..500 {
            let next = net.step();
            assert!((next - prev).abs() <= 0.2e6 + 1e-6);
            prev = next;
        }
    }

    #[test]
    fn probe_on_ideal_link_reports_nominal() {
        let mut net = Network::ideal(5e6);
        let mut probe = BandwidthProbe::new();
        assert_eq!(probe.average_bps(), None);
        let bw = probe.measure(&mut net);
        assert!((bw - 5e6).abs() < 1e-6);
    }

    #[test]
    fn probe_ema_smooths_samples() {
        let mut net = Network::new(1e6, 0.0, 0.5, 11);
        let mut probe = BandwidthProbe::new();
        let mut last = probe.measure(&mut net);
        for _ in 0..20 {
            let avg = probe.measure(&mut net);
            // EMA moves at most half the distance to the new sample, so it
            // can never leave the variability band either.
            assert!((0.5e6..=1.5e6).contains(&avg));
            last = avg;
        }
        assert!(probe.average_bps().unwrap() == last);
    }

    #[test]
    fn probe_snaps_on_regime_change() {
        // A 10× collapse must show up in the very next average, not after
        // half a dozen epochs of EMA convergence; same for the recovery.
        let mut net = Network::ideal(1e7);
        let mut probe = BandwidthProbe::new();
        probe.measure(&mut net);
        net.set_degradation(0.1);
        let degraded = probe.measure(&mut net);
        assert!(
            (degraded - 1e6).abs() < 1.0,
            "collapse visible immediately: {degraded}"
        );
        net.set_degradation(1.0);
        let restored = probe.measure(&mut net);
        assert!(
            (restored - 1e7).abs() < 1.0,
            "recovery visible immediately: {restored}"
        );
    }

    #[test]
    fn probe_accounts_for_latency() {
        // 1 MB probe over a fat but laggy pipe: observed < nominal.
        let mut net = Network::new(1e9, 1.0, 0.0, 0);
        let mut probe = BandwidthProbe::new().with_probe_bytes(1_000_000);
        let bw = probe.measure(&mut net);
        assert!(bw < 1e9 / 500.0, "latency should dominate: {bw}");
    }
}

#[cfg(test)]
mod shared_link_tests {
    use super::*;

    #[test]
    fn budget_scales_with_quantum_and_degradation() {
        let mut link = SharedLink::new(1e6);
        assert_eq!(link.budget_bytes(1.0), 1e6);
        assert_eq!(link.budget_bytes(0.5), 5e5);
        assert_eq!(link.budget_bytes(0.0), 0.0);
        link.set_degradation(0.25);
        assert_eq!(link.current_bps(), 2.5e5);
        assert_eq!(link.budget_bytes(2.0), 5e5);
        link.set_degradation(1.0);
        assert_eq!(link.nominal_bps(), 1e6);
        assert_eq!(link.degradation(), 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_capacity_rejected() {
        SharedLink::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_shared_degradation_rejected() {
        SharedLink::new(1e6).set_degradation(0.0);
    }
}

#[cfg(test)]
mod degradation_tests {
    use super::*;

    #[test]
    fn degradation_scales_transfers_and_probes() {
        let mut net = Network::ideal(1e6);
        assert_eq!(net.transfer_time(1_000_000), 1.0);
        net.set_degradation(0.1);
        assert!((net.transfer_time(1_000_000) - 10.0).abs() < 1e-9);
        let mut probe = BandwidthProbe::new().with_probe_bytes(1_000_000);
        let observed = probe.measure(&mut net);
        assert!(
            (observed - 1e5).abs() < 1.0,
            "probe sees the fault: {observed}"
        );
        net.set_degradation(1.0);
        assert_eq!(net.transfer_time(1_000_000), 1.0);
        assert_eq!(net.degradation(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_degradation_rejected() {
        Network::ideal(1e6).set_degradation(0.0);
    }
}

#[cfg(test)]
mod wan_queue_tests {
    use super::*;

    #[test]
    fn free_link_acquires_immediately() {
        let mut wan = WanQueue::new(2);
        assert!(wan.try_acquire(0, 10.0));
        assert_eq!(wan.holder(), Some(0));
    }

    #[test]
    fn busy_link_queues_fifo_and_grants_on_release() {
        let mut wan = WanQueue::new(3);
        assert!(wan.try_acquire(0, 1.0));
        assert!(!wan.try_acquire(2, 2.0));
        assert!(!wan.try_acquire(1, 3.0));
        assert_eq!(wan.queue_len(), 2);
        wan.release(0, 5.0);
        // Member 2 asked first: it is granted, stamped at the release.
        assert_eq!(wan.holder(), Some(2));
        assert_eq!(wan.grant_time(2), Some(5.0));
        assert_eq!(wan.grant_time(1), None);
        assert_eq!(wan.take_grant(2), 5.0);
        wan.release(2, 7.0);
        assert_eq!(wan.take_grant(1), 7.0);
    }

    #[test]
    fn tied_request_times_grant_lower_member_first() {
        let mut wan = WanQueue::new(3);
        assert!(wan.try_acquire(0, 0.0));
        assert!(!wan.try_acquire(2, 4.0));
        assert!(!wan.try_acquire(1, 4.0));
        wan.release(0, 6.0);
        assert_eq!(wan.holder(), Some(1), "tie broken by member id");
    }

    #[test]
    fn grant_time_never_precedes_the_request() {
        let mut wan = WanQueue::new(2);
        assert!(wan.try_acquire(0, 0.0));
        assert!(!wan.try_acquire(1, 9.0));
        // Release stamped earlier than the request (late-running release
        // step): the grant is floored at the request time.
        wan.release(0, 3.0);
        assert_eq!(wan.take_grant(1), 9.0);
    }

    #[test]
    fn cancel_covers_all_three_states() {
        let mut wan = WanQueue::new(3);
        // Cancel while holding: passes to the waiter.
        assert!(wan.try_acquire(0, 0.0));
        assert!(!wan.try_acquire(1, 1.0));
        wan.cancel(0, 2.0);
        assert_eq!(wan.holder(), Some(1));
        assert_eq!(wan.grant_time(1), Some(2.0));
        // Cancel an unconsumed grant: link passes on (queue empty → free).
        wan.cancel(1, 3.0);
        assert_eq!(wan.holder(), None);
        assert_eq!(wan.grant_time(1), None);
        // Cancel a queued request: silently dequeued.
        assert!(wan.try_acquire(0, 4.0));
        assert!(!wan.try_acquire(2, 5.0));
        wan.cancel(2, 6.0);
        wan.release(0, 7.0);
        assert_eq!(wan.holder(), None, "cancelled waiter is not granted");
        // Cancel with no interest at all: no-op.
        wan.cancel(2, 8.0);
    }

    #[test]
    #[should_panic(expected = "release by non-holder")]
    fn release_by_non_holder_panics() {
        let mut wan = WanQueue::new(2);
        wan.release(1, 0.0);
    }
}
