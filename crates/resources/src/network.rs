//! Wide-area network model and the bandwidth probe that observes it.
//!
//! The paper measures "the average observed bandwidth between the
//! simulation and visualization sites, obtained by using the time taken
//! for sending about 1 GB message across the network". Real WAN bandwidth
//! drifts, so the model carries a *temporally-correlated* multiplicative
//! factor (a bounded random walk): consecutive transfers see similar — not
//! identical — conditions, and a probe is an honest sample of the same
//! process the frames experience.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A simulation-site → visualization-site link.
#[derive(Debug, Clone)]
pub struct Network {
    /// Nominal (advertised) bandwidth, bytes per second.
    nominal_bps: f64,
    /// One-way latency added to every transfer, seconds.
    latency_secs: f64,
    /// Half-width of the multiplicative variability band (0 = ideal link).
    variability: f64,
    /// Current multiplicative factor in `[1−variability, 1+variability]`.
    factor: f64,
    /// Fault-injection multiplier (1.0 = healthy). Models route changes,
    /// congestion collapse, or a degraded WAN segment; applied on top of
    /// the variability walk so probes observe the degradation like any
    /// other condition.
    degradation: f64,
    rng: StdRng,
}

impl Network {
    /// New link. `variability` is clamped to `[0, 0.9]`.
    ///
    /// # Panics
    /// If `nominal_bps` is not positive and finite or latency is negative.
    pub fn new(nominal_bps: f64, latency_secs: f64, variability: f64, seed: u64) -> Self {
        assert!(
            nominal_bps > 0.0 && nominal_bps.is_finite(),
            "bandwidth must be positive"
        );
        assert!(latency_secs >= 0.0, "latency must be non-negative");
        Network {
            nominal_bps,
            latency_secs,
            variability: variability.clamp(0.0, 0.9),
            factor: 1.0,
            degradation: 1.0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Ideal link: constant bandwidth, zero latency. Used by analytic
    /// cross-checks (Table I) where the paper assumes nominal numbers.
    pub fn ideal(nominal_bps: f64) -> Self {
        Self::new(nominal_bps, 0.0, 0.0, 0)
    }

    /// Convenience: megabits per second → link (as Table IV quotes rates).
    pub fn from_mbps(mbps: f64, latency_secs: f64, variability: f64, seed: u64) -> Self {
        Self::new(mbps * 1e6 / 8.0, latency_secs, variability, seed)
    }

    /// Nominal bandwidth in bytes per second.
    pub fn nominal_bps(&self) -> f64 {
        self.nominal_bps
    }

    /// Bandwidth that the *next* transfer will see, bytes/second.
    pub fn current_bps(&self) -> f64 {
        self.nominal_bps * self.factor * self.degradation
    }

    /// Inject (or clear, with 1.0) a fault: all subsequent transfers and
    /// probes see the nominal bandwidth scaled by `factor`.
    ///
    /// # Panics
    /// If `factor` is not positive and finite (a zero-bandwidth link makes
    /// transfer times infinite and would corrupt the event clock; model a
    /// dead link as a very small factor instead).
    pub fn set_degradation(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "degradation factor must be positive and finite, got {factor}"
        );
        self.degradation = factor;
    }

    /// Current fault multiplier (1.0 = healthy).
    pub fn degradation(&self) -> f64 {
        self.degradation
    }

    /// Advance the variability random walk one step and return the new
    /// effective bandwidth. Called once per transfer so conditions drift
    /// across a run but stay correlated between neighbouring transfers.
    pub fn step(&mut self) -> f64 {
        if self.variability > 0.0 {
            // Bounded random walk: move up to ±¼ of the band per step,
            // reflected at the edges.
            let band = self.variability;
            let delta = self.rng.gen_range(-band / 4.0..=band / 4.0);
            let lo = 1.0 - band;
            let hi = 1.0 + band;
            let mut f = self.factor + delta;
            if f < lo {
                f = lo + (lo - f);
            }
            if f > hi {
                f = hi - (f - hi);
            }
            self.factor = f.clamp(lo, hi);
        }
        self.current_bps()
    }

    /// Seconds to move `bytes` across the link at *current* conditions
    /// (bandwidth term + latency).
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_secs + bytes as f64 / self.current_bps()
    }
}

/// A shared egress pipe: one WAN uplink out of the simulation/broker
/// site that *many* client sessions draw from. Unlike [`Network`] (one
/// point-to-point link with its own variability walk), a `SharedLink`
/// models aggregate capacity: a pacing loop asks for the byte budget of
/// a scheduling quantum and divides it among sessions itself. The same
/// degradation knob as [`Network::set_degradation`] lets fault plans
/// sag the shared uplink.
#[derive(Debug, Clone)]
pub struct SharedLink {
    nominal_bps: f64,
    degradation: f64,
}

impl SharedLink {
    /// New shared uplink with the given aggregate capacity, bytes/second.
    ///
    /// # Panics
    /// If `nominal_bps` is not positive and finite.
    pub fn new(nominal_bps: f64) -> Self {
        assert!(
            nominal_bps > 0.0 && nominal_bps.is_finite(),
            "shared-link capacity must be positive"
        );
        SharedLink {
            nominal_bps,
            degradation: 1.0,
        }
    }

    /// Aggregate capacity currently available, bytes/second.
    pub fn current_bps(&self) -> f64 {
        self.nominal_bps * self.degradation
    }

    /// Nominal (healthy) capacity, bytes/second.
    pub fn nominal_bps(&self) -> f64 {
        self.nominal_bps
    }

    /// Bytes the link can move in a scheduling quantum of `dt_secs`.
    pub fn budget_bytes(&self, dt_secs: f64) -> f64 {
        assert!(dt_secs >= 0.0 && dt_secs.is_finite(), "bad quantum");
        self.current_bps() * dt_secs
    }

    /// Inject (or clear, with 1.0) a fault on the shared uplink; same
    /// contract as [`Network::set_degradation`].
    ///
    /// # Panics
    /// If `factor` is not positive and finite.
    pub fn set_degradation(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "degradation factor must be positive and finite, got {factor}"
        );
        self.degradation = factor;
    }

    /// Current fault multiplier (1.0 = healthy).
    pub fn degradation(&self) -> f64 {
        self.degradation
    }
}

/// Ratio beyond which a bandwidth sample is treated as a regime change
/// rather than in-band drift. The variability walk moves the factor a
/// bounded fraction of its band per step, so even across several steps a
/// jump beyond 2× in either direction cannot be walk noise at the sites'
/// settings — it is a fault appearing or clearing.
const REGIME_RATIO: f64 = 2.0;

/// The paper's bandwidth measurement: time a ~1 GB message and divide.
///
/// Keeps an exponential moving average so a single unlucky sample does not
/// whipsaw the decision algorithm — the paper likewise feeds the *average
/// observed* bandwidth to the manager.
#[derive(Debug, Clone)]
pub struct BandwidthProbe {
    probe_bytes: u64,
    ema_bps: Option<f64>,
    alpha: f64,
}

impl Default for BandwidthProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl BandwidthProbe {
    /// Probe with the paper's 1 GB message and an EMA weight of 0.5.
    pub fn new() -> Self {
        BandwidthProbe {
            probe_bytes: 1_000_000_000,
            ema_bps: None,
            alpha: 0.5,
        }
    }

    /// Use a custom probe size (tests; very slow links where 1 GB would be
    /// impractical — the paper's cross-continent link moves 1 GB in ~37 h).
    pub fn with_probe_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0);
        self.probe_bytes = bytes;
        self
    }

    /// Take one measurement against the link and fold it into the average.
    /// Returns the updated average observed bandwidth (bytes/second).
    ///
    /// The EMA exists to smooth in-band variability noise; a sample that
    /// differs from the average by more than `REGIME_RATIO` (2×) in either
    /// direction is a regime change (fault, route change, restored link),
    /// not noise, and the average snaps to it immediately — otherwise a
    /// 50× link collapse would take the better part of a mission to show
    /// up in the decision inputs.
    pub fn measure(&mut self, net: &mut Network) -> f64 {
        let bps = net.step();
        // Observed rate includes the latency penalty, as a wall-clock
        // timing of a real message would.
        let elapsed = net.latency_secs + self.probe_bytes as f64 / bps;
        let observed = self.probe_bytes as f64 / elapsed;
        let ema = match self.ema_bps {
            None => observed,
            Some(prev) if observed > prev * REGIME_RATIO || observed < prev / REGIME_RATIO => {
                observed
            }
            Some(prev) => self.alpha * observed + (1.0 - self.alpha) * prev,
        };
        self.ema_bps = Some(ema);
        ema
    }

    /// Last averaged observation, if any measurement has been taken.
    pub fn average_bps(&self) -> Option<f64> {
        self.ema_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_link_is_exact() {
        let net = Network::ideal(1e6);
        assert_eq!(net.transfer_time(2_000_000), 2.0);
        assert_eq!(net.current_bps(), 1e6);
    }

    #[test]
    fn mbps_conversion() {
        let net = Network::from_mbps(56.0, 0.0, 0.0, 0);
        assert!((net.nominal_bps() - 7e6).abs() < 1.0);
    }

    #[test]
    fn latency_adds_to_transfers() {
        let net = Network::new(1e6, 0.25, 0.0, 0);
        assert_eq!(net.transfer_time(1_000_000), 1.25);
    }

    #[test]
    fn variability_stays_in_band() {
        let mut net = Network::new(1e6, 0.0, 0.3, 42);
        for _ in 0..1000 {
            let bps = net.step();
            assert!(
                (0.7e6..=1.3e6).contains(&bps),
                "bandwidth {bps} escaped the band"
            );
        }
    }

    #[test]
    fn variability_is_deterministic_per_seed() {
        let run = |seed| {
            let mut net = Network::new(1e6, 0.0, 0.3, seed);
            (0..50).map(|_| net.step()).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn walk_is_temporally_correlated() {
        // Adjacent steps move at most band/2 (±band/4 walk + reflection).
        let mut net = Network::new(1e6, 0.0, 0.4, 3);
        let mut prev = net.current_bps();
        for _ in 0..500 {
            let next = net.step();
            assert!((next - prev).abs() <= 0.2e6 + 1e-6);
            prev = next;
        }
    }

    #[test]
    fn probe_on_ideal_link_reports_nominal() {
        let mut net = Network::ideal(5e6);
        let mut probe = BandwidthProbe::new();
        assert_eq!(probe.average_bps(), None);
        let bw = probe.measure(&mut net);
        assert!((bw - 5e6).abs() < 1e-6);
    }

    #[test]
    fn probe_ema_smooths_samples() {
        let mut net = Network::new(1e6, 0.0, 0.5, 11);
        let mut probe = BandwidthProbe::new();
        let mut last = probe.measure(&mut net);
        for _ in 0..20 {
            let avg = probe.measure(&mut net);
            // EMA moves at most half the distance to the new sample, so it
            // can never leave the variability band either.
            assert!((0.5e6..=1.5e6).contains(&avg));
            last = avg;
        }
        assert!(probe.average_bps().unwrap() == last);
    }

    #[test]
    fn probe_snaps_on_regime_change() {
        // A 10× collapse must show up in the very next average, not after
        // half a dozen epochs of EMA convergence; same for the recovery.
        let mut net = Network::ideal(1e7);
        let mut probe = BandwidthProbe::new();
        probe.measure(&mut net);
        net.set_degradation(0.1);
        let degraded = probe.measure(&mut net);
        assert!(
            (degraded - 1e6).abs() < 1.0,
            "collapse visible immediately: {degraded}"
        );
        net.set_degradation(1.0);
        let restored = probe.measure(&mut net);
        assert!(
            (restored - 1e7).abs() < 1.0,
            "recovery visible immediately: {restored}"
        );
    }

    #[test]
    fn probe_accounts_for_latency() {
        // 1 MB probe over a fat but laggy pipe: observed < nominal.
        let mut net = Network::new(1e9, 1.0, 0.0, 0);
        let mut probe = BandwidthProbe::new().with_probe_bytes(1_000_000);
        let bw = probe.measure(&mut net);
        assert!(bw < 1e9 / 500.0, "latency should dominate: {bw}");
    }
}

#[cfg(test)]
mod shared_link_tests {
    use super::*;

    #[test]
    fn budget_scales_with_quantum_and_degradation() {
        let mut link = SharedLink::new(1e6);
        assert_eq!(link.budget_bytes(1.0), 1e6);
        assert_eq!(link.budget_bytes(0.5), 5e5);
        assert_eq!(link.budget_bytes(0.0), 0.0);
        link.set_degradation(0.25);
        assert_eq!(link.current_bps(), 2.5e5);
        assert_eq!(link.budget_bytes(2.0), 5e5);
        link.set_degradation(1.0);
        assert_eq!(link.nominal_bps(), 1e6);
        assert_eq!(link.degradation(), 1.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_capacity_rejected() {
        SharedLink::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_shared_degradation_rejected() {
        SharedLink::new(1e6).set_degradation(0.0);
    }
}

#[cfg(test)]
mod degradation_tests {
    use super::*;

    #[test]
    fn degradation_scales_transfers_and_probes() {
        let mut net = Network::ideal(1e6);
        assert_eq!(net.transfer_time(1_000_000), 1.0);
        net.set_degradation(0.1);
        assert!((net.transfer_time(1_000_000) - 10.0).abs() < 1e-9);
        let mut probe = BandwidthProbe::new().with_probe_bytes(1_000_000);
        let observed = probe.measure(&mut net);
        assert!(
            (observed - 1e5).abs() < 1.0,
            "probe sees the fault: {observed}"
        );
        net.set_degradation(1.0);
        assert_eq!(net.transfer_time(1_000_000), 1.0);
        assert_eq!(net.degradation(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_degradation_rejected() {
        Network::ideal(1e6).set_degradation(0.0);
    }
}
