//! Append-only write-ahead journal for [`FrameStore`](crate::FrameStore)
//! mutations.
//!
//! The live pipeline must survive `kill -9`: every mutation of the frame
//! ledger (store / begin / complete / abort / seize / release) is recorded
//! here *after* it succeeds in memory, so a replay of the journal always
//! applies cleanly and rebuilds the exact pending / in-flight / shipped
//! state of the dead incarnation.
//!
//! On-disk format — a directory of fixed-prefix segment files:
//!
//! ```text
//! journal.000000.wal   journal.000001.wal   ...
//! ┌──────┬──────────────────────────────────────────────┐
//! │ AJL1 │ record │ record │ record │ ...                │
//! └──────┴──────────────────────────────────────────────┘
//! record := u32 LE payload_len | u32 LE crc32(payload) | payload
//! payload := u8 op_tag | op fields (LE)
//! ```
//!
//! Each append is `fsync`ed before it is considered committed. Segments
//! rotate at [`DEFAULT_SEGMENT_BYTES`]; replay walks segments in index
//! order. A record that is truncated or fails its CRC is a *torn tail*
//! (the process died mid-append): replay truncates the file right there,
//! deletes any later segments, and keeps everything before it — committed
//! frames are never lost, uncommitted tails are never half-applied.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// IEEE 802.3 CRC-32 (the zlib/PNG polynomial), table-driven, table built
/// at compile time. This is the canonical copy for the workspace; the
/// transport layer re-exports it.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xffff_ffffu32;
    for &b in data {
        let idx = (crc ^ b as u32) & 0xff;
        crc = (crc >> 8) ^ TABLE[idx as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Magic prefix of every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"AJL1";

/// Rotation threshold: a segment that has grown past this many bytes is
/// closed and a new one started.
pub const DEFAULT_SEGMENT_BYTES: u64 = 1 << 20;

const SEGMENT_PREFIX: &str = "journal.";
const SEGMENT_SUFFIX: &str = ".wal";

/// One journaled mutation of the frame ledger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JournalOp {
    /// A frame was written to the output directory.
    Store {
        id: u64,
        sim_minutes: f64,
        bytes: u64,
    },
    /// The oldest pending frame moved to the in-flight set.
    Begin { id: u64 },
    /// An in-flight frame's transfer completed; its bytes were freed.
    Complete { id: u64 },
    /// An in-flight frame's transfer was aborted; it returned to pending.
    Abort { id: u64 },
    /// An external writer seized `bytes` of free space (the amount it
    /// actually got, already capped).
    Seize { bytes: u64 },
    /// An external writer released `bytes` (already capped).
    Release { bytes: u64 },
}

const TAG_STORE: u8 = 1;
const TAG_BEGIN: u8 = 2;
const TAG_COMPLETE: u8 = 3;
const TAG_ABORT: u8 = 4;
const TAG_SEIZE: u8 = 5;
const TAG_RELEASE: u8 = 6;

impl JournalOp {
    /// Binary payload (tag byte + little-endian fields).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(25);
        match *self {
            JournalOp::Store {
                id,
                sim_minutes,
                bytes,
            } => {
                out.push(TAG_STORE);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&sim_minutes.to_le_bytes());
                out.extend_from_slice(&bytes.to_le_bytes());
            }
            JournalOp::Begin { id } => {
                out.push(TAG_BEGIN);
                out.extend_from_slice(&id.to_le_bytes());
            }
            JournalOp::Complete { id } => {
                out.push(TAG_COMPLETE);
                out.extend_from_slice(&id.to_le_bytes());
            }
            JournalOp::Abort { id } => {
                out.push(TAG_ABORT);
                out.extend_from_slice(&id.to_le_bytes());
            }
            JournalOp::Seize { bytes } => {
                out.push(TAG_SEIZE);
                out.extend_from_slice(&bytes.to_le_bytes());
            }
            JournalOp::Release { bytes } => {
                out.push(TAG_RELEASE);
                out.extend_from_slice(&bytes.to_le_bytes());
            }
        }
        out
    }

    /// Inverse of [`encode`](Self::encode); `None` on any malformed payload.
    pub fn decode(payload: &[u8]) -> Option<JournalOp> {
        let (&tag, rest) = payload.split_first()?;
        let u64_at = |off: usize| -> Option<u64> {
            rest.get(off..off + 8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        };
        let op = match tag {
            TAG_STORE => {
                if rest.len() != 24 {
                    return None;
                }
                JournalOp::Store {
                    id: u64_at(0)?,
                    sim_minutes: f64::from_le_bytes(rest[8..16].try_into().unwrap()),
                    bytes: u64_at(16)?,
                }
            }
            TAG_BEGIN => JournalOp::Begin {
                id: exact_u64(rest)?,
            },
            TAG_COMPLETE => JournalOp::Complete {
                id: exact_u64(rest)?,
            },
            TAG_ABORT => JournalOp::Abort {
                id: exact_u64(rest)?,
            },
            TAG_SEIZE => JournalOp::Seize {
                bytes: exact_u64(rest)?,
            },
            TAG_RELEASE => JournalOp::Release {
                bytes: exact_u64(rest)?,
            },
            _ => return None,
        };
        Some(op)
    }
}

fn exact_u64(rest: &[u8]) -> Option<u64> {
    if rest.len() != 8 {
        return None;
    }
    Some(u64::from_le_bytes(rest.try_into().unwrap()))
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{index:06}{SEGMENT_SUFFIX}"))
}

/// Segment indices present in `dir`, sorted ascending.
fn segment_indices(dir: &Path) -> io::Result<Vec<u64>> {
    let mut indices = Vec::new();
    if !dir.exists() {
        return Ok(indices);
    }
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(mid) = name
            .strip_prefix(SEGMENT_PREFIX)
            .and_then(|s| s.strip_suffix(SEGMENT_SUFFIX))
        {
            if let Ok(idx) = mid.parse::<u64>() {
                indices.push(idx);
            }
        }
    }
    indices.sort_unstable();
    Ok(indices)
}

/// Append-side handle: writes framed records with fsync-on-commit and
/// rotates segments past the size threshold.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    file: File,
    seg_index: u64,
    seg_bytes: u64,
    max_segment_bytes: u64,
}

impl Journal {
    /// Open `dir` for appending (creating it, and segment 0, if absent).
    /// Appends continue at the end of the highest-numbered segment — call
    /// [`replay`] first so a torn tail has already been truncated away.
    pub fn open(dir: &Path) -> io::Result<Journal> {
        Self::open_with_segment_bytes(dir, DEFAULT_SEGMENT_BYTES)
    }

    /// [`open`](Self::open) with a custom rotation threshold (tests).
    pub fn open_with_segment_bytes(dir: &Path, max_segment_bytes: u64) -> io::Result<Journal> {
        fs::create_dir_all(dir)?;
        let indices = segment_indices(dir)?;
        let seg_index = indices.last().copied().unwrap_or(0);
        let path = segment_path(dir, seg_index);
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        let mut seg_bytes = file.metadata()?.len();
        if seg_bytes == 0 {
            file.write_all(&SEGMENT_MAGIC)?;
            file.sync_all()?;
            seg_bytes = SEGMENT_MAGIC.len() as u64;
        }
        Ok(Journal {
            dir: dir.to_path_buf(),
            file,
            seg_index,
            seg_bytes,
            max_segment_bytes: max_segment_bytes.max(SEGMENT_MAGIC.len() as u64 + 1),
        })
    }

    /// Directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Index of the segment currently accepting appends.
    pub fn segment_index(&self) -> u64 {
        self.seg_index
    }

    /// Append one op as a framed record and fsync it. The op is committed
    /// when this returns `Ok`.
    pub fn append(&mut self, op: &JournalOp) -> io::Result<()> {
        let payload = op.encode();
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        self.file.write_all(&record)?;
        self.file.sync_all()?;
        self.seg_bytes += record.len() as u64;
        if self.seg_bytes >= self.max_segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.seg_index += 1;
        let path = segment_path(&self.dir, self.seg_index);
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        file.write_all(&SEGMENT_MAGIC)?;
        file.sync_all()?;
        self.file = file;
        self.seg_bytes = SEGMENT_MAGIC.len() as u64;
        Ok(())
    }
}

/// What a [`replay`] found and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReplayReport {
    /// Committed ops recovered.
    pub ops: u64,
    /// Segment files visited.
    pub segments: u64,
    /// Bytes of torn tail truncated away (partial or corrupt final record
    /// plus anything after it).
    pub truncated_bytes: u64,
    /// Simulated time of the newest committed `Store` op, if any — the
    /// recovery supervisor resumes output past this point.
    pub last_stored_sim_minutes: Option<f64>,
}

/// Replay the journal in `dir`: return every committed op in append order
/// and truncate any torn tail in place so a subsequent
/// [`Journal::open`] appends from a clean end-of-log.
///
/// A record that is short, oversized, or fails its CRC marks the torn
/// point: the segment is truncated there and all later segments (which can
/// only hold uncommitted garbage) are deleted.
pub fn replay(dir: &Path) -> io::Result<(Vec<JournalOp>, ReplayReport)> {
    let mut ops = Vec::new();
    let mut report = ReplayReport::default();
    let indices = segment_indices(dir)?;
    let mut torn_at: Option<usize> = None; // position in `indices` where the tear was found
    for (pos, &idx) in indices.iter().enumerate() {
        let path = segment_path(dir, idx);
        let mut data = Vec::new();
        File::open(&path)?.read_to_end(&mut data)?;
        report.segments += 1;
        let mut off = SEGMENT_MAGIC.len().min(data.len());
        if data.len() < SEGMENT_MAGIC.len() || data[..4] != SEGMENT_MAGIC {
            // Torn before the header finished (or foreign file): drop it all.
            truncate_file(&path, 0)?;
            report.truncated_bytes += data.len() as u64;
            torn_at = Some(pos);
            break;
        }
        let mut torn_here = false;
        while off < data.len() {
            let parsed = parse_record(&data[off..]);
            match parsed {
                Some((consumed, op)) => {
                    if let JournalOp::Store { sim_minutes, .. } = op {
                        report.last_stored_sim_minutes = Some(sim_minutes);
                    }
                    ops.push(op);
                    report.ops += 1;
                    off += consumed;
                }
                None => {
                    // Torn tail: truncate here, drop the rest.
                    report.truncated_bytes += (data.len() - off) as u64;
                    truncate_file(&path, off as u64)?;
                    torn_here = true;
                    break;
                }
            }
        }
        if torn_here {
            torn_at = Some(pos);
            break;
        }
    }
    if let Some(pos) = torn_at {
        for &idx in &indices[pos + 1..] {
            let path = segment_path(dir, idx);
            report.truncated_bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            fs::remove_file(&path)?;
        }
    }
    Ok((ops, report))
}

/// Parse one framed record at the head of `data`. Returns the bytes
/// consumed and the op, or `None` for a short / corrupt / undecodable
/// record (all treated as a torn tail by [`replay`]).
fn parse_record(data: &[u8]) -> Option<(usize, JournalOp)> {
    if data.len() < 8 {
        return None;
    }
    let len = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(data[4..8].try_into().unwrap());
    // An op payload is at most a few dozen bytes; a huge length is garbage.
    if len == 0 || len > 4096 || data.len() < 8 + len {
        return None;
    }
    let payload = &data[8..8 + len];
    if crc32(payload) != crc {
        return None;
    }
    let op = JournalOp::decode(payload)?;
    Some((8 + len, op))
}

fn truncate_file(path: &Path, len: u64) -> io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_all()?;
    Ok(())
}

/// Chop up to `drop` bytes off the end of the newest segment — a test /
/// fault-injection hook that simulates a write torn by power loss. Never
/// cuts into the 4-byte magic. Returns the bytes actually dropped.
pub fn simulate_torn_tail(dir: &Path, drop: u64) -> io::Result<u64> {
    let indices = segment_indices(dir)?;
    let Some(&last) = indices.last() else {
        return Ok(0);
    };
    let path = segment_path(dir, last);
    let len = fs::metadata(&path)?.len();
    let keep = len
        .saturating_sub(drop)
        .max(SEGMENT_MAGIC.len() as u64)
        .min(len);
    truncate_file(&path, keep)?;
    Ok(len - keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("adaptive-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_ops() -> Vec<JournalOp> {
        vec![
            JournalOp::Store {
                id: 0,
                sim_minutes: 15.0,
                bytes: 300,
            },
            JournalOp::Store {
                id: 1,
                sim_minutes: 30.0,
                bytes: 310,
            },
            JournalOp::Begin { id: 0 },
            JournalOp::Complete { id: 0 },
            JournalOp::Begin { id: 1 },
            JournalOp::Abort { id: 1 },
            JournalOp::Seize { bytes: 123 },
            JournalOp::Release { bytes: 100 },
        ]
    }

    #[test]
    fn encode_decode_roundtrip_every_op() {
        for op in sample_ops() {
            assert_eq!(JournalOp::decode(&op.encode()), Some(op));
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn empty_journal_replays_to_nothing() {
        let dir = tmpdir("empty");
        let (ops, report) = replay(&dir).unwrap();
        assert!(ops.is_empty());
        assert_eq!(report.ops, 0);
        assert_eq!(report.truncated_bytes, 0);
        // Even after the writer creates segment 0 with just its magic.
        let _j = Journal::open(&dir).unwrap();
        let (ops, report) = replay(&dir).unwrap();
        assert!(ops.is_empty());
        assert_eq!(report.segments, 1);
    }

    #[test]
    fn append_then_replay_returns_ops_in_order() {
        let dir = tmpdir("roundtrip");
        let mut j = Journal::open(&dir).unwrap();
        for op in sample_ops() {
            j.append(&op).unwrap();
        }
        drop(j);
        let (ops, report) = replay(&dir).unwrap();
        assert_eq!(ops, sample_ops());
        assert_eq!(report.ops, 8);
        assert_eq!(report.last_stored_sim_minutes, Some(30.0));
        assert_eq!(report.truncated_bytes, 0);
    }

    #[test]
    fn torn_tail_is_truncated_and_committed_ops_survive() {
        let dir = tmpdir("torn");
        let mut j = Journal::open(&dir).unwrap();
        for op in sample_ops() {
            j.append(&op).unwrap();
        }
        drop(j);
        // Tear 5 bytes off the final record.
        let dropped = simulate_torn_tail(&dir, 5).unwrap();
        assert_eq!(dropped, 5);
        let (ops, report) = replay(&dir).unwrap();
        assert_eq!(
            ops,
            sample_ops()[..7].to_vec(),
            "only the torn record is lost"
        );
        assert!(report.truncated_bytes > 0);
        // Replay repaired the file: a second replay is clean and identical.
        let (ops2, report2) = replay(&dir).unwrap();
        assert_eq!(ops2, ops);
        assert_eq!(report2.truncated_bytes, 0);
    }

    #[test]
    fn bad_crc_record_ends_the_replay_there() {
        let dir = tmpdir("badcrc");
        let mut j = Journal::open(&dir).unwrap();
        let ops = sample_ops();
        for op in &ops {
            j.append(op).unwrap();
        }
        drop(j);
        // Flip one byte inside the *last* record's payload.
        let path = segment_path(&dir, 0);
        let mut data = fs::read(&path).unwrap();
        let n = data.len();
        data[n - 1] ^= 0xff;
        fs::write(&path, &data).unwrap();
        let (recovered, report) = replay(&dir).unwrap();
        assert_eq!(recovered, ops[..7].to_vec());
        assert!(report.truncated_bytes > 0);
    }

    #[test]
    fn replay_is_idempotent() {
        let dir = tmpdir("idem");
        let mut j = Journal::open(&dir).unwrap();
        for op in sample_ops() {
            j.append(&op).unwrap();
        }
        drop(j);
        let first = replay(&dir).unwrap();
        let second = replay(&dir).unwrap();
        assert_eq!(first.0, second.0);
        assert_eq!(second.1.truncated_bytes, 0);
    }

    #[test]
    fn segments_rotate_and_replay_in_order() {
        let dir = tmpdir("rotate");
        // Tiny threshold: every record rotates.
        let mut j = Journal::open_with_segment_bytes(&dir, 16).unwrap();
        let ops: Vec<JournalOp> = (0..10)
            .map(|i| JournalOp::Store {
                id: i,
                sim_minutes: i as f64,
                bytes: 10,
            })
            .collect();
        for op in &ops {
            j.append(op).unwrap();
        }
        assert!(j.segment_index() >= 9, "rotation must have happened");
        drop(j);
        let (recovered, report) = replay(&dir).unwrap();
        assert_eq!(recovered, ops);
        assert!(report.segments >= 10);
        // Reopen appends to the newest segment without disturbing history.
        let mut j = Journal::open_with_segment_bytes(&dir, 16).unwrap();
        j.append(&JournalOp::Begin { id: 0 }).unwrap();
        drop(j);
        let (recovered, _) = replay(&dir).unwrap();
        assert_eq!(recovered.len(), 11);
        assert_eq!(recovered[10], JournalOp::Begin { id: 0 });
    }

    #[test]
    fn tear_spanning_into_earlier_segment_drops_later_segments() {
        let dir = tmpdir("multiseg-torn");
        let mut j = Journal::open_with_segment_bytes(&dir, 40).unwrap();
        let ops: Vec<JournalOp> = (0..6)
            .map(|i| JournalOp::Store {
                id: i,
                sim_minutes: i as f64,
                bytes: 10,
            })
            .collect();
        for op in &ops {
            j.append(op).unwrap();
        }
        let segs = segment_indices(&dir).unwrap();
        assert!(segs.len() >= 3);
        // Corrupt a record in a middle segment: everything after is dropped.
        let mid = segs[segs.len() / 2];
        let path = segment_path(&dir, mid);
        let mut data = fs::read(&path).unwrap();
        let off = SEGMENT_MAGIC.len() + 9; // inside the first record's payload
        data[off] ^= 0xff;
        fs::write(&path, &data).unwrap();
        drop(j);
        let (recovered, _) = replay(&dir).unwrap();
        assert!(recovered.len() < ops.len());
        assert_eq!(recovered[..], ops[..recovered.len()]);
        let remaining = segment_indices(&dir).unwrap();
        assert_eq!(
            remaining.last().copied(),
            Some(mid),
            "later segments deleted"
        );
    }

    #[test]
    fn torn_tail_never_cuts_the_magic() {
        let dir = tmpdir("magic");
        let mut j = Journal::open(&dir).unwrap();
        j.append(&JournalOp::Seize { bytes: 1 }).unwrap();
        drop(j);
        simulate_torn_tail(&dir, 1 << 20).unwrap();
        let (ops, _) = replay(&dir).unwrap();
        assert!(ops.is_empty());
        // Journal reopens cleanly on the surviving header.
        let mut j = Journal::open(&dir).unwrap();
        j.append(&JournalOp::Release { bytes: 1 }).unwrap();
        drop(j);
        let (ops, _) = replay(&dir).unwrap();
        assert_eq!(ops, vec![JournalOp::Release { bytes: 1 }]);
    }
}
