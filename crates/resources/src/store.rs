//! Frame ledger on the simulation-site disk.
//!
//! The simulation writes history frames to stable storage; the frame
//! sender ships the *oldest* available frame to the visualization site and
//! the bytes are released only when that transfer completes ("the data
//! that is transferred to the visualization site is removed from the
//! simulation site"). This module couples the byte accounting of
//! [`Disk`](crate::Disk) with that FIFO frame lifecycle:
//!
//! ```text
//! stored ──(begin_transfer)──▶ in-flight ──(complete_transfer)──▶ gone
//! ```

use crate::journal::{self, Journal, JournalOp, ReplayReport};
use crate::{Disk, DiskFull};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io;
use std::path::Path;

/// Metadata of one output frame sitting on the simulation-site disk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameMeta {
    /// Monotone frame id (assigned by the store).
    pub id: u64,
    /// Simulated time this frame represents, in minutes from mission start.
    pub sim_minutes: f64,
    /// Encoded size on disk.
    pub bytes: u64,
}

/// Errors from frame-lifecycle operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// Underlying disk rejected the write.
    Disk(DiskFull),
    /// `complete_transfer` named a frame that is not in flight.
    NotInFlight(u64),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Disk(e) => write!(f, "{e}"),
            StoreError::NotInFlight(id) => write!(f, "frame {id} is not in flight"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<DiskFull> for StoreError {
    fn from(e: DiskFull) -> Self {
        StoreError::Disk(e)
    }
}

/// FIFO ledger of frames on a [`Disk`].
///
/// Optionally backed by a write-ahead [`Journal`] (see
/// [`open`](Self::open) / [`recover`](Self::recover)): every successful
/// mutation is journaled with fsync-on-commit, so the exact ledger state
/// survives a `kill -9` and is rebuilt by replaying the log.
#[derive(Debug)]
pub struct FrameStore {
    disk: Disk,
    pending: VecDeque<FrameMeta>,
    in_flight: Vec<FrameMeta>,
    next_id: u64,
    frames_stored: u64,
    frames_shipped: u64,
    external_bytes: u64,
    /// Durability sidecar; volatile stores have none. Excluded from
    /// clone / equality — it is an OS resource, not ledger state.
    journal: Option<Journal>,
}

impl Clone for FrameStore {
    /// Clones the ledger *state*; the clone is volatile (no journal).
    fn clone(&self) -> Self {
        FrameStore {
            disk: self.disk.clone(),
            pending: self.pending.clone(),
            in_flight: self.in_flight.clone(),
            next_id: self.next_id,
            frames_stored: self.frames_stored,
            frames_shipped: self.frames_shipped,
            external_bytes: self.external_bytes,
            journal: None,
        }
    }
}

impl PartialEq for FrameStore {
    /// Ledger-state equality; the journal handle is ignored.
    fn eq(&self, other: &Self) -> bool {
        self.disk == other.disk
            && self.pending == other.pending
            && self.in_flight == other.in_flight
            && self.next_id == other.next_id
            && self.frames_stored == other.frames_stored
            && self.frames_shipped == other.frames_shipped
            && self.external_bytes == other.external_bytes
    }
}

impl FrameStore {
    /// New volatile store over an empty disk (no journal).
    pub fn new(disk: Disk) -> Self {
        FrameStore {
            disk,
            pending: VecDeque::new(),
            in_flight: Vec::new(),
            next_id: 0,
            frames_stored: 0,
            frames_shipped: 0,
            external_bytes: 0,
            journal: None,
        }
    }

    /// Open a journaled store at `dir`: replays any existing log (so the
    /// rebuilt ledger carries the prior incarnation's state) and attaches
    /// a writer so every further mutation is durable.
    pub fn open(disk: Disk, dir: &Path) -> io::Result<Self> {
        Self::recover(disk, dir).map(|(store, _)| store)
    }

    /// Like [`open`](Self::open), but also returns the replay report
    /// (ops recovered, torn-tail bytes truncated, newest stored sim time).
    pub fn recover(disk: Disk, dir: &Path) -> io::Result<(Self, ReplayReport)> {
        let (ops, report) = journal::replay(dir)?;
        let mut store = FrameStore::new(disk);
        for op in &ops {
            store.apply(op);
        }
        store.journal = Some(Journal::open(dir)?);
        Ok((store, report))
    }

    /// Apply one replayed op to the in-memory ledger without journaling.
    /// Replay tolerates (skips) ops that no longer apply — the journal
    /// records only successful mutations, so in practice every op lands.
    fn apply(&mut self, op: &JournalOp) {
        match *op {
            JournalOp::Store {
                id,
                sim_minutes,
                bytes,
            } => {
                if self.disk.write(bytes).is_ok() {
                    self.pending.push_back(FrameMeta {
                        id,
                        sim_minutes,
                        bytes,
                    });
                    self.next_id = self.next_id.max(id + 1);
                    self.frames_stored += 1;
                }
            }
            JournalOp::Begin { id } => {
                if let Some(idx) = self.pending.iter().position(|f| f.id == id) {
                    let meta = self.pending.remove(idx).expect("index just found");
                    self.in_flight.push(meta);
                }
            }
            JournalOp::Complete { id } => {
                if let Some(idx) = self.in_flight.iter().position(|f| f.id == id) {
                    let meta = self.in_flight.swap_remove(idx);
                    self.disk.free_bytes(meta.bytes);
                    self.frames_shipped += 1;
                }
            }
            JournalOp::Abort { id } => {
                if let Some(idx) = self.in_flight.iter().position(|f| f.id == id) {
                    let meta = self.in_flight.swap_remove(idx);
                    self.pending.push_front(meta);
                }
            }
            JournalOp::Seize { bytes } => {
                let got = bytes.min(self.disk.free());
                if got > 0 && self.disk.write(got).is_ok() {
                    self.external_bytes += got;
                }
            }
            JournalOp::Release { bytes } => {
                let freed = bytes.min(self.external_bytes);
                if freed > 0 {
                    self.disk.free_bytes(freed);
                    self.external_bytes -= freed;
                }
            }
        }
    }

    /// Commit `op` to the journal, if one is attached.
    ///
    /// # Panics
    /// On journal I/O failure: a durability layer whose write-ahead log
    /// cannot be written has lost its crash-consistency guarantee, and
    /// carrying on would silently violate it.
    fn commit(&mut self, op: JournalOp) {
        if let Some(j) = self.journal.as_mut() {
            j.append(&op).expect("write-ahead journal append failed");
        }
    }

    /// The underlying disk (for `df`-style queries).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// The id the next stored frame will get.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Directory of the attached journal, if this store is durable.
    pub fn journal_dir(&self) -> Option<&Path> {
        self.journal.as_ref().map(|j| j.dir())
    }

    /// Store a new frame of `bytes` representing `sim_minutes`; fails when
    /// the disk cannot hold it.
    pub fn store(&mut self, sim_minutes: f64, bytes: u64) -> Result<FrameMeta, StoreError> {
        self.disk.write(bytes)?;
        let meta = FrameMeta {
            id: self.next_id,
            sim_minutes,
            bytes,
        };
        self.next_id += 1;
        self.frames_stored += 1;
        self.pending.push_back(meta);
        self.commit(JournalOp::Store {
            id: meta.id,
            sim_minutes: meta.sim_minutes,
            bytes: meta.bytes,
        });
        Ok(meta)
    }

    /// True when at least one frame awaits transfer.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Number of frames awaiting transfer.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Bytes awaiting transfer (not counting in-flight frames).
    pub fn pending_bytes(&self) -> u64 {
        self.pending.iter().map(|f| f.bytes).sum()
    }

    /// Oldest pending frame without starting its transfer.
    pub fn peek_oldest(&self) -> Option<&FrameMeta> {
        self.pending.front()
    }

    /// Move the oldest pending frame to the in-flight set (the sender has
    /// begun shipping it; its bytes remain on disk until completion).
    pub fn begin_transfer(&mut self) -> Option<FrameMeta> {
        let meta = self.pending.pop_front()?;
        self.in_flight.push(meta);
        self.commit(JournalOp::Begin { id: meta.id });
        Some(meta)
    }

    /// Finish a transfer: frees the frame's bytes at the simulation site.
    pub fn complete_transfer(&mut self, id: u64) -> Result<FrameMeta, StoreError> {
        let idx = self
            .in_flight
            .iter()
            .position(|f| f.id == id)
            .ok_or(StoreError::NotInFlight(id))?;
        let meta = self.in_flight.swap_remove(idx);
        self.disk.free_bytes(meta.bytes);
        self.frames_shipped += 1;
        self.commit(JournalOp::Complete { id });
        Ok(meta)
    }

    /// Abort a transfer (e.g. the link dropped): the frame returns to the
    /// *front* of the pending queue so sim-time order is preserved.
    pub fn abort_transfer(&mut self, id: u64) -> Result<(), StoreError> {
        let idx = self
            .in_flight
            .iter()
            .position(|f| f.id == id)
            .ok_or(StoreError::NotInFlight(id))?;
        let meta = self.in_flight.swap_remove(idx);
        self.pending.push_front(meta);
        self.commit(JournalOp::Abort { id });
        Ok(())
    }

    /// Return every in-flight frame to the pending queue (sim-time order
    /// preserved) — a fresh incarnation has no transfers in progress, so
    /// whatever the journal says was mid-flight must be re-sent. Returns
    /// how many frames were requeued.
    pub fn requeue_in_flight(&mut self) -> usize {
        let mut ids: Vec<u64> = self.in_flight.iter().map(|f| f.id).collect();
        // Highest id first: each abort pushes to the *front*, so the final
        // pending order is ascending by id ahead of the existing queue.
        ids.sort_unstable_by(|a, b| b.cmp(a));
        for id in &ids {
            self.abort_transfer(*id).expect("id drawn from in_flight");
        }
        ids.len()
    }

    /// Reconcile with the receiver's durable last-applied watermark
    /// (`applied_watermark` = last applied frame id + 1, or 0 for none):
    /// every frame below the watermark already reached the visualization
    /// site, so it is completed — and its bytes freed — no matter whether
    /// the dead incarnation had it pending or in flight. Returns how many
    /// frames were settled this way.
    pub fn reconcile_shipped(&mut self, applied_watermark: u64) -> u64 {
        let mut settled = 0;
        // In-flight frames the receiver already applied: just complete.
        let flight: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|f| f.id < applied_watermark)
            .map(|f| f.id)
            .collect();
        for id in flight {
            self.complete_transfer(id).expect("id drawn from in_flight");
            settled += 1;
        }
        // Pending frames below the watermark (their Complete record was
        // lost in the crash): walk them through the normal lifecycle so
        // the journal replays cleanly.
        while let Some(front) = self.pending.front() {
            if front.id >= applied_watermark {
                break;
            }
            let meta = self.begin_transfer().expect("front exists");
            self.complete_transfer(meta.id).expect("just begun");
            settled += 1;
        }
        settled
    }

    /// Total frames ever stored.
    pub fn frames_stored(&self) -> u64 {
        self.frames_stored
    }

    /// Total frames whose transfer completed.
    pub fn frames_shipped(&self) -> u64 {
        self.frames_shipped
    }

    /// Number of frames currently mid-transfer.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Pending frames in ship order (oldest first).
    pub fn pending_frames(&self) -> impl Iterator<Item = &FrameMeta> {
        self.pending.iter()
    }

    /// Frames currently mid-transfer (unordered).
    pub fn in_flight_frames(&self) -> &[FrameMeta] {
        &self.in_flight
    }

    /// An external writer (another job on the shared scratch filesystem)
    /// grabs up to `bytes` of free space. Returns how much it actually
    /// got (capped at what is free — the external job hits `ENOSPC` on
    /// the rest, just like ours would).
    pub fn seize_external(&mut self, bytes: u64) -> u64 {
        let got = bytes.min(self.disk.free());
        // No unwrap here: an adversarial fault plan must never be able to
        // abort the process through this path. If the capped write is
        // still rejected, the external writer simply got nothing.
        if got > 0 && self.disk.write(got).is_ok() {
            self.external_bytes += got;
            self.commit(JournalOp::Seize { bytes: got });
            return got;
        }
        0
    }

    /// The external writer releases `bytes` of previously seized space
    /// (capped at what it still holds).
    pub fn release_external(&mut self, bytes: u64) -> u64 {
        let freed = bytes.min(self.external_bytes);
        if freed > 0 {
            self.disk.free_bytes(freed);
            self.external_bytes -= freed;
            self.commit(JournalOp::Release { bytes: freed });
        }
        freed
    }

    /// Bytes currently held by external writers.
    pub fn external_bytes(&self) -> u64 {
        self.external_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> FrameStore {
        FrameStore::new(Disk::new(1000))
    }

    #[test]
    fn fifo_lifecycle_frees_bytes_only_on_completion() {
        let mut s = store();
        let a = s.store(0.0, 300).unwrap();
        let b = s.store(25.0, 300).unwrap();
        assert_eq!(s.disk().used(), 600);
        assert_eq!(s.pending_count(), 2);

        let t = s.begin_transfer().unwrap();
        assert_eq!(t.id, a.id, "oldest frame ships first");
        assert_eq!(s.disk().used(), 600, "in-flight bytes still on disk");
        assert_eq!(s.pending_count(), 1);

        s.complete_transfer(a.id).unwrap();
        assert_eq!(s.disk().used(), 300);
        assert_eq!(s.frames_shipped(), 1);
        assert_eq!(s.peek_oldest().unwrap().id, b.id);
    }

    #[test]
    fn store_fails_when_disk_full_without_effects() {
        let mut s = store();
        s.store(0.0, 900).unwrap();
        let err = s.store(1.0, 200).unwrap_err();
        assert!(matches!(err, StoreError::Disk(_)));
        assert_eq!(s.pending_count(), 1);
        assert_eq!(s.frames_stored(), 1);
    }

    #[test]
    fn complete_unknown_transfer_fails() {
        let mut s = store();
        s.store(0.0, 100).unwrap();
        assert_eq!(s.complete_transfer(0), Err(StoreError::NotInFlight(0)));
    }

    #[test]
    fn abort_restores_fifo_order() {
        let mut s = store();
        let a = s.store(0.0, 100).unwrap();
        s.store(1.0, 100).unwrap();
        let t = s.begin_transfer().unwrap();
        s.abort_transfer(t.id).unwrap();
        assert_eq!(s.pending_count(), 2);
        assert_eq!(
            s.peek_oldest().unwrap().id,
            a.id,
            "aborted frame back at front"
        );
        assert_eq!(s.disk().used(), 200, "no bytes freed on abort");
    }

    #[test]
    fn ids_are_monotone_and_unique() {
        let mut s = store();
        let ids: Vec<u64> = (0..5).map(|i| s.store(i as f64, 10).unwrap().id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pending_bytes_excludes_in_flight() {
        let mut s = store();
        s.store(0.0, 100).unwrap();
        s.store(1.0, 200).unwrap();
        assert_eq!(s.pending_bytes(), 300);
        s.begin_transfer().unwrap();
        assert_eq!(s.pending_bytes(), 200);
    }

    #[test]
    fn begin_transfer_on_empty_returns_none() {
        let mut s = store();
        assert!(s.begin_transfer().is_none());
        assert!(!s.has_pending());
    }

    #[test]
    fn external_pressure_seizes_only_free_space_and_releases_it() {
        let mut s = store();
        s.store(0.0, 400).unwrap();
        let got = s.seize_external(1_000_000);
        assert_eq!(got, 600, "capped at free space");
        assert_eq!(s.external_bytes(), 600);
        assert_eq!(s.disk().free(), 0);
        // Frames still account separately: shipping one frees its bytes.
        let t = s.begin_transfer().unwrap();
        s.complete_transfer(t.id).unwrap();
        assert_eq!(s.disk().free(), 400);
        // Release is capped at what the external writer holds.
        assert_eq!(s.release_external(10_000), 600);
        assert_eq!(s.external_bytes(), 0);
        assert_eq!(s.disk().free(), 1000);
    }

    #[test]
    fn seize_external_never_panics_even_when_disk_is_exactly_full() {
        let mut s = store();
        s.store(0.0, 1000).unwrap();
        assert_eq!(s.disk().free(), 0);
        assert_eq!(s.seize_external(500), 0, "nothing free, nothing seized");
        assert_eq!(s.seize_external(u64::MAX), 0);
        assert_eq!(s.external_bytes(), 0);
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("adaptive-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn durable_store_recovers_exact_ledger_state() {
        let dir = tmpdir("recover");
        let mut s = FrameStore::open(Disk::new(1000), &dir).unwrap();
        s.store(0.0, 100).unwrap();
        s.store(15.0, 100).unwrap();
        s.store(30.0, 100).unwrap();
        let t = s.begin_transfer().unwrap();
        s.complete_transfer(t.id).unwrap();
        s.begin_transfer().unwrap();
        s.seize_external(50);

        let (r, report) = FrameStore::recover(Disk::new(1000), &dir).unwrap();
        assert_eq!(r, s, "replayed ledger matches the live one");
        assert_eq!(report.last_stored_sim_minutes, Some(30.0));
        assert!(report.ops >= 7);
    }

    #[test]
    fn recovery_requeues_in_flight_and_reconciles_shipped() {
        let dir = tmpdir("reconcile");
        let mut s = FrameStore::open(Disk::new(1000), &dir).unwrap();
        for i in 0..4 {
            s.store(i as f64 * 15.0, 100).unwrap();
        }
        let a = s.begin_transfer().unwrap(); // id 0, receiver applied it
        let _b = s.begin_transfer().unwrap(); // id 1, mid-wire at the crash
        drop(s);

        let (mut r, _) = FrameStore::recover(Disk::new(1000), &dir).unwrap();
        assert_eq!(r.in_flight_count(), 2);
        // Receiver's durable watermark says frame 0 was applied.
        assert_eq!(r.reconcile_shipped(a.id + 1), 1);
        assert_eq!(r.frames_shipped(), 1);
        assert_eq!(r.requeue_in_flight(), 1);
        assert_eq!(r.in_flight_count(), 0);
        let order: Vec<u64> = r.pending_frames().map(|f| f.id).collect();
        assert_eq!(order, vec![1, 2, 3], "ship order preserved across recovery");
        assert_eq!(r.disk().used(), 300, "frame 0's bytes were freed");

        // A second recovery replays the reconciliation ops cleanly too.
        let (r2, _) = FrameStore::recover(Disk::new(1000), &dir).unwrap();
        assert_eq!(r2, r);
    }

    #[test]
    fn reconcile_settles_pending_frames_below_the_watermark() {
        let dir = tmpdir("reconcile-pending");
        let mut s = FrameStore::open(Disk::new(1000), &dir).unwrap();
        s.store(0.0, 100).unwrap();
        s.store(15.0, 100).unwrap();
        drop(s);
        // Crash lost the Begin/Complete records for frame 0, but the
        // receiver durably applied it.
        let (mut r, _) = FrameStore::recover(Disk::new(1000), &dir).unwrap();
        assert_eq!(r.reconcile_shipped(1), 1);
        assert_eq!(r.pending_count(), 1);
        assert_eq!(r.peek_oldest().unwrap().id, 1);
    }

    #[test]
    fn clone_and_eq_ignore_the_journal_handle() {
        let dir = tmpdir("clone");
        let mut s = FrameStore::open(Disk::new(1000), &dir).unwrap();
        s.store(0.0, 10).unwrap();
        let c = s.clone();
        assert_eq!(c, s);
        assert!(c.journal_dir().is_none(), "clones are volatile");
        assert!(s.journal_dir().is_some());
    }
}
