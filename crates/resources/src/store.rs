//! Frame ledger on the simulation-site disk.
//!
//! The simulation writes history frames to stable storage; the frame
//! sender ships the *oldest* available frame to the visualization site and
//! the bytes are released only when that transfer completes ("the data
//! that is transferred to the visualization site is removed from the
//! simulation site"). This module couples the byte accounting of
//! [`Disk`](crate::Disk) with that FIFO frame lifecycle:
//!
//! ```text
//! stored ──(begin_transfer)──▶ in-flight ──(complete_transfer)──▶ gone
//! ```

use crate::{Disk, DiskFull};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Metadata of one output frame sitting on the simulation-site disk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameMeta {
    /// Monotone frame id (assigned by the store).
    pub id: u64,
    /// Simulated time this frame represents, in minutes from mission start.
    pub sim_minutes: f64,
    /// Encoded size on disk.
    pub bytes: u64,
}

/// Errors from frame-lifecycle operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreError {
    /// Underlying disk rejected the write.
    Disk(DiskFull),
    /// `complete_transfer` named a frame that is not in flight.
    NotInFlight(u64),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Disk(e) => write!(f, "{e}"),
            StoreError::NotInFlight(id) => write!(f, "frame {id} is not in flight"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<DiskFull> for StoreError {
    fn from(e: DiskFull) -> Self {
        StoreError::Disk(e)
    }
}

/// FIFO ledger of frames on a [`Disk`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameStore {
    disk: Disk,
    pending: VecDeque<FrameMeta>,
    in_flight: Vec<FrameMeta>,
    next_id: u64,
    frames_stored: u64,
    frames_shipped: u64,
    external_bytes: u64,
}

impl FrameStore {
    /// New store over an empty disk.
    pub fn new(disk: Disk) -> Self {
        FrameStore {
            disk,
            pending: VecDeque::new(),
            in_flight: Vec::new(),
            next_id: 0,
            frames_stored: 0,
            frames_shipped: 0,
            external_bytes: 0,
        }
    }

    /// The underlying disk (for `df`-style queries).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// Store a new frame of `bytes` representing `sim_minutes`; fails when
    /// the disk cannot hold it.
    pub fn store(&mut self, sim_minutes: f64, bytes: u64) -> Result<FrameMeta, StoreError> {
        self.disk.write(bytes)?;
        let meta = FrameMeta {
            id: self.next_id,
            sim_minutes,
            bytes,
        };
        self.next_id += 1;
        self.frames_stored += 1;
        self.pending.push_back(meta);
        Ok(meta)
    }

    /// True when at least one frame awaits transfer.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Number of frames awaiting transfer.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Bytes awaiting transfer (not counting in-flight frames).
    pub fn pending_bytes(&self) -> u64 {
        self.pending.iter().map(|f| f.bytes).sum()
    }

    /// Oldest pending frame without starting its transfer.
    pub fn peek_oldest(&self) -> Option<&FrameMeta> {
        self.pending.front()
    }

    /// Move the oldest pending frame to the in-flight set (the sender has
    /// begun shipping it; its bytes remain on disk until completion).
    pub fn begin_transfer(&mut self) -> Option<FrameMeta> {
        let meta = self.pending.pop_front()?;
        self.in_flight.push(meta);
        Some(meta)
    }

    /// Finish a transfer: frees the frame's bytes at the simulation site.
    pub fn complete_transfer(&mut self, id: u64) -> Result<FrameMeta, StoreError> {
        let idx = self
            .in_flight
            .iter()
            .position(|f| f.id == id)
            .ok_or(StoreError::NotInFlight(id))?;
        let meta = self.in_flight.swap_remove(idx);
        self.disk.free_bytes(meta.bytes);
        self.frames_shipped += 1;
        Ok(meta)
    }

    /// Abort a transfer (e.g. the link dropped): the frame returns to the
    /// *front* of the pending queue so sim-time order is preserved.
    pub fn abort_transfer(&mut self, id: u64) -> Result<(), StoreError> {
        let idx = self
            .in_flight
            .iter()
            .position(|f| f.id == id)
            .ok_or(StoreError::NotInFlight(id))?;
        let meta = self.in_flight.swap_remove(idx);
        self.pending.push_front(meta);
        Ok(())
    }

    /// Total frames ever stored.
    pub fn frames_stored(&self) -> u64 {
        self.frames_stored
    }

    /// Total frames whose transfer completed.
    pub fn frames_shipped(&self) -> u64 {
        self.frames_shipped
    }

    /// Number of frames currently mid-transfer.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// An external writer (another job on the shared scratch filesystem)
    /// grabs up to `bytes` of free space. Returns how much it actually
    /// got (capped at what is free — the external job hits `ENOSPC` on
    /// the rest, just like ours would).
    pub fn seize_external(&mut self, bytes: u64) -> u64 {
        let got = bytes.min(self.disk.free());
        if got > 0 {
            self.disk.write(got).expect("capped at free space");
            self.external_bytes += got;
        }
        got
    }

    /// The external writer releases `bytes` of previously seized space
    /// (capped at what it still holds).
    pub fn release_external(&mut self, bytes: u64) -> u64 {
        let freed = bytes.min(self.external_bytes);
        if freed > 0 {
            self.disk.free_bytes(freed);
            self.external_bytes -= freed;
        }
        freed
    }

    /// Bytes currently held by external writers.
    pub fn external_bytes(&self) -> u64 {
        self.external_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> FrameStore {
        FrameStore::new(Disk::new(1000))
    }

    #[test]
    fn fifo_lifecycle_frees_bytes_only_on_completion() {
        let mut s = store();
        let a = s.store(0.0, 300).unwrap();
        let b = s.store(25.0, 300).unwrap();
        assert_eq!(s.disk().used(), 600);
        assert_eq!(s.pending_count(), 2);

        let t = s.begin_transfer().unwrap();
        assert_eq!(t.id, a.id, "oldest frame ships first");
        assert_eq!(s.disk().used(), 600, "in-flight bytes still on disk");
        assert_eq!(s.pending_count(), 1);

        s.complete_transfer(a.id).unwrap();
        assert_eq!(s.disk().used(), 300);
        assert_eq!(s.frames_shipped(), 1);
        assert_eq!(s.peek_oldest().unwrap().id, b.id);
    }

    #[test]
    fn store_fails_when_disk_full_without_effects() {
        let mut s = store();
        s.store(0.0, 900).unwrap();
        let err = s.store(1.0, 200).unwrap_err();
        assert!(matches!(err, StoreError::Disk(_)));
        assert_eq!(s.pending_count(), 1);
        assert_eq!(s.frames_stored(), 1);
    }

    #[test]
    fn complete_unknown_transfer_fails() {
        let mut s = store();
        s.store(0.0, 100).unwrap();
        assert_eq!(s.complete_transfer(0), Err(StoreError::NotInFlight(0)));
    }

    #[test]
    fn abort_restores_fifo_order() {
        let mut s = store();
        let a = s.store(0.0, 100).unwrap();
        s.store(1.0, 100).unwrap();
        let t = s.begin_transfer().unwrap();
        s.abort_transfer(t.id).unwrap();
        assert_eq!(s.pending_count(), 2);
        assert_eq!(s.peek_oldest().unwrap().id, a.id, "aborted frame back at front");
        assert_eq!(s.disk().used(), 200, "no bytes freed on abort");
    }

    #[test]
    fn ids_are_monotone_and_unique() {
        let mut s = store();
        let ids: Vec<u64> = (0..5).map(|i| s.store(i as f64, 10).unwrap().id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pending_bytes_excludes_in_flight() {
        let mut s = store();
        s.store(0.0, 100).unwrap();
        s.store(1.0, 200).unwrap();
        assert_eq!(s.pending_bytes(), 300);
        s.begin_transfer().unwrap();
        assert_eq!(s.pending_bytes(), 200);
    }

    #[test]
    fn begin_transfer_on_empty_returns_none() {
        let mut s = store();
        assert!(s.begin_transfer().is_none());
        assert!(!s.has_pending());
    }

    #[test]
    fn external_pressure_seizes_only_free_space_and_releases_it() {
        let mut s = store();
        s.store(0.0, 400).unwrap();
        let got = s.seize_external(1_000_000);
        assert_eq!(got, 600, "capped at free space");
        assert_eq!(s.external_bytes(), 600);
        assert_eq!(s.disk().free(), 0);
        // Frames still account separately: shipping one frees its bytes.
        let t = s.begin_transfer().unwrap();
        s.complete_transfer(t.id).unwrap();
        assert_eq!(s.disk().free(), 400);
        // Release is capped at what the external writer holds.
        assert_eq!(s.release_external(10_000), 600);
        assert_eq!(s.external_bytes(), 0);
        assert_eq!(s.disk().free(), 1000);
    }
}
