//! Stable-storage model with byte-accurate accounting.

use serde::{Deserialize, Serialize};

/// Write rejected: the disk cannot hold the requested bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskFull {
    /// Bytes the write asked for.
    pub requested: u64,
    /// Bytes actually free.
    pub free: u64,
}

impl std::fmt::Display for DiskFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "disk full: requested {} bytes with only {} free",
            self.requested, self.free
        )
    }
}

impl std::error::Error for DiskFull {}

/// A finite stable storage volume at the simulation site.
///
/// Invariants (checked in debug builds and enforced by the API):
/// `used ≤ capacity` always; `used` never goes negative (freeing more than
/// is used is a caller bug and panics).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Disk {
    capacity: u64,
    used: u64,
    /// Highest `used` ever observed — the experiment's storage footprint.
    high_water: u64,
    /// Cumulative bytes accepted by `write`.
    total_written: u64,
    /// Cumulative bytes released by `free`.
    total_freed: u64,
}

impl Disk {
    /// New empty disk of `capacity` bytes.
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "disk capacity must be positive");
        Disk {
            capacity,
            used: 0,
            high_water: 0,
            total_written: 0,
            total_freed: 0,
        }
    }

    /// Convenience constructor from gigabytes (10⁹ bytes, as disks are
    /// marketed and as Table IV quotes them).
    pub fn from_gb(gb: f64) -> Self {
        assert!(gb > 0.0 && gb.is_finite(), "capacity must be positive");
        Self::new((gb * 1e9) as u64)
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently occupied.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Free space as a percentage of capacity — what the paper's manager
    /// reads from `df` and feeds to the decision algorithms.
    pub fn free_percent(&self) -> f64 {
        100.0 * self.free() as f64 / self.capacity as f64
    }

    /// Occupied space as a percentage of capacity.
    pub fn used_percent(&self) -> f64 {
        100.0 - self.free_percent()
    }

    /// Highest occupancy ever reached, in bytes.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Cumulative bytes ever written.
    pub fn total_written(&self) -> u64 {
        self.total_written
    }

    /// True when a write of `bytes` would fit right now.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.free()
    }

    /// Occupy `bytes`; fails (without partial effects) when they do not fit.
    pub fn write(&mut self, bytes: u64) -> Result<(), DiskFull> {
        if !self.fits(bytes) {
            return Err(DiskFull {
                requested: bytes,
                free: self.free(),
            });
        }
        self.used += bytes;
        self.total_written += bytes;
        self.high_water = self.high_water.max(self.used);
        Ok(())
    }

    /// Release `bytes` previously written.
    ///
    /// # Panics
    /// If more bytes are freed than are used — that is double-free
    /// accounting in the caller, never a legitimate state.
    pub fn free_bytes(&mut self, bytes: u64) {
        assert!(
            bytes <= self.used,
            "freeing {bytes} bytes but only {} used",
            self.used
        );
        self.used -= bytes;
        self.total_freed += bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_and_free_accounting() {
        let mut d = Disk::new(1000);
        d.write(400).unwrap();
        assert_eq!(d.used(), 400);
        assert_eq!(d.free(), 600);
        assert_eq!(d.free_percent(), 60.0);
        assert_eq!(d.used_percent(), 40.0);
        d.free_bytes(150);
        assert_eq!(d.used(), 250);
        assert_eq!(d.total_written(), 400);
        assert_eq!(d.high_water(), 400);
    }

    #[test]
    fn overfull_write_rejected_without_effect() {
        let mut d = Disk::new(100);
        d.write(90).unwrap();
        let err = d.write(20).unwrap_err();
        assert_eq!(
            err,
            DiskFull {
                requested: 20,
                free: 10
            }
        );
        assert_eq!(d.used(), 90, "failed write must not change state");
    }

    #[test]
    fn exact_fill_is_allowed() {
        let mut d = Disk::new(100);
        d.write(100).unwrap();
        assert_eq!(d.free(), 0);
        assert_eq!(d.free_percent(), 0.0);
        assert!(!d.fits(1));
        assert!(d.fits(0));
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let mut d = Disk::new(100);
        d.write(80).unwrap();
        d.free_bytes(70);
        d.write(30).unwrap();
        assert_eq!(d.high_water(), 80);
        assert_eq!(d.used(), 40);
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn double_free_panics() {
        let mut d = Disk::new(100);
        d.write(10).unwrap();
        d.free_bytes(11);
    }

    #[test]
    fn from_gb_uses_decimal_gigabytes() {
        let d = Disk::from_gb(1.0);
        assert_eq!(d.capacity(), 1_000_000_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        Disk::new(0);
    }
}
