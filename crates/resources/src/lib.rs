//! Resource substrate models: stable storage, wide-area network, cluster.
//!
//! The paper's framework adapts to three resource signals — free disk space
//! at the simulation site (polled with `df` every decision epoch), the
//! measured bandwidth of the simulation→visualization link (timed 1 GB
//! transfers), and the processor space of the cluster. This crate models
//! all three with the same observable surface:
//!
//! - [`Disk`] — byte-accurate stable storage with capacity, high-water
//!   tracking, and a `df`-style percentage query,
//! - [`FrameStore`] — the output directory: a FIFO ledger of frames on the
//!   disk, with in-flight transfer accounting (a frame's bytes are freed
//!   only once its transfer completes, exactly as the paper removes
//!   transferred data from the simulation site),
//! - [`Network`] — a wide-area link with nominal bandwidth, latency, and a
//!   temporally-correlated variability model (bounded random walk), plus
//!   the [`BandwidthProbe`] that observes it the way the paper does,
//! - [`Cluster`] — a named machine: core count, parallel-I/O bandwidth,
//!   restart overhead, and its fitted scaling law.
//!
//! All stochastic behaviour is seeded and deterministic.

mod cluster;
mod disk;
pub mod journal;
mod network;
mod store;

pub use cluster::{Cluster, SharedCores};
pub use disk::{Disk, DiskFull};
pub use journal::crc32;
pub use network::{BandwidthProbe, Network, SharedLink, WanQueue};
pub use store::{FrameMeta, FrameStore, StoreError};
