//! Property tests for the write-ahead journal: for any sequence of frame
//! lifecycle operations, replaying the journal rebuilds exactly the ledger
//! the live store ended with — `recover(journal(ops)) == apply(ops)` — and
//! a torn final record drops only the uncommitted tail.

use proptest::prelude::*;
use resources::journal::{self, Journal, JournalOp};
use resources::{Disk, FrameStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "adaptive-proptest-journal-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[derive(Debug, Clone)]
enum Op {
    Store(u64),
    Begin,
    CompleteOldestInFlight,
    AbortNewestInFlight,
    Seize(u64),
    Release(u64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..300).prop_map(Op::Store),
            Just(Op::Begin),
            Just(Op::CompleteOldestInFlight),
            Just(Op::AbortNewestInFlight),
            (1u64..400).prop_map(Op::Seize),
            (1u64..400).prop_map(Op::Release),
        ],
        0..120,
    )
}

/// Drive a journaled store through `ops`; returns the store (still
/// holding its journal handle).
fn drive(store: &mut FrameStore, ops: &[Op]) {
    let mut in_flight: Vec<u64> = Vec::new();
    let mut clock = 0.0f64;
    for op in ops {
        match op {
            Op::Store(bytes) => {
                clock += 1.0;
                let _ = store.store(clock, *bytes);
            }
            Op::Begin => {
                if let Some(meta) = store.begin_transfer() {
                    in_flight.push(meta.id);
                }
            }
            Op::CompleteOldestInFlight => {
                if !in_flight.is_empty() {
                    let id = in_flight.remove(0);
                    store.complete_transfer(id).unwrap();
                }
            }
            Op::AbortNewestInFlight => {
                if let Some(id) = in_flight.pop() {
                    store.abort_transfer(id).unwrap();
                }
            }
            Op::Seize(bytes) => {
                store.seize_external(*bytes);
            }
            Op::Release(bytes) => {
                store.release_external(*bytes);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn recover_of_journal_equals_live_apply(ops in arb_ops()) {
        let dir = tmpdir("equals");
        let capacity = 1500u64;
        let mut live = FrameStore::open(Disk::new(capacity), &dir).unwrap();
        drive(&mut live, &ops);
        let (recovered, report) = FrameStore::recover(Disk::new(capacity), &dir).unwrap();
        prop_assert_eq!(&recovered, &live, "replay must rebuild the live ledger");
        prop_assert_eq!(report.truncated_bytes, 0, "clean log has no torn tail");
        // And recovery is idempotent: recovering again changes nothing.
        let (again, _) = FrameStore::recover(Disk::new(capacity), &dir).unwrap();
        prop_assert_eq!(&again, &recovered);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_drops_only_the_uncommitted_suffix(
        ops in arb_ops(),
        tear in 1u64..32,
    ) {
        let dir = tmpdir("torn");
        let capacity = 1500u64;
        let mut live = FrameStore::open(Disk::new(capacity), &dir).unwrap();
        drive(&mut live, &ops);
        drop(live);

        // Committed ops before the tear.
        let (full_ops, _) = journal::replay(&dir).unwrap();
        journal::simulate_torn_tail(&dir, tear).unwrap();
        let (torn_ops, _) = journal::replay(&dir).unwrap();

        // Only a suffix may be lost, never an interior record.
        prop_assert!(torn_ops.len() <= full_ops.len());
        prop_assert_eq!(&full_ops[..torn_ops.len()], &torn_ops[..]);

        // The surviving prefix still recovers to a coherent ledger, and a
        // reopened journal accepts appends after the repair.
        let (mut recovered, _) = FrameStore::recover(Disk::new(capacity), &dir).unwrap();
        prop_assert!(recovered.disk().used() <= capacity);
        let _ = recovered.store(9999.0, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_roundtrips_raw_op_sequences(ids in prop::collection::vec(0u64..50, 0..40)) {
        let dir = tmpdir("raw");
        let mut j = Journal::open_with_segment_bytes(&dir, 64).unwrap();
        let ops: Vec<JournalOp> = ids
            .iter()
            .map(|&id| JournalOp::Store { id, sim_minutes: id as f64 * 0.5, bytes: id + 1 })
            .collect();
        for op in &ops {
            j.append(op).unwrap();
        }
        drop(j);
        let (recovered, report) = journal::replay(&dir).unwrap();
        prop_assert_eq!(recovered, ops);
        prop_assert_eq!(report.ops as usize, ids.len());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
