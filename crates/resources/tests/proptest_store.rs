//! Property tests: the frame store preserves disk invariants and FIFO
//! order under arbitrary interleavings of store / ship / complete / abort.

use proptest::prelude::*;
use resources::{Disk, FrameStore};

#[derive(Debug, Clone)]
enum Op {
    Store(u64),
    Begin,
    CompleteOldestInFlight,
    AbortNewestInFlight,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..200).prop_map(Op::Store),
            Just(Op::Begin),
            Just(Op::CompleteOldestInFlight),
            Just(Op::AbortNewestInFlight),
        ],
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn invariants_hold_under_arbitrary_interleavings(ops in arb_ops()) {
        let capacity = 2000u64;
        let mut store = FrameStore::new(Disk::new(capacity));
        let mut in_flight: Vec<(u64, u64)> = Vec::new(); // (id, bytes)
        let mut expected_used = 0u64;
        let mut last_shipped_minutes = f64::NEG_INFINITY;
        let mut clock = 0.0f64;

        for op in ops {
            match op {
                Op::Store(bytes) => {
                    clock += 1.0;
                    match store.store(clock, bytes) {
                        Ok(meta) => {
                            expected_used += bytes;
                            prop_assert_eq!(meta.bytes, bytes);
                        }
                        Err(_) => {
                            prop_assert!(expected_used + bytes > capacity,
                                "store failed although {bytes} fit in {} free",
                                capacity - expected_used);
                        }
                    }
                }
                Op::Begin => {
                    if let Some(meta) = store.begin_transfer() {
                        in_flight.push((meta.id, meta.bytes));
                    }
                }
                Op::CompleteOldestInFlight => {
                    if !in_flight.is_empty() {
                        let (id, bytes) = in_flight.remove(0);
                        let meta = store.complete_transfer(id).unwrap();
                        prop_assert_eq!(meta.bytes, bytes);
                        expected_used -= bytes;
                        // FIFO begin + FIFO complete ⇒ shipped frames leave
                        // in non-decreasing sim-time order.
                        prop_assert!(meta.sim_minutes >= last_shipped_minutes);
                        last_shipped_minutes = meta.sim_minutes;
                    }
                }
                Op::AbortNewestInFlight => {
                    if let Some((id, _)) = in_flight.pop() {
                        store.abort_transfer(id).unwrap();
                    }
                }
            }
            // Core invariants after every operation.
            prop_assert_eq!(store.disk().used(), expected_used);
            prop_assert!(store.disk().used() <= store.disk().capacity());
            prop_assert!(store.pending_bytes() <= store.disk().used());
        }
        prop_assert_eq!(store.frames_shipped() as usize,
            store.frames_stored() as usize - store.pending_count() - in_flight.len());
    }
}
