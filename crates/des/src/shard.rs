//! Sharded parallel DES: per-shard clocks plus a conservative time coordinator.
//!
//! The single-threaded [`Scheduler`](crate::Scheduler) caps every fleet-scale
//! experiment at one core. This module splits it into:
//!
//! * [`ShardClock`] — one event queue + local virtual clock per shard (a
//!   mission, in the fleet layer). [`Scheduler`](crate::Scheduler) is now a
//!   thin wrapper over shard 0, so solo runs are untouched.
//! * [`TimeCoordinator`] — tracks, per shard, a lower bound on the timestamp
//!   of the next event that shard will execute, and computes from those
//!   bounds a conservative **horizon** granting each shard a safe advance
//!   window.
//! * [`run_shards`] — a worker pool that drives N [`ShardTask`]s to
//!   completion, consulting the coordinator only for events that touch
//!   shared state.
//!
//! # The conservative rule
//!
//! Events are classified shard-local vs shared-resource ([`EventClass`]).
//! Local events never read or write cross-shard state, so a shard with only
//! local work runs ahead of the others without any synchronization. An
//! action at time `t` on shard `i` that *is* cross-shard-visible may only
//! execute when
//!
//! ```text
//! (t, i)  <  (next_j, j)   lexicographically, for every other live shard j
//! ```
//!
//! where `next_j` is shard `j`'s reported bound. Bounds are exact queue-head
//! timestamps when a shard parks or requests clearance, and stale-but-lower
//! values otherwise — stale-low is conservative (it only delays clearance).
//! Because the `(t, i)`-minimal shard always passes the check, the pool
//! cannot deadlock; because the check totally orders shared actions by
//! `(t, i)`, the sequence of shared-state mutations is a pure function of
//! the inputs regardless of thread interleaving.
//!
//! Cross-shard wakes (resource grants) are **mailboxes**, never injections
//! into another shard's queue: the releasing shard records the grant, and
//! the waiting shard's own [`ShardTask::poll`] surfaces it as
//! [`ShardPoll::Granted`]. A shard that is waiting on a grant must gate even
//! its local events behind the horizon ([`ShardPoll::Gated`]); under that
//! discipline a grant provably never lands in the grantee's past (the
//! releaser's bound is `<=` the release time at all times before the release
//! executes, so the horizon pins the waiter at or below it).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) u64);

pub(crate) struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    /// Reversed so that the `BinaryHeap` (a max-heap) pops the *earliest*
    /// event; ties broken by scheduling order for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Whether an event only touches state owned by its shard, or reads/writes
/// a shared resource (cluster core pool, shared WAN link) and therefore must
/// execute in global `(time, shard)` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// Touches only shard-owned state; runs without coordination.
    Local,
    /// Touches shared-resource state; gated on the conservative horizon.
    Shared,
}

/// Per-shard event queue with a local virtual clock.
///
/// This is the former `Scheduler` body, now carrying a shard id so N of
/// them can advance independently under [`run_shards`].
/// [`Scheduler`](crate::Scheduler) wraps shard 0 and keeps its public API.
///
/// Cancellation bookkeeping: `live` holds the sequence numbers still in the
/// heap and not cancelled, `cancelled` those still in the heap but dead.
/// Every heap node is in exactly one of the two sets, so `len()` is exact
/// and a stale cancel (the event already fired) is a no-op returning
/// `false` — it cannot leave a tombstone behind.
pub struct ShardClock<E> {
    shard: usize,
    heap: BinaryHeap<Scheduled<E>>,
    live: HashSet<u64>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
}

impl<E> ShardClock<E> {
    /// Create an empty clock for `shard` with time at zero.
    pub fn new(shard: usize) -> Self {
        ShardClock {
            shard,
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The shard this clock belongs to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Current virtual time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Number of cancelled entries still physically in the heap, awaiting
    /// lazy removal. Bounded by the number of outstanding cancels on queued
    /// events — a long soak cannot grow it without bound (diagnostic for
    /// the cancel-then-pop accounting regression).
    pub fn tombstones(&self) -> usize {
        self.cancelled.len()
    }

    /// Schedule `event` at absolute time `t`.
    ///
    /// # Panics
    /// If `t` is earlier than the current clock.
    pub fn schedule_at(&mut self, t: SimTime, event: E) -> EventId {
        assert!(
            t >= self.now,
            "cannot schedule into the past: t={:?} now={:?}",
            t,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Scheduled {
            time: t,
            seq,
            event,
        });
        EventId(seq)
    }

    /// Schedule `event` `dt` seconds from now. Non-finite or negative `dt`
    /// is clamped to 0.
    pub fn schedule_in(&mut self, dt: f64, event: E) -> EventId {
        let dt = if dt.is_finite() && dt > 0.0 { dt } else { 0.0 };
        self.schedule_at(self.now + dt, event)
    }

    /// Cancel a previously scheduled event. Returns `false` when the event
    /// already fired (or was already cancelled, or never existed).
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Only an id still live in the heap can move to the cancelled set;
        // a stale id (already popped) is rejected outright, so the set
        // cannot accumulate tombstones that never match a heap node.
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Pop the earliest live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.heap.pop() {
            if self.cancelled.remove(&s.seq) {
                continue;
            }
            self.live.remove(&s.seq);
            self.now = s.time;
            return Some((s.time, s.event));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek().map(|(t, _)| t)
    }

    /// Timestamp and payload of the next live event without popping it.
    pub fn peek(&mut self) -> Option<(SimTime, &E)> {
        // Drop stale cancelled entries off the top first.
        while let Some(s) = self.heap.peek() {
            if self.cancelled.contains(&s.seq) {
                let s = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&s.seq);
            } else {
                break;
            }
        }
        self.heap.peek().map(|s| (s.time, &s.event))
    }
}

/// A conservative horizon: the lexicographically smallest `(next, shard)`
/// bound among a set of peer shards, or `None` when no live peer constrains
/// advancement (all finished — the shard may run to completion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Horizon(pub Option<(SimTime, usize)>);

impl Horizon {
    /// May shard `shard` execute a cross-shard-visible action at `t`?
    /// True iff `(t, shard)` precedes the horizon pair lexicographically.
    pub fn admits(&self, t: SimTime, shard: usize) -> bool {
        match self.0 {
            None => true,
            Some((ht, hs)) => t < ht || (t == ht && shard < hs),
        }
    }
}

/// Tracks per-shard next-event lower bounds and answers "may shard `i`
/// perform a shared action at time `t` yet?".
///
/// Not internally synchronized: [`run_shards`] guards it with the pool
/// lock; single-threaded callers (tests, a reference merge) use it bare.
pub struct TimeCoordinator {
    /// Reported lower bound on each shard's next executed event. Starts at
    /// zero (nothing can precede the epoch) and is refreshed from exact
    /// queue heads whenever a shard parks, requests clearance, or — while
    /// any shard is parked — pops an event.
    next: Vec<SimTime>,
    finished: Vec<bool>,
    live: usize,
}

impl TimeCoordinator {
    /// Coordinator for `shards` shards, all bounds at time zero.
    pub fn new(shards: usize) -> Self {
        TimeCoordinator {
            next: vec![SimTime::ZERO; shards],
            finished: vec![false; shards],
            live: shards,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.next.len()
    }

    /// Record that shard `i`'s next event executes no earlier than `t`.
    pub fn report(&mut self, i: usize, t: SimTime) {
        self.next[i] = t;
    }

    /// Mark shard `i` complete; it no longer constrains any horizon.
    pub fn finish(&mut self, i: usize) {
        if !self.finished[i] {
            self.finished[i] = true;
            self.live -= 1;
        }
    }

    /// True when every shard has finished.
    pub fn all_finished(&self) -> bool {
        self.live == 0
    }

    /// Global lower bound over all live shards' next events (diagnostic /
    /// window reporting). `None` when all shards are finished.
    pub fn horizon(&self) -> Horizon {
        self.horizon_excluding(usize::MAX)
    }

    /// The horizon shard `i` must respect: the lexicographic minimum of
    /// `(next_j, j)` over live shards `j != i`.
    pub fn horizon_excluding(&self, i: usize) -> Horizon {
        let mut best: Option<(SimTime, usize)> = None;
        for (j, &t) in self.next.iter().enumerate() {
            if j == i || self.finished[j] {
                continue;
            }
            if best.is_none_or(|(bt, bj)| t < bt || (t == bt && j < bj)) {
                best = Some((t, j));
            }
        }
        Horizon(best)
    }

    /// May shard `i` execute a cross-shard-visible action at `t` now?
    pub fn admits(&self, i: usize, t: SimTime) -> bool {
        self.horizon_excluding(i).admits(t, i)
    }
}

/// What a shard offers to execute next, as seen by the [`run_shards`] pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardPoll {
    /// Pure shard-local event: execute without coordination.
    Local { time: SimTime },
    /// Needs the conservative window (a shared-resource event, or any event
    /// while this shard may still receive a grant): execute only once the
    /// coordinator horizon admits `(time, shard)`.
    Gated { time: SimTime },
    /// A pre-cleared cross-shard wake sitting in this shard's grant
    /// mailbox: execute immediately. (Its release event was itself gated,
    /// which is what makes it safe to consume without a fresh check.)
    Granted { time: SimTime },
    /// Nothing left to execute; the shard is complete.
    Done,
}

/// One shard of work driven by [`run_shards`]: typically a full mission
/// engine wrapped around a [`ShardClock`].
///
/// Contract: `poll` is cheap and side-effect-free (it may lazily tidy
/// internal queues but must not advance the simulation); `step` executes
/// exactly the action the immediately preceding `poll` described. A shard
/// that can still receive grants must keep offering events (a finite
/// `poll` time) until the grant source finishes — in the fleet engine the
/// standing decision-epoch chain guarantees this.
pub trait ShardTask: Send {
    /// Describe the next action without executing it.
    fn poll(&mut self) -> ShardPoll;
    /// Execute the action most recently described by `poll`.
    fn step(&mut self);
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ShardState {
    /// In the ready queue, or about to be polled by `reschedule`.
    Parked,
    Queued,
    Running,
    Finished,
}

struct Pool<T> {
    tasks: Vec<Option<T>>,
    coord: TimeCoordinator,
    state: Vec<ShardState>,
    ready: VecDeque<usize>,
    running: usize,
}

impl<T: ShardTask> Pool<T> {
    /// Re-poll every parked shard and queue those now runnable. Called
    /// under the pool lock after anything that can change admission:
    /// a report, a gated/granted step, or a shard finishing.
    fn reschedule(&mut self) -> bool {
        let mut woke = false;
        // Phase 1: refresh every parked shard's bound, releasing the ones
        // that no longer need the horizon (Done/Local/Granted).
        let mut gated: Vec<(usize, SimTime)> = Vec::new();
        for i in 0..self.tasks.len() {
            if self.state[i] != ShardState::Parked {
                continue;
            }
            let task = self.tasks[i].as_mut().expect("parked task is present");
            match task.poll() {
                ShardPoll::Done => {
                    self.state[i] = ShardState::Finished;
                    self.coord.finish(i);
                    woke = true;
                }
                ShardPoll::Local { time } | ShardPoll::Granted { time } => {
                    self.coord.report(i, time);
                    self.state[i] = ShardState::Queued;
                    self.ready.push_back(i);
                    woke = true;
                }
                ShardPoll::Gated { time } => {
                    self.coord.report(i, time);
                    gated.push((i, time));
                }
            }
        }
        // Phase 2: admission checks against everyone's *fresh* bounds.
        // A single interleaved pass would check shard i against bounds
        // shards j > i have not refreshed yet (the initial seed's ZERO
        // placeholders), wrongly holding the minimal shard.
        for (i, time) in gated {
            if self.coord.admits(i, time) {
                self.state[i] = ShardState::Queued;
                self.ready.push_back(i);
                woke = true;
            }
        }
        woke
    }

    fn all_finished(&self) -> bool {
        self.state.iter().all(|s| *s == ShardState::Finished)
    }
}

/// Drive `tasks` to completion on `workers` OS threads, coordinating
/// shared-resource events conservatively. Returns the tasks (in order) once
/// every shard reports [`ShardPoll::Done`].
///
/// The outcome of every shared-state interaction is a pure function of the
/// tasks' inputs — worker count and thread timing only affect wall-clock.
///
/// # Panics
/// If the pool wedges (no shard runnable, none running, not all finished),
/// which indicates a broken `ShardTask` contract — e.g. a shard waiting on
/// a grant whose source already finished without releasing.
pub fn run_shards<T: ShardTask>(tasks: Vec<T>, workers: usize) -> Vec<T> {
    let n = tasks.len();
    if n == 0 {
        return tasks;
    }
    let workers = workers.max(1);
    let pool = Mutex::new(Pool {
        tasks: tasks.into_iter().map(Some).collect(),
        coord: TimeCoordinator::new(n),
        state: vec![ShardState::Parked; n],
        ready: VecDeque::new(),
        running: 0,
    });
    let cond = Condvar::new();

    {
        // Seed the ready queue from the initial polls.
        let mut p = pool.lock().expect("pool lock");
        p.reschedule();
        assert!(
            !p.ready.is_empty() || p.all_finished(),
            "sharded DES could not start: no shard admissible at time zero"
        );
    }

    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| worker_loop(&pool, &cond));
        }
    });

    let mut p = pool.lock().expect("pool lock");
    assert!(
        p.all_finished(),
        "worker pool exited with unfinished shards"
    );
    p.tasks
        .iter_mut()
        .map(|t| t.take().expect("finished task is present"))
        .collect()
}

fn worker_loop<T: ShardTask>(pool: &Mutex<Pool<T>>, cond: &Condvar) {
    'acquire: loop {
        let (shard, mut task) = {
            let mut p = pool.lock().expect("pool lock");
            loop {
                if p.all_finished() {
                    cond.notify_all();
                    return;
                }
                if let Some(i) = p.ready.pop_front() {
                    p.state[i] = ShardState::Running;
                    p.running += 1;
                    let t = p.tasks[i].take().expect("queued task is present");
                    break (i, t);
                }
                if p.running == 0 {
                    // Everyone is parked; a reschedule must free someone
                    // (the (t, shard)-minimal shard is always admissible).
                    if !p.reschedule() && p.ready.is_empty() && !p.all_finished() {
                        panic!(
                            "conservative DES deadlock: all shards parked, \
                             none admissible (broken ShardTask contract?)"
                        );
                    }
                    continue;
                }
                p = cond.wait(p).expect("pool lock");
            }
        };

        loop {
            match task.poll() {
                ShardPoll::Done => {
                    let mut p = pool.lock().expect("pool lock");
                    p.coord.finish(shard);
                    p.state[shard] = ShardState::Finished;
                    p.tasks[shard] = Some(task);
                    p.running -= 1;
                    p.reschedule();
                    cond.notify_all();
                    continue 'acquire;
                }
                ShardPoll::Local { time } => {
                    // Fast path: only lock to publish progress when some
                    // shard is parked and may be waiting on our bound.
                    let mut p = pool.lock().expect("pool lock");
                    let anyone_parked = p.state.contains(&ShardState::Parked);
                    if anyone_parked {
                        p.coord.report(shard, time);
                        if p.reschedule() {
                            cond.notify_all();
                        }
                    }
                    drop(p);
                    task.step();
                }
                ShardPoll::Granted { .. } => {
                    task.step();
                    let mut p = pool.lock().expect("pool lock");
                    if p.reschedule() {
                        cond.notify_all();
                    }
                }
                ShardPoll::Gated { time } => {
                    let mut p = pool.lock().expect("pool lock");
                    p.coord.report(shard, time);
                    if p.reschedule() {
                        cond.notify_all();
                    }
                    if p.coord.admits(shard, time) {
                        // Execute outside the lock; our reported bound
                        // stays at `time`, holding later shared actions
                        // on other shards until we re-report.
                        drop(p);
                        task.step();
                        let mut p = pool.lock().expect("pool lock");
                        if p.reschedule() {
                            cond.notify_all();
                        }
                    } else {
                        p.state[shard] = ShardState::Parked;
                        p.tasks[shard] = Some(task);
                        p.running -= 1;
                        cond.notify_all();
                        continue 'acquire;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AtOrd};
    use std::sync::{Arc, Mutex as StdMutex};

    #[test]
    fn shard_clock_carries_its_id() {
        let c: ShardClock<u32> = ShardClock::new(3);
        assert_eq!(c.shard(), 3);
        assert_eq!(c.now(), SimTime::ZERO);
    }

    #[test]
    fn horizon_admits_is_lexicographic() {
        let h = Horizon(Some((SimTime::from_secs(5.0), 2)));
        assert!(h.admits(SimTime::from_secs(4.0), 7));
        assert!(
            h.admits(SimTime::from_secs(5.0), 1),
            "tie broken by shard id"
        );
        assert!(!h.admits(SimTime::from_secs(5.0), 2));
        assert!(!h.admits(SimTime::from_secs(5.0), 3));
        assert!(!h.admits(SimTime::from_secs(6.0), 0));
        assert!(Horizon(None).admits(SimTime::from_secs(1e9), 0));
    }

    #[test]
    fn coordinator_minimal_shard_is_always_admissible() {
        let mut c = TimeCoordinator::new(3);
        c.report(0, SimTime::from_secs(10.0));
        c.report(1, SimTime::from_secs(10.0));
        c.report(2, SimTime::from_secs(12.0));
        // Shard 0 is the (time, id) minimum: admitted.
        assert!(c.admits(0, SimTime::from_secs(10.0)));
        // Shard 1 ties on time but loses on id: held.
        assert!(!c.admits(1, SimTime::from_secs(10.0)));
        // Once shard 0 moves past, shard 1 clears.
        c.report(0, SimTime::from_secs(10.5));
        assert!(c.admits(1, SimTime::from_secs(10.0)));
    }

    #[test]
    fn finished_shards_stop_constraining() {
        let mut c = TimeCoordinator::new(2);
        c.report(0, SimTime::from_secs(1.0));
        c.report(1, SimTime::from_secs(100.0));
        assert!(!c.admits(1, SimTime::from_secs(100.0)));
        c.finish(0);
        assert!(c.admits(1, SimTime::from_secs(100.0)));
        assert!(!c.all_finished());
        c.finish(1);
        assert!(c.all_finished());
        assert_eq!(c.horizon(), Horizon(None));
    }

    /// A shard that executes `n` local events 1s apart, appending to a
    /// shared log only at gated events — used to check that gated actions
    /// are globally ordered regardless of worker count.
    struct LogShard {
        clock: ShardClock<u64>,
        shared_every: u64,
        log: Arc<StdMutex<Vec<(u64, usize)>>>,
        steps: Arc<AtomicUsize>,
        pending: Option<(SimTime, u64)>,
    }

    impl LogShard {
        fn new(
            shard: usize,
            n: u64,
            shared_every: u64,
            log: Arc<StdMutex<Vec<(u64, usize)>>>,
            steps: Arc<AtomicUsize>,
        ) -> Self {
            let mut clock = ShardClock::new(shard);
            for k in 0..n {
                clock.schedule_at(SimTime::from_secs(k as f64), k);
            }
            LogShard {
                clock,
                shared_every,
                log,
                steps,
                pending: None,
            }
        }
    }

    impl ShardTask for LogShard {
        fn poll(&mut self) -> ShardPoll {
            match self.clock.peek() {
                None => ShardPoll::Done,
                Some((t, &k)) => {
                    if k % self.shared_every == 0 {
                        self.pending = Some((t, k));
                        ShardPoll::Gated { time: t }
                    } else {
                        ShardPoll::Local { time: t }
                    }
                }
            }
        }

        fn step(&mut self) {
            let (t, k) = self.clock.pop().expect("poll said an event exists");
            self.steps.fetch_add(1, AtOrd::Relaxed);
            if self.pending.take() == Some((t, k)) {
                self.log
                    .lock()
                    .unwrap()
                    .push((t.as_secs() as u64, self.clock.shard()));
            }
        }
    }

    #[test]
    fn gated_events_execute_in_global_time_shard_order() {
        for workers in [1, 2, 4, 8] {
            let log = Arc::new(StdMutex::new(Vec::new()));
            let steps = Arc::new(AtomicUsize::new(0));
            let shards: Vec<LogShard> = (0..4)
                .map(|i| LogShard::new(i, 40, 5, Arc::clone(&log), Arc::clone(&steps)))
                .collect();
            let done = run_shards(shards, workers);
            assert_eq!(done.len(), 4);
            assert_eq!(steps.load(AtOrd::Relaxed), 4 * 40);
            let got = log.lock().unwrap().clone();
            let mut expect = got.clone();
            expect.sort();
            assert_eq!(
                got, expect,
                "shared log out of (time, shard) order at workers={workers}"
            );
            // 8 gated events per shard, all logged.
            assert_eq!(got.len(), 4 * 8);
        }
    }

    #[test]
    fn run_shards_handles_empty_and_single() {
        let empty: Vec<LogShard> = Vec::new();
        assert!(run_shards(empty, 4).is_empty());
        let log = Arc::new(StdMutex::new(Vec::new()));
        let steps = Arc::new(AtomicUsize::new(0));
        let one = vec![LogShard::new(0, 10, 3, log, Arc::clone(&steps))];
        run_shards(one, 4);
        assert_eq!(steps.load(AtOrd::Relaxed), 10);
    }
}
