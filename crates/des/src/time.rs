//! Virtual time: seconds since the start of an experiment, totally ordered.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in seconds from the experiment start.
///
/// Wraps an `f64` that is guaranteed finite and non-negative, which makes a
/// total order legal (`Ord` below). Construction from a non-finite or
/// negative value panics — such a value always indicates a bug upstream
/// (e.g. dividing by a zero bandwidth) and must not be silently queued.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimTime(f64);

impl SimTime {
    /// The experiment start.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds.
    ///
    /// # Panics
    /// If `secs` is NaN, infinite, or negative.
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimTime must be finite and non-negative, got {secs}"
        );
        SimTime(secs)
    }

    /// Construct from minutes.
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// Construct from hours.
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Seconds since the experiment start.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Minutes since the experiment start.
    pub fn as_mins(self) -> f64 {
        self.0 / 60.0
    }

    /// Hours since the experiment start.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Format as `HH:MM` (hours may exceed 24).
    pub fn hhmm(self) -> String {
        let total_mins = (self.0 / 60.0).round() as i64;
        format!("{:02}:{:02}", total_mins / 60, total_mins % 60)
    }

    /// Saturating subtraction in seconds (never below zero).
    pub fn saturating_sub(self, other: SimTime) -> f64 {
        (self.0 - other.0).max(0.0)
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Safe: the constructor rejects NaN.
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime is never NaN by construction")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    /// Difference in seconds (may be negative when `rhs` is later).
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.hhmm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_hours(1.5);
        assert_eq!(t.as_secs(), 5400.0);
        assert_eq!(t.as_mins(), 90.0);
        assert_eq!(t.as_hours(), 1.5);
        assert_eq!(SimTime::from_mins(90.0), t);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn hhmm_formats_past_24h() {
        assert_eq!(SimTime::from_hours(26.0).hhmm(), "26:00");
        assert_eq!(SimTime::from_mins(125.0).hhmm(), "02:05");
        assert_eq!(SimTime::ZERO.hhmm(), "00:00");
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        let a = SimTime::from_secs(5.0);
        let b = SimTime::from_secs(9.0);
        assert_eq!(b.saturating_sub(a), 4.0);
        assert_eq!(a.saturating_sub(b), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_rejected() {
        SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_rejected() {
        SimTime::from_secs(-1.0);
    }

    #[test]
    fn sub_gives_signed_seconds() {
        let a = SimTime::from_secs(3.0);
        let b = SimTime::from_secs(10.0);
        assert_eq!(b - a, 7.0);
        assert_eq!(a - b, -7.0);
    }
}
