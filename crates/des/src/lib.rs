//! Deterministic discrete-event simulation (DES) engine.
//!
//! The adaptive framework of the paper runs for 20–38 wall-clock hours per
//! experiment. To reproduce every figure in seconds, the closed loop
//! (simulation steps, parallel I/O, frame transfers, decision epochs,
//! restarts, stalls) is advanced on a *virtual clock*: this crate provides
//! the clock ([`SimTime`]), the event queue ([`Scheduler`]), and a small
//! time-series recorder ([`Series`]) used to capture the figure data.
//!
//! Determinism: events scheduled for the same instant are delivered in
//! scheduling order (a monotone sequence number breaks ties), so a run is a
//! pure function of its inputs — a property the integration tests rely on.
//!
//! For fleet-scale runs the queue is sharded: [`ShardClock`] is one queue +
//! local clock per mission, and [`TimeCoordinator`]/[`run_shards`] advance
//! many of them in parallel, synchronizing only at shared-resource events
//! via conservative time windows (see the [`shard`] module docs).
//! [`Scheduler`] is a thin wrapper over a single `ShardClock`, so solo runs
//! are exactly what they always were.
//!
//! # Example
//! ```
//! use des::{Scheduler, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut sched = Scheduler::new();
//! sched.schedule_in(1.0, Ev::Ping);
//! sched.schedule_in(2.0, Ev::Pong);
//! let mut seen = Vec::new();
//! while let Some((t, e)) = sched.pop() {
//!     seen.push((t.as_secs(), e));
//! }
//! assert_eq!(seen.len(), 2);
//! assert_eq!(seen[0].1, Ev::Ping);
//! ```

mod series;
pub mod shard;
mod time;

pub use series::{Series, SeriesSet};
pub use shard::{
    run_shards, EventClass, EventId, Horizon, ShardClock, ShardPoll, ShardTask, TimeCoordinator,
};
pub use time::SimTime;

/// Priority queue of timed events with a virtual clock.
///
/// `pop` advances the clock to the popped event's timestamp. Time never
/// moves backwards: scheduling in the past panics (it would silently
/// corrupt causality in the orchestrator).
///
/// Since the sharded-DES split this is a façade over one [`ShardClock`];
/// the behaviour (and the tie-break order solo parity depends on) is
/// unchanged.
pub struct Scheduler<E> {
    clock: ShardClock<E>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Create an empty scheduler with the clock at time zero (shard 0).
    pub fn new() -> Self {
        Self::for_shard(0)
    }

    /// Create an empty scheduler whose clock is tagged with `shard` — used
    /// by the fleet layer so each mission's queue knows its shard id.
    pub fn for_shard(shard: usize) -> Self {
        Scheduler {
            clock: ShardClock::new(shard),
        }
    }

    /// The shard id this scheduler's clock is tagged with (0 for solo runs).
    pub fn shard(&self) -> usize {
        self.clock.shard()
    }

    /// Current virtual time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Number of live (non-cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.clock.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.clock.is_empty()
    }

    /// Number of cancelled entries still awaiting lazy heap removal.
    pub fn tombstones(&self) -> usize {
        self.clock.tombstones()
    }

    /// Schedule `event` at absolute time `t`.
    ///
    /// # Panics
    /// If `t` is earlier than the current clock.
    pub fn schedule_at(&mut self, t: SimTime, event: E) -> EventId {
        self.clock.schedule_at(t, event)
    }

    /// Schedule `event` `dt` seconds from now. Non-finite or negative `dt`
    /// is clamped to 0.
    pub fn schedule_in(&mut self, dt: f64, event: E) -> EventId {
        self.clock.schedule_in(dt, event)
    }

    /// Cancel a previously scheduled event. Returns `false` when the event
    /// already fired (or was already cancelled, or never existed).
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.clock.cancel(id)
    }

    /// Pop the earliest live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.clock.pop()
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.clock.peek_time()
    }

    /// Timestamp and payload of the next live event without popping it.
    pub fn peek(&mut self) -> Option<(SimTime, &E)> {
        self.clock.peek()
    }
}

/// Drive a world to completion: pop events and hand them to `handler`
/// until the queue drains or `handler` returns `false` (stop requested).
///
/// Returns the final virtual time.
pub fn run_until_empty<E, W>(
    sched: &mut Scheduler<E>,
    world: &mut W,
    mut handler: impl FnMut(&mut W, SimTime, E, &mut Scheduler<E>) -> bool,
) -> SimTime {
    while let Some((t, e)) = sched.pop() {
        if !handler(world, t, e, sched) {
            break;
        }
    }
    sched.now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum E {
        A,
        B,
        C,
    }

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_in(3.0, E::C);
        s.schedule_in(1.0, E::A);
        s.schedule_in(2.0, E::B);
        assert_eq!(s.pop().unwrap().1, E::A);
        assert_eq!(s.pop().unwrap().1, E::B);
        assert_eq!(s.pop().unwrap().1, E::C);
        assert!(s.pop().is_none());
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut s = Scheduler::new();
        s.schedule_in(5.0, E::B);
        s.schedule_in(5.0, E::A);
        s.schedule_in(5.0, E::C);
        let order: Vec<E> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![E::B, E::A, E::C]);
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut s = Scheduler::new();
        s.schedule_in(2.5, E::A);
        assert_eq!(s.now(), SimTime::ZERO);
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(2.5));
        assert_eq!(s.now(), t);
    }

    #[test]
    fn cancel_skips_event() {
        let mut s = Scheduler::new();
        let id = s.schedule_in(1.0, E::A);
        s.schedule_in(2.0, E::B);
        assert!(s.cancel(id));
        assert!(!s.cancel(id), "double cancel reports false");
        assert_eq!(s.pop().unwrap().1, E::B);
        assert!(s.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut s: Scheduler<E> = Scheduler::new();
        assert!(!s.cancel(EventId(42)));
    }

    #[test]
    fn len_accounts_for_cancellation() {
        let mut s = Scheduler::new();
        let a = s.schedule_in(1.0, E::A);
        s.schedule_in(2.0, E::B);
        assert_eq!(s.len(), 2);
        s.cancel(a);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut s = Scheduler::new();
        let a = s.schedule_in(1.0, E::A);
        s.schedule_in(2.0, E::B);
        s.cancel(a);
        assert_eq!(s.peek_time(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn cancel_after_fire_is_rejected_and_keeps_len_exact() {
        // Regression: cancelling an id that already fired used to insert a
        // tombstone into the cancelled set, making `len()` drift (and
        // underflow once the heap drained). It must be a no-op now.
        let mut s = Scheduler::new();
        let a = s.schedule_in(1.0, E::A);
        assert_eq!(s.pop().unwrap().1, E::A);
        assert!(!s.cancel(a), "cancel after fire must report false");
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.tombstones(), 0);
        // The queue stays fully usable afterwards.
        s.schedule_in(1.0, E::B);
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop().unwrap().1, E::B);
    }

    #[test]
    fn long_soak_of_cancel_then_pop_does_not_drift() {
        // Mimic the orchestrator's timeout pattern: schedule a guard, fire
        // the real event, then (too late) cancel the guard — thousands of
        // times, with some cancels landing before the pop and some after.
        let mut s = Scheduler::new();
        for round in 0..5_000u64 {
            let guard = s.schedule_in(1.0, E::A);
            let real = s.schedule_in(0.5, E::B);
            if round % 2 == 0 {
                // Timely cancel: guard never fires.
                assert!(s.cancel(guard));
                assert_eq!(s.pop().unwrap().1, E::B);
            } else {
                // Late cancel: both fire, then both cancels are stale.
                assert_eq!(s.pop().unwrap().1, E::B);
                assert_eq!(s.pop().unwrap().1, E::A);
                assert!(!s.cancel(guard));
                assert!(!s.cancel(real));
            }
            assert_eq!(s.len(), 0, "len drifted at round {round}");
            assert!(s.tombstones() <= 1, "tombstones grew at round {round}");
        }
        assert!(s.pop().is_none());
        assert_eq!(s.tombstones(), 0, "drained heap leaves no tombstones");
    }

    #[test]
    fn peek_matches_next_pop() {
        let mut s = Scheduler::new();
        s.schedule_in(2.0, E::B);
        let a = s.schedule_in(1.0, E::A);
        s.cancel(a);
        let (t, e) = {
            let (t, e) = s.peek().expect("live event");
            (t, *e)
        };
        assert_eq!((t, e), (SimTime::from_secs(2.0), E::B));
        assert_eq!(s.pop().unwrap(), (SimTime::from_secs(2.0), E::B));
        assert!(s.peek().is_none());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_in(5.0, E::A);
        s.pop();
        s.schedule_at(SimTime::from_secs(1.0), E::B);
    }

    #[test]
    fn negative_delay_clamps_to_now() {
        let mut s = Scheduler::new();
        s.schedule_in(-3.0, E::A);
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::ZERO);
    }

    #[test]
    fn run_until_empty_drains_and_allows_rescheduling() {
        let mut s = Scheduler::new();
        s.schedule_in(1.0, 3u32);
        let mut fired = Vec::new();
        let end = run_until_empty(&mut s, &mut fired, |fired, t, remaining, s| {
            fired.push(t.as_secs());
            if remaining > 0 {
                s.schedule_in(1.0, remaining - 1);
            }
            true
        });
        assert_eq!(fired, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(end, SimTime::from_secs(4.0));
    }

    #[test]
    fn run_until_empty_stops_on_false() {
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.schedule_in(i as f64, i);
        }
        let mut count = 0usize;
        run_until_empty(&mut s, &mut count, |count, _, _, _| {
            *count += 1;
            *count < 3
        });
        assert_eq!(count, 3);
        assert_eq!(s.len(), 7);
    }
}
