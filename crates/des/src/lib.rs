//! Deterministic discrete-event simulation (DES) engine.
//!
//! The adaptive framework of the paper runs for 20–38 wall-clock hours per
//! experiment. To reproduce every figure in seconds, the closed loop
//! (simulation steps, parallel I/O, frame transfers, decision epochs,
//! restarts, stalls) is advanced on a *virtual clock*: this crate provides
//! the clock ([`SimTime`]), the event queue ([`Scheduler`]), and a small
//! time-series recorder ([`Series`]) used to capture the figure data.
//!
//! Determinism: events scheduled for the same instant are delivered in
//! scheduling order (a monotone sequence number breaks ties), so a run is a
//! pure function of its inputs — a property the integration tests rely on.
//!
//! # Example
//! ```
//! use des::{Scheduler, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut sched = Scheduler::new();
//! sched.schedule_in(1.0, Ev::Ping);
//! sched.schedule_in(2.0, Ev::Pong);
//! let mut seen = Vec::new();
//! while let Some((t, e)) = sched.pop() {
//!     seen.push((t.as_secs(), e));
//! }
//! assert_eq!(seen.len(), 2);
//! assert_eq!(seen[0].1, Ev::Ping);
//! ```

mod series;
mod time;

pub use series::{Series, SeriesSet};
pub use time::SimTime;

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    /// Reversed so that the `BinaryHeap` (a max-heap) pops the *earliest*
    /// event; ties broken by scheduling order for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of timed events with a virtual clock.
///
/// `pop` advances the clock to the popped event's timestamp. Time never
/// moves backwards: scheduling in the past panics (it would silently
/// corrupt causality in the orchestrator).
pub struct Scheduler<E> {
    heap: BinaryHeap<Scheduled<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Create an empty scheduler with the clock at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current virtual time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `event` at absolute time `t`.
    ///
    /// # Panics
    /// If `t` is earlier than the current clock.
    pub fn schedule_at(&mut self, t: SimTime, event: E) -> EventId {
        assert!(
            t >= self.now,
            "cannot schedule into the past: t={:?} now={:?}",
            t,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: t,
            seq,
            event,
        });
        EventId(seq)
    }

    /// Schedule `event` `dt` seconds from now. Non-finite or negative `dt`
    /// is clamped to 0.
    pub fn schedule_in(&mut self, dt: f64, event: E) -> EventId {
        let dt = if dt.is_finite() && dt > 0.0 { dt } else { 0.0 };
        self.schedule_at(self.now + dt, event)
    }

    /// Cancel a previously scheduled event. Returns `false` when the event
    /// already fired (or was already cancelled, or never existed).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        // Lazy cancellation: record the id; skip it when popped. Ids of
        // already-fired events are never reused, so a stale id inserts a
        // tombstone that can never match — harmless, bounded by next_seq.
        self.cancelled.insert(id.0)
    }

    /// Pop the earliest live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(s) = self.heap.pop() {
            if self.cancelled.remove(&s.seq) {
                continue;
            }
            self.now = s.time;
            return Some((s.time, s.event));
        }
        None
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop stale cancelled entries off the top first.
        while let Some(s) = self.heap.peek() {
            if self.cancelled.contains(&s.seq) {
                let s = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&s.seq);
            } else {
                return Some(s.time);
            }
        }
        None
    }
}

/// Drive a world to completion: pop events and hand them to `handler`
/// until the queue drains or `handler` returns `false` (stop requested).
///
/// Returns the final virtual time.
pub fn run_until_empty<E, W>(
    sched: &mut Scheduler<E>,
    world: &mut W,
    mut handler: impl FnMut(&mut W, SimTime, E, &mut Scheduler<E>) -> bool,
) -> SimTime {
    while let Some((t, e)) = sched.pop() {
        if !handler(world, t, e, sched) {
            break;
        }
    }
    sched.now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum E {
        A,
        B,
        C,
    }

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_in(3.0, E::C);
        s.schedule_in(1.0, E::A);
        s.schedule_in(2.0, E::B);
        assert_eq!(s.pop().unwrap().1, E::A);
        assert_eq!(s.pop().unwrap().1, E::B);
        assert_eq!(s.pop().unwrap().1, E::C);
        assert!(s.pop().is_none());
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut s = Scheduler::new();
        s.schedule_in(5.0, E::B);
        s.schedule_in(5.0, E::A);
        s.schedule_in(5.0, E::C);
        let order: Vec<E> = std::iter::from_fn(|| s.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![E::B, E::A, E::C]);
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut s = Scheduler::new();
        s.schedule_in(2.5, E::A);
        assert_eq!(s.now(), SimTime::ZERO);
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(2.5));
        assert_eq!(s.now(), t);
    }

    #[test]
    fn cancel_skips_event() {
        let mut s = Scheduler::new();
        let id = s.schedule_in(1.0, E::A);
        s.schedule_in(2.0, E::B);
        assert!(s.cancel(id));
        assert!(!s.cancel(id), "double cancel reports false");
        assert_eq!(s.pop().unwrap().1, E::B);
        assert!(s.is_empty());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut s: Scheduler<E> = Scheduler::new();
        assert!(!s.cancel(EventId(42)));
    }

    #[test]
    fn len_accounts_for_cancellation() {
        let mut s = Scheduler::new();
        let a = s.schedule_in(1.0, E::A);
        s.schedule_in(2.0, E::B);
        assert_eq!(s.len(), 2);
        s.cancel(a);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut s = Scheduler::new();
        let a = s.schedule_in(1.0, E::A);
        s.schedule_in(2.0, E::B);
        s.cancel(a);
        assert_eq!(s.peek_time(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_in(5.0, E::A);
        s.pop();
        s.schedule_at(SimTime::from_secs(1.0), E::B);
    }

    #[test]
    fn negative_delay_clamps_to_now() {
        let mut s = Scheduler::new();
        s.schedule_in(-3.0, E::A);
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, SimTime::ZERO);
    }

    #[test]
    fn run_until_empty_drains_and_allows_rescheduling() {
        let mut s = Scheduler::new();
        s.schedule_in(1.0, 3u32);
        let mut fired = Vec::new();
        let end = run_until_empty(&mut s, &mut fired, |fired, t, remaining, s| {
            fired.push(t.as_secs());
            if remaining > 0 {
                s.schedule_in(1.0, remaining - 1);
            }
            true
        });
        assert_eq!(fired, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(end, SimTime::from_secs(4.0));
    }

    #[test]
    fn run_until_empty_stops_on_false() {
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.schedule_in(i as f64, i);
        }
        let mut count = 0usize;
        run_until_empty(&mut s, &mut count, |count, _, _, _| {
            *count += 1;
            *count < 3
        });
        assert_eq!(count, 3);
        assert_eq!(s.len(), 7);
    }
}
