//! Time-series recording for experiment figures.
//!
//! Each figure in the paper plots one or more quantities against wall-clock
//! time (simulated time reached, free-disk %, visualization progress,
//! processor count, output interval). [`Series`] captures one such curve;
//! [`SeriesSet`] groups the curves of one experiment run and renders them to
//! CSV for the figure harnesses.

use crate::SimTime;
use std::fmt::Write as _;

/// One named curve: `(wall-clock seconds, value)` samples in record order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Series {
    /// Curve label, used as a CSV column header.
    pub name: String,
    /// Samples in the order they were recorded (time is non-decreasing when
    /// recorded from a DES run, but this is not enforced here).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// New empty series with the given label.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a sample at virtual time `t`.
    pub fn record(&mut self, t: SimTime, value: f64) {
        self.points.push((t.as_secs(), value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Last recorded value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Minimum recorded value (NaN-free by construction of the recorders).
    pub fn min_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Maximum recorded value.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Value at time `t` by step interpolation (last sample at or before
    /// `t`); `None` before the first sample.
    pub fn value_at(&self, t: f64) -> Option<f64> {
        self.points
            .iter()
            .take_while(|&&(pt, _)| pt <= t)
            .last()
            .map(|&(_, v)| v)
    }

    /// True when the recorded values never decrease over record order.
    pub fn is_monotone_non_decreasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1)
    }
}

/// A group of series from one experiment run.
#[derive(Debug, Clone, Default)]
pub struct SeriesSet {
    series: Vec<Series>,
}

impl SeriesSet {
    /// New empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a series (moves it into the set).
    pub fn push(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Look up a series by name.
    pub fn get(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// All series in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Series> {
        self.series.iter()
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when the set holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Render as long-format CSV: `series,wall_secs,value` rows, one per
    /// sample. Long format keeps irregularly-sampled curves lossless.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,wall_secs,value\n");
        for s in &self.series {
            for &(t, v) in &s.points {
                // Writing to a String cannot fail.
                let _ = writeln!(out, "{},{t},{v}", s.name);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn record_and_query() {
        let mut s = Series::new("disk");
        s.record(t(0.0), 100.0);
        s.record(t(10.0), 80.0);
        s.record(t(20.0), 95.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.last_value(), Some(95.0));
        assert_eq!(s.min_value(), Some(80.0));
        assert_eq!(s.max_value(), Some(100.0));
    }

    #[test]
    fn value_at_is_step_interpolation() {
        let mut s = Series::new("x");
        s.record(t(0.0), 1.0);
        s.record(t(10.0), 2.0);
        assert_eq!(s.value_at(-1.0), None);
        assert_eq!(s.value_at(0.0), Some(1.0));
        assert_eq!(s.value_at(5.0), Some(1.0));
        assert_eq!(s.value_at(10.0), Some(2.0));
        assert_eq!(s.value_at(100.0), Some(2.0));
    }

    #[test]
    fn monotonicity_check() {
        let mut s = Series::new("prog");
        s.record(t(0.0), 1.0);
        s.record(t(1.0), 1.0);
        s.record(t(2.0), 3.0);
        assert!(s.is_monotone_non_decreasing());
        s.record(t(3.0), 2.0);
        assert!(!s.is_monotone_non_decreasing());
    }

    #[test]
    fn empty_series_queries() {
        let s = Series::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.last_value(), None);
        assert_eq!(s.min_value(), None);
        assert_eq!(s.max_value(), None);
        assert_eq!(s.value_at(0.0), None);
        assert!(s.is_monotone_non_decreasing());
    }

    #[test]
    fn csv_long_format() {
        let mut set = SeriesSet::new();
        let mut a = Series::new("a");
        a.record(t(1.0), 2.0);
        set.push(a);
        let mut b = Series::new("b");
        b.record(t(3.0), 4.0);
        set.push(b);
        let csv = set.to_csv();
        assert_eq!(csv, "series,wall_secs,value\na,1,2\nb,3,4\n");
        assert_eq!(set.len(), 2);
        assert!(set.get("a").is_some());
        assert!(set.get("c").is_none());
    }
}
