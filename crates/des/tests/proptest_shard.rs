//! Property tests for the sharded DES: under any random event workload
//! and any shard/worker count, the parallel pool produces exactly the
//! trace of a single-threaded reference that merges the shard clocks in
//! `(time, shard)` order — same timestamps, same tie-break order, per
//! shard and across shards.

use des::{run_shards, ShardClock, ShardPoll, ShardTask, SimTime};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// One workload event. Initial events are drawn by proptest; executing
/// one schedules `children` derived follow-ups (children of children are
/// none, so every program terminates).
#[derive(Debug, Clone, Copy)]
struct Ev {
    tag: u64,
    shared: bool,
    children: u8,
}

fn child_of(tag: u64, k: u8) -> Ev {
    let t = tag
        .wrapping_mul(6364136223846793005)
        .wrapping_add(k as u64 + 1);
    Ev {
        tag: t,
        shared: t.is_multiple_of(3),
        children: 0,
    }
}

fn child_delay(tag: u64) -> f64 {
    ((tag % 97) as f64) * 0.25 + 0.125
}

type LocalTrace = Vec<(u64, u64)>; // (time bits, tag) in execution order
type SharedTrace = Vec<(u64, usize, u64)>; // (time bits, shard, tag)

/// A shard program over one [`ShardClock`], recording everything it
/// executes; shared-class events also land on the fleet-wide trace.
struct Prog {
    clock: ShardClock<Ev>,
    local: LocalTrace,
    shared: Arc<Mutex<SharedTrace>>,
}

impl Prog {
    fn new(shard: usize, initial: &[(f64, bool, u8)], shared: Arc<Mutex<SharedTrace>>) -> Self {
        let mut clock = ShardClock::new(shard);
        for (i, &(delay, is_shared, children)) in initial.iter().enumerate() {
            clock.schedule_in(
                delay,
                Ev {
                    tag: (shard as u64) * 1_000_000 + i as u64,
                    shared: is_shared,
                    children: children % 3,
                },
            );
        }
        Prog {
            clock,
            local: Vec::new(),
            shared,
        }
    }

    fn exec(&mut self) {
        let Some((t, ev)) = self.clock.pop() else {
            return;
        };
        self.local.push((t.as_secs().to_bits(), ev.tag));
        if ev.shared {
            self.shared
                .lock()
                .unwrap()
                .push((t.as_secs().to_bits(), self.clock.shard(), ev.tag));
        }
        for k in 0..ev.children {
            let c = child_of(ev.tag, k);
            self.clock.schedule_in(child_delay(c.tag), c);
        }
    }
}

impl ShardTask for Prog {
    fn poll(&mut self) -> ShardPoll {
        match self.clock.peek() {
            None => ShardPoll::Done,
            Some((t, ev)) => {
                if ev.shared {
                    ShardPoll::Gated { time: t }
                } else {
                    ShardPoll::Local { time: t }
                }
            }
        }
    }

    fn step(&mut self) {
        self.exec();
    }
}

/// Single-threaded reference: run the same shard programs by always
/// executing the lexicographically `(time, shard)`-minimal head — the
/// total order the conservative horizon enforces for shared events.
fn reference(workload: &[Vec<(f64, bool, u8)>]) -> (Vec<LocalTrace>, SharedTrace) {
    let shared = Arc::new(Mutex::new(Vec::new()));
    let mut progs: Vec<Prog> = workload
        .iter()
        .enumerate()
        .map(|(i, w)| Prog::new(i, w, Arc::clone(&shared)))
        .collect();
    loop {
        let mut best: Option<(SimTime, usize)> = None;
        for (i, p) in progs.iter_mut().enumerate() {
            if let Some(t) = p.clock.peek_time() {
                if best.is_none_or(|(bt, bi)| (t, i) < (bt, bi)) {
                    best = Some((t, i));
                }
            }
        }
        match best {
            Some((_, i)) => progs[i].exec(),
            None => break,
        }
    }
    let locals = progs.into_iter().map(|p| p.local).collect();
    let shared = Arc::try_unwrap(shared).unwrap().into_inner().unwrap();
    (locals, shared)
}

fn arb_workload() -> impl Strategy<Value = Vec<Vec<(f64, bool, u8)>>> {
    prop::collection::vec(
        prop::collection::vec((0.0f64..50.0, any::<bool>(), any::<u8>()), 0..20),
        1..=8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merged traces from the worker pool equal the single-threaded
    /// reference at every worker count: identical per-shard event order
    /// and timestamps, and an identical global order of shared events.
    #[test]
    fn sharded_trace_matches_single_threaded_reference(workload in arb_workload()) {
        let (ref_locals, ref_shared) = reference(&workload);
        for workers in [1usize, 3, 8] {
            let shared = Arc::new(Mutex::new(Vec::new()));
            let progs: Vec<Prog> = workload
                .iter()
                .enumerate()
                .map(|(i, w)| Prog::new(i, w, Arc::clone(&shared)))
                .collect();
            let done = run_shards(progs, workers);
            let locals: Vec<LocalTrace> = done.into_iter().map(|p| p.local).collect();
            prop_assert_eq!(
                &locals, &ref_locals,
                "per-shard traces diverged at {} workers", workers
            );
            let shared = shared.lock().unwrap().clone();
            prop_assert_eq!(
                &shared, &ref_shared,
                "shared-event order diverged at {} workers", workers
            );
        }
    }
}
