//! Property tests for the event engine: any interleaving of schedules and
//! cancellations pops in non-decreasing time order, with scheduling order
//! breaking ties, and the length accounting stays exact.

use des::Scheduler;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Schedule an event `delay` seconds after now.
    Schedule(f64),
    /// Cancel the k-th not-yet-cancelled id we hold (if any).
    Cancel(usize),
    /// Pop one event.
    Pop,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0.0f64..100.0).prop_map(Op::Schedule),
            (0usize..8).prop_map(Op::Cancel),
            Just(Op::Pop),
        ],
        0..300,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pops_are_time_ordered_with_fifo_ties(ops in arb_ops()) {
        let mut s: Scheduler<u64> = Scheduler::new();
        let mut live: Vec<(des::EventId, u64)> = Vec::new();
        let mut cancelled: Vec<u64> = Vec::new();
        let mut seq = 0u64;
        let mut last_pop: Option<(f64, u64)> = None;
        let mut scheduled_time = std::collections::HashMap::new();

        for op in ops {
            match op {
                Op::Schedule(delay) => {
                    let id = s.schedule_in(delay, seq);
                    scheduled_time.insert(seq, s.now().as_secs() + delay.max(0.0));
                    live.push((id, seq));
                    seq += 1;
                }
                Op::Cancel(k) => {
                    if !live.is_empty() {
                        let (id, tag) = live.remove(k % live.len());
                        prop_assert!(s.cancel(id), "live event cancels");
                        cancelled.push(tag);
                    }
                }
                Op::Pop => {
                    let before = s.len();
                    match s.pop() {
                        Some((t, tag)) => {
                            prop_assert!(!cancelled.contains(&tag), "cancelled events never fire");
                            // Time order.
                            if let Some((pt, ptag)) = last_pop {
                                prop_assert!(t.as_secs() >= pt, "time went backwards");
                                if (t.as_secs() - pt).abs() < f64::EPSILON
                                    && scheduled_time[&tag] == scheduled_time[&ptag]
                                {
                                    prop_assert!(tag > ptag, "FIFO tie-break violated");
                                }
                            }
                            // Popped tag was live.
                            let idx = live.iter().position(|&(_, x)| x == tag);
                            prop_assert!(idx.is_some(), "popped an unknown event");
                            live.remove(idx.expect("checked"));
                            prop_assert_eq!(s.len(), before - 1);
                            last_pop = Some((t.as_secs(), tag));
                        }
                        None => prop_assert_eq!(before, 0, "pop on non-empty returned None"),
                    }
                }
            }
            prop_assert_eq!(s.len(), live.len(), "length accounting drifted");
        }
    }
}
