//! Property tests: fits recover noise-free laws, inverse queries are
//! consistent with forward queries, and the solver never panics on valid
//! sample sets.

use perfmodel::{ProcTable, Sample, ScalingFit};
use proptest::prelude::*;

fn arb_law() -> impl Strategy<Value = ScalingFit> {
    (
        0.01f64..1.0,  // c0 overhead
        1e-7f64..1e-5, // c1 work
        0.0f64..1e-3,  // c2 halo
        0.0f64..0.05,  // c3 collectives
    )
        .prop_map(|(c0, c1, c2, c3)| ScalingFit::from_coeffs([c0, c1, c2, c3]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn noise_free_fit_matches_truth_at_unseen_procs(law in arb_law(), work in 1e5f64..1e7) {
        let procs = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];
        let samples: Vec<Sample> = procs
            .iter()
            .map(|&p| Sample { procs: p, work, time: law.predict(p, work) })
            .collect();
        let fit = ScalingFit::fit(&samples).unwrap();
        for p in [3.0, 6.0, 12.0, 48.0, 96.0] {
            let truth = law.predict(p, work);
            let got = fit.predict(p, work);
            let rel = (got - truth).abs() / truth;
            prop_assert!(rel < 0.01, "p={p}: truth={truth} got={got}");
        }
    }

    #[test]
    fn table_inverse_queries_are_consistent(law in arb_law(), work in 1e5f64..1e7) {
        let allowed: Vec<usize> = vec![1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 90];
        let table = ProcTable::from_fit(&law, work, &allowed);

        // closest: the returned entry is truly the (or a) closest.
        for target in [0.0, table.min_time(), table.max_time(), 1.0, 5.0] {
            let (p, t) = table.procs_closest_to_time(target);
            prop_assert_eq!(table.time_for(p), Some(t));
            for &(_, t2) in table.entries() {
                prop_assert!((t - target).abs() <= (t2 - target).abs() + 1e-12);
            }
        }

        // fewest-within: result meets the deadline and no smaller count does.
        let mid = (table.min_time() + table.max_time()) / 2.0;
        if let Some((p, t)) = table.fewest_procs_within_time(mid) {
            prop_assert!(t <= mid + 1e-9);
            for &(p2, t2) in table.entries() {
                if p2 < p {
                    prop_assert!(t2 > mid, "smaller count {p2} also met the deadline");
                }
            }
        }

        // min_time is a true lower bound over entries.
        for &(_, t) in table.entries() {
            prop_assert!(table.min_time() <= t + 1e-12);
            prop_assert!(table.max_time() >= t - 1e-12);
        }
    }

    #[test]
    fn fit_never_panics_on_positive_samples(
        raw in prop::collection::vec((1.0f64..128.0, 1e4f64..1e7, 1e-3f64..100.0), 4..12)
    ) {
        let samples: Vec<Sample> = raw
            .into_iter()
            .map(|(procs, work, time)| Sample { procs, work, time })
            .collect();
        // Arbitrary (inconsistent) samples: must return Ok or a clean error,
        // and any produced fit must predict positive times.
        if let Ok(fit) = ScalingFit::fit(&samples) {
            for p in [1.0, 7.0, 100.0] {
                prop_assert!(fit.predict(p, 1e6) > 0.0);
            }
        }
    }
}
