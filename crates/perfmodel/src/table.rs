//! Discrete processor table: the decision algorithms' view of the machine.
//!
//! Clusters admit only certain processor counts (WRF requires each MPI rank
//! to own at least 6×6 parent grid points, and the scheduler allocates
//! whole nodes), so the continuous scaling law is sampled onto the allowed
//! counts once per (cluster, resolution) and queried discretely.

use crate::fit::ScalingFit;

/// Predicted seconds-per-step for every allowed processor count, sorted by
/// processor count ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcTable {
    /// `(processor count, seconds per simulation step)` sorted by count.
    entries: Vec<(usize, f64)>,
}

impl ProcTable {
    /// Build from a fitted law, a workload, and the allowed counts.
    ///
    /// # Panics
    /// If `allowed` is empty (a cluster with no valid configuration cannot
    /// run the mission at all — callers must catch that earlier).
    pub fn from_fit(fit: &ScalingFit, work: f64, allowed: &[usize]) -> Self {
        assert!(!allowed.is_empty(), "no allowed processor counts");
        let mut entries: Vec<(usize, f64)> = allowed
            .iter()
            .map(|&p| (p, fit.predict(p as f64, work)))
            .collect();
        entries.sort_unstable_by_key(|&(p, _)| p);
        entries.dedup_by_key(|&mut (p, _)| p);
        ProcTable { entries }
    }

    /// Build directly from measured `(procs, time)` pairs.
    pub fn from_entries(mut entries: Vec<(usize, f64)>) -> Self {
        assert!(!entries.is_empty(), "no entries");
        assert!(
            entries
                .iter()
                .all(|&(p, t)| p > 0 && t > 0.0 && t.is_finite()),
            "entries must have positive procs and finite positive times"
        );
        entries.sort_unstable_by_key(|&(p, _)| p);
        entries.dedup_by_key(|&mut (p, _)| p);
        ProcTable { entries }
    }

    /// All `(procs, time)` entries, processor count ascending.
    pub fn entries(&self) -> &[(usize, f64)] {
        &self.entries
    }

    /// Predicted time on exactly `procs` processors; `None` when that count
    /// is not an allowed configuration.
    pub fn time_for(&self, procs: usize) -> Option<f64> {
        self.entries
            .iter()
            .find(|&&(p, _)| p == procs)
            .map(|&(_, t)| t)
    }

    /// Fastest configuration: `(procs, time)` with minimal time; ties go to
    /// fewer processors.
    pub fn fastest(&self) -> (usize, f64) {
        *self
            .entries
            .iter()
            .min_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("finite times")
                    .then(a.0.cmp(&b.0))
            })
            .expect("non-empty by construction")
    }

    /// Slowest configuration: `(procs, time)` with maximal time.
    pub fn slowest(&self) -> (usize, f64) {
        *self
            .entries
            .iter()
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("finite times")
                    .then(b.0.cmp(&a.0))
            })
            .expect("non-empty by construction")
    }

    /// Minimum achievable seconds per step (the LP's `TLB`).
    pub fn min_time(&self) -> f64 {
        self.fastest().1
    }

    /// Maximum seconds per step across allowed configurations.
    pub fn max_time(&self) -> f64 {
        self.slowest().1
    }

    /// The configuration whose predicted time is closest to `target`
    /// seconds per step (the greedy algorithm's inverse query). Ties go to
    /// more processors (prefer faster simulation at equal distance).
    pub fn procs_closest_to_time(&self, target: f64) -> (usize, f64) {
        *self
            .entries
            .iter()
            .min_by(|a, b| {
                let da = (a.1 - target).abs();
                let db = (b.1 - target).abs();
                da.partial_cmp(&db)
                    .expect("finite times")
                    .then(b.0.cmp(&a.0))
            })
            .expect("non-empty by construction")
    }

    /// Fewest processors still achieving at most `target` seconds per step
    /// (the optimization algorithm's inverse query: the LP returns the
    /// minimal feasible `t`; any configuration meeting it works, and fewer
    /// processors leave room for other jobs). `None` when no configuration
    /// is fast enough.
    pub fn fewest_procs_within_time(&self, target: f64) -> Option<(usize, f64)> {
        self.entries
            .iter()
            .filter(|&&(_, t)| t <= target + 1e-12)
            .min_by_key(|&&(p, _)| p)
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::ScalingFit;

    fn table() -> ProcTable {
        // Strictly decreasing times: 1→10s, 2→6s, 4→4s, 8→3s, 16→2.5s.
        ProcTable::from_entries(vec![(1, 10.0), (2, 6.0), (4, 4.0), (8, 3.0), (16, 2.5)])
    }

    #[test]
    fn forward_query() {
        let t = table();
        assert_eq!(t.time_for(4), Some(4.0));
        assert_eq!(t.time_for(5), None);
    }

    #[test]
    fn extremes() {
        let t = table();
        assert_eq!(t.fastest(), (16, 2.5));
        assert_eq!(t.slowest(), (1, 10.0));
        assert_eq!(t.min_time(), 2.5);
        assert_eq!(t.max_time(), 10.0);
    }

    #[test]
    fn closest_inverse_query() {
        let t = table();
        assert_eq!(t.procs_closest_to_time(6.1), (2, 6.0));
        assert_eq!(t.procs_closest_to_time(100.0), (1, 10.0));
        assert_eq!(t.procs_closest_to_time(0.0), (16, 2.5));
        // Exactly between 4.0 and 3.0 → tie → more processors.
        assert_eq!(t.procs_closest_to_time(3.5), (8, 3.0));
    }

    #[test]
    fn fewest_within_inverse_query() {
        let t = table();
        assert_eq!(t.fewest_procs_within_time(4.0), Some((4, 4.0)));
        assert_eq!(t.fewest_procs_within_time(5.0), Some((4, 4.0)));
        assert_eq!(t.fewest_procs_within_time(2.0), None);
        assert_eq!(t.fewest_procs_within_time(100.0), Some((1, 10.0)));
    }

    #[test]
    fn from_fit_respects_allowed_counts() {
        let fit = ScalingFit::from_coeffs([0.1, 1e-5, 0.0, 0.0]);
        let t = ProcTable::from_fit(&fit, 1e6, &[48, 12, 24, 12]);
        let procs: Vec<usize> = t.entries().iter().map(|&(p, _)| p).collect();
        assert_eq!(procs, vec![12, 24, 48]);
        // More processors → strictly less time for this law.
        assert!(t.time_for(48).unwrap() < t.time_for(12).unwrap());
    }

    #[test]
    fn non_monotone_table_still_answers_sensibly() {
        // Communication-bound tail: time rises again past 8 procs.
        let t = ProcTable::from_entries(vec![(2, 5.0), (4, 3.0), (8, 2.0), (16, 2.6)]);
        assert_eq!(t.fastest(), (8, 2.0));
        assert_eq!(t.fewest_procs_within_time(2.6), Some((8, 2.0)));
    }

    #[test]
    #[should_panic(expected = "no entries")]
    fn empty_entries_panic() {
        ProcTable::from_entries(vec![]);
    }
}
