//! Scaling-law fitting from profiled samples.

use crate::linalg::{least_squares, LinalgError};
use serde::{Deserialize, Serialize};

/// One profiling observation: a sample run of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Processor count of the run.
    pub procs: f64,
    /// Workload measure (e.g. grid points × substeps per output step).
    pub work: f64,
    /// Observed seconds of execution per simulation step.
    pub time: f64,
}

/// Why a fit could not be produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// Fewer samples than coefficients.
    NotEnoughSamples {
        /// Samples provided.
        got: usize,
        /// Samples needed.
        need: usize,
    },
    /// A sample had a non-positive processor count, workload, or time.
    InvalidSample,
    /// The normal equations were singular (degenerate sample design).
    Singular,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::NotEnoughSamples { got, need } => {
                write!(f, "need at least {need} samples, got {got}")
            }
            FitError::InvalidSample => write!(f, "samples must have positive procs/work/time"),
            FitError::Singular => write!(f, "sample design is degenerate; vary procs and work"),
        }
    }
}

impl std::error::Error for FitError {}

impl From<LinalgError> for FitError {
    fn from(_: LinalgError) -> Self {
        FitError::Singular
    }
}

/// A fitted scaling law `t(p, W) = c0 + c1·(W/p) + c2·√(W/p) + c3·log2 p`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingFit {
    coeffs: [f64; 4],
    r2: f64,
}

/// Basis expansion of one `(procs, work)` point.
fn basis(procs: f64, work: f64) -> [f64; 4] {
    let per = work / procs;
    [1.0, per, per.sqrt(), procs.log2()]
}

impl ScalingFit {
    /// Number of samples required to identify the model.
    pub const MIN_SAMPLES: usize = 4;

    /// Fit the law to profiled samples by linear least squares.
    pub fn fit(samples: &[Sample]) -> Result<Self, FitError> {
        if samples.len() < Self::MIN_SAMPLES {
            return Err(FitError::NotEnoughSamples {
                got: samples.len(),
                need: Self::MIN_SAMPLES,
            });
        }
        if samples
            .iter()
            .any(|s| !(s.procs > 0.0 && s.work > 0.0 && s.time > 0.0))
        {
            return Err(FitError::InvalidSample);
        }
        // A basis column that is identically zero across the samples (e.g.
        // log2 p when every run used one processor — the honest situation
        // on a single-core profiling host) would make the normal equations
        // singular even though the remaining columns identify a perfectly
        // good law. Drop such columns from the solve and pin their
        // coefficients to zero: the fit then simply claims nothing about
        // the unobserved term.
        let full: Vec<[f64; 4]> = samples.iter().map(|s| basis(s.procs, s.work)).collect();
        let active: Vec<usize> = (0..4)
            .filter(|&c| full.iter().any(|row| row[c] != 0.0))
            .collect();
        let design: Vec<Vec<f64>> = full
            .iter()
            .map(|row| active.iter().map(|&c| row[c]).collect())
            .collect();
        let y: Vec<f64> = samples.iter().map(|s| s.time).collect();
        let beta = least_squares(&design, &y)?;
        let mut coeffs = [0.0; 4];
        for (&c, &b) in active.iter().zip(&beta) {
            coeffs[c] = b;
        }

        // Coefficient of determination on the training samples.
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let ss_tot: f64 = y.iter().map(|v| (v - mean).powi(2)).sum();
        let ss_res: f64 = samples
            .iter()
            .map(|s| {
                let b = basis(s.procs, s.work);
                let pred: f64 = b.iter().zip(&coeffs).map(|(x, c)| x * c).sum();
                (pred - s.time).powi(2)
            })
            .sum();
        let r2 = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };
        Ok(ScalingFit { coeffs, r2 })
    }

    /// Construct directly from known coefficients
    /// `[c0, c1 (work), c2 (halo), c3 (collectives)]` — used for the
    /// synthetic cluster models whose ground truth *is* the law.
    pub fn from_coeffs(coeffs: [f64; 4]) -> Self {
        ScalingFit { coeffs, r2: 1.0 }
    }

    /// Fitted coefficients `[c0, c1, c2, c3]`.
    pub fn coeffs(&self) -> [f64; 4] {
        self.coeffs
    }

    /// R² on the training samples (1.0 for exact fits).
    pub fn r_squared(&self) -> f64 {
        self.r2
    }

    /// Stable identity of this fit: an FNV-1a hash over the coefficient
    /// bit patterns. Two fits with identical coefficients share a
    /// fingerprint; any re-fit that moves a coefficient by even one ULP
    /// gets a new one. Consumers that cache anything derived from the law
    /// (processor tables, ∂t/∂p decisions) must key those caches by this
    /// value so a re-fit invalidates them.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for c in self.coeffs {
            for byte in c.to_bits().to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        h
    }

    /// Predicted seconds per step for `procs` processors and workload
    /// `work`. Clamped below at a microsecond: the law can dip negative
    /// when extrapolated far outside the sampled range, and a non-positive
    /// step time would corrupt every downstream rate computation.
    pub fn predict(&self, procs: f64, work: f64) -> f64 {
        assert!(procs > 0.0 && work > 0.0, "predict needs positive inputs");
        let b = basis(procs, work);
        let t: f64 = b.iter().zip(&self.coeffs).map(|(x, c)| x * c).sum();
        t.max(1e-6)
    }

    /// Partial derivative ∂t/∂p of the (unclamped) law at fixed workload:
    ///
    /// ```text
    /// ∂t/∂p = −c1·W/p² − c2·√W/(2·p^1.5) + c3/(p·ln 2)
    /// ```
    ///
    /// The sign is the paper's adaptation premise in one number: negative
    /// means adding processors still speeds up a step (the work and halo
    /// terms dominate), positive means the collectives term has taken over
    /// and the law itself says to stop scaling out. The profiling binary
    /// reports this over the measured range after every re-fit.
    pub fn d_dt_d_procs(&self, procs: f64, work: f64) -> f64 {
        assert!(
            procs > 0.0 && work > 0.0,
            "derivative needs positive inputs"
        );
        let [_, c1, c2, c3] = self.coeffs;
        -c1 * work / (procs * procs) - c2 * work.sqrt() / (2.0 * procs.powf(1.5))
            + c3 / (procs * std::f64::consts::LN_2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> ScalingFit {
        // A plausible cluster: 0.05 s overhead, 2e-6 s per point,
        // 1e-4·√(W/p) halo, 0.01·log2 p collectives.
        ScalingFit::from_coeffs([0.05, 2e-6, 1e-4, 0.01])
    }

    fn samples_from_truth(truth: &ScalingFit, work: f64, procs: &[f64]) -> Vec<Sample> {
        procs
            .iter()
            .map(|&p| Sample {
                procs: p,
                work,
                time: truth.predict(p, work),
            })
            .collect()
    }

    #[test]
    fn exact_data_reproduces_predictions() {
        let truth = truth();
        let work = 1e6;
        let samples = samples_from_truth(&truth, work, &[1.0, 2.0, 4.0, 8.0, 16.0, 48.0]);
        let fit = ScalingFit::fit(&samples).unwrap();
        assert!(fit.r_squared() > 0.999, "r2 = {}", fit.r_squared());
        for p in [1.0, 3.0, 12.0, 48.0, 90.0] {
            let rel =
                (fit.predict(p, work) - truth.predict(p, work)).abs() / truth.predict(p, work);
            assert!(rel < 1e-3, "p={p}: rel error {rel}");
        }
    }

    #[test]
    fn extrapolates_across_workloads() {
        let truth = truth();
        // Profile at two workloads so W-dependence is identifiable.
        let mut samples = samples_from_truth(&truth, 1e6, &[1.0, 4.0, 16.0, 48.0]);
        samples.extend(samples_from_truth(&truth, 4e6, &[2.0, 8.0, 32.0]));
        let fit = ScalingFit::fit(&samples).unwrap();
        let rel = (fit.predict(24.0, 2.5e6) - truth.predict(24.0, 2.5e6)).abs()
            / truth.predict(24.0, 2.5e6);
        assert!(rel < 0.02, "rel error {rel}");
    }

    #[test]
    fn too_few_samples_rejected() {
        let truth = truth();
        let samples = samples_from_truth(&truth, 1e6, &[1.0, 2.0, 4.0]);
        assert!(matches!(
            ScalingFit::fit(&samples),
            Err(FitError::NotEnoughSamples { got: 3, need: 4 })
        ));
    }

    #[test]
    fn invalid_sample_rejected() {
        let mut samples = samples_from_truth(&truth(), 1e6, &[1.0, 2.0, 4.0, 8.0]);
        samples[0].time = 0.0;
        assert_eq!(ScalingFit::fit(&samples), Err(FitError::InvalidSample));
    }

    #[test]
    fn prediction_never_non_positive() {
        // Coefficients chosen to go negative for large p.
        let fit = ScalingFit::from_coeffs([-10.0, 0.0, 0.0, 0.0]);
        assert!(fit.predict(8.0, 1e6) > 0.0);
    }

    #[test]
    fn derivative_matches_finite_differences_and_flips_sign() {
        let truth = truth();
        let work = 1e6;
        for p in [1.0, 2.0, 5.5, 16.0, 100.0] {
            let h = 1e-5 * p;
            let fd = (truth.predict(p + h, work) - truth.predict(p - h, work)) / (2.0 * h);
            let an = truth.d_dt_d_procs(p, work);
            assert!(
                (fd - an).abs() <= 1e-6 * an.abs().max(1e-9),
                "p={p}: {fd} vs {an}"
            );
        }
        // Scaling regime: more procs → faster. Collectives regime: slower.
        assert!(truth.d_dt_d_procs(2.0, work) < 0.0);
        assert!(truth.d_dt_d_procs(1e4, work) > 0.0);
    }

    #[test]
    fn single_proc_design_fits_with_zero_collectives_coeff() {
        // Every sample at p=1 (a one-core profiling host): the log2 p
        // column is identically zero. The fit must still succeed, pin c3
        // to exactly zero, and nail the W-dependence.
        let truth = ScalingFit::from_coeffs([0.05, 2e-6, 1e-4, 0.0]);
        let samples: Vec<Sample> = [2.5e5, 5e5, 1e6, 2e6, 4e6]
            .iter()
            .map(|&w| Sample {
                procs: 1.0,
                work: w,
                time: truth.predict(1.0, w),
            })
            .collect();
        let fit = ScalingFit::fit(&samples).unwrap();
        assert_eq!(fit.coeffs()[3], 0.0, "unobserved term pinned to zero");
        assert!(fit.r_squared() > 0.999);
        let rel =
            (fit.predict(1.0, 1.5e6) - truth.predict(1.0, 1.5e6)).abs() / truth.predict(1.0, 1.5e6);
        assert!(rel < 1e-3, "rel error {rel}");
    }

    #[test]
    fn refit_changes_fingerprint_and_derivative_together() {
        // The stale-derivative hazard: a consumer caches ∂t/∂p (or
        // anything derived from it) from an old fit, the profiler re-fits,
        // and the cached value silently disagrees with the new law. The
        // fingerprint is the invalidation key: equal coefficients hash
        // equal, a re-fit hashes different, and the derivative read off
        // the *new* coefficients matches the new law's finite differences.
        let old = truth();
        let same = ScalingFit::from_coeffs(old.coeffs());
        assert_eq!(old.fingerprint(), same.fingerprint());

        let work = 1e6;
        let samples: Vec<Sample> = [1.0, 2.0, 4.0, 8.0, 16.0, 48.0]
            .iter()
            .map(|&p| Sample {
                procs: p,
                work,
                time: old.predict(p, work) * 1.37, // "hardware got slower"
            })
            .collect();
        let refit = ScalingFit::fit(&samples).unwrap();
        assert_ne!(old.fingerprint(), refit.fingerprint(), "re-fit re-keys");

        for p in [2.0, 8.0, 32.0] {
            let h = 1e-5 * p;
            let fd = (refit.predict(p + h, work) - refit.predict(p - h, work)) / (2.0 * h);
            let an = refit.d_dt_d_procs(p, work);
            assert!(
                (fd - an).abs() <= 1e-6 * an.abs().max(1e-9),
                "p={p}: derivative must come from the re-fit coefficients"
            );
            let stale = old.d_dt_d_procs(p, work);
            assert!(
                (an - stale).abs() > 1e-12,
                "p={p}: re-fit must move the derivative"
            );
        }
    }

    #[test]
    fn noisy_fit_stays_close() {
        let truth = truth();
        let work = 1e6;
        // Deterministic ±2% alternating "noise".
        let mut samples = samples_from_truth(
            &truth,
            work,
            &[1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0],
        );
        for (i, s) in samples.iter_mut().enumerate() {
            s.time *= if i % 2 == 0 { 1.02 } else { 0.98 };
        }
        let fit = ScalingFit::fit(&samples).unwrap();
        for p in [2.0, 8.0, 32.0] {
            let rel =
                (fit.predict(p, work) - truth.predict(p, work)).abs() / truth.predict(p, work);
            assert!(rel < 0.05, "p={p}: rel error {rel}");
        }
    }
}
