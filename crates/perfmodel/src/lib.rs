//! Performance modelling: scaling-law fits and time ↔ processor queries.
//!
//! The paper profiles WRF with sample runs "for different discrete number
//! of processors, spanning the available processor space and using
//! performance modeling or curve fitting tools (LAB Fit) to interpolate for
//! other number of processors". This crate is that tool: fit a parallel
//! scaling law to profiled `(processors, workload, seconds-per-step)`
//! samples by linear least squares, then answer the two queries the
//! decision algorithms need —
//!
//! - *forward*: predicted time per step on `p` processors, and
//! - *inverse*: which processor count realizes a target time per step.
//!
//! The scaling law is linear in its coefficients:
//!
//! ```text
//! t(p, W) = c0 + c1·(W/p) + c2·√(W/p) + c3·log2(p)
//! ```
//!
//! `c1` captures perfectly-parallel work, `c2` halo-exchange surface
//! communication, `c3` collective/reduction cost, `c0` fixed per-step
//! overhead. `W` is a workload measure (grid points × substeps); the same
//! fit then extrapolates across simulation resolutions.

mod fit;
mod linalg;
mod table;

pub use fit::{FitError, Sample, ScalingFit};
pub use linalg::{least_squares, solve_dense, LinalgError};
pub use table::ProcTable;
