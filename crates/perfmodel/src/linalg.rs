//! Small dense linear algebra: Gaussian elimination and least squares via
//! the normal equations. Systems here are tiny (4×4 for the scaling law),
//! so simplicity and determinism beat asymptotics.

/// Failure modes of the dense solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// Matrix is singular (or numerically so) — the model is unidentifiable
    /// from the given samples.
    Singular,
    /// Input dimensions are inconsistent.
    DimensionMismatch,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular => write!(f, "matrix is singular to working precision"),
            LinalgError::DimensionMismatch => write!(f, "inconsistent matrix dimensions"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Solve `A x = b` for square `A` (row-major, `n×n`) by Gaussian
/// elimination with partial pivoting. `A` and `b` are consumed as scratch.
pub fn solve_dense(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, LinalgError> {
    let n = b.len();
    if a.len() != n || a.iter().any(|row| row.len() != n) {
        return Err(LinalgError::DimensionMismatch);
    }
    for col in 0..n {
        // Partial pivot: largest magnitude in this column at or below the
        // diagonal.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite matrix entries")
            })
            .expect("non-empty range");
        if a[pivot_row][col].abs() < 1e-12 {
            return Err(LinalgError::Singular);
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        let piv = a[col][col];
        for row in (col + 1)..n {
            let factor = a[row][col] / piv;
            if factor == 0.0 {
                continue;
            }
            // Split the borrow: rows col and row are distinct (row > col).
            let (upper, lower) = a.split_at_mut(row);
            let src = &upper[col];
            let dst = &mut lower[0];
            for k in col..n {
                dst[k] -= factor * src[k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

/// Least squares `min ‖X β − y‖²` via the normal equations
/// `XᵀX β = Xᵀy`. `x` is the design matrix, one row per observation.
///
/// Adds a tiny ridge (1e-12 on the diagonal) so nearly-collinear designs —
/// common when all samples share one workload — stay solvable; the bias is
/// far below measurement noise.
pub fn least_squares(x: &[Vec<f64>], y: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let m = x.len();
    if m == 0 || m != y.len() {
        return Err(LinalgError::DimensionMismatch);
    }
    let n = x[0].len();
    if x.iter().any(|row| row.len() != n) {
        return Err(LinalgError::DimensionMismatch);
    }
    let mut xtx = vec![vec![0.0; n]; n];
    let mut xty = vec![0.0; n];
    for (row, &yi) in x.iter().zip(y) {
        for i in 0..n {
            xty[i] += row[i] * yi;
            for j in 0..n {
                xtx[i][j] += row[i] * row[j];
            }
        }
    }
    for (i, row) in xtx.iter_mut().enumerate() {
        row[i] += 1e-12;
    }
    solve_dense(xtx, xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_dense(a, vec![3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_general_3x3() {
        // Known system: x = [1, -2, 3].
        let a = vec![
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ];
        let b = vec![2.0 - 2.0 - 3.0, -3.0 + 2.0 + 6.0, -2.0 - 2.0 + 6.0];
        let x = solve_dense(a, b).unwrap();
        for (got, want) in x.iter().zip([1.0, -2.0, 3.0]) {
            assert!((got - want).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve_dense(a, vec![5.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12 && (x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn singular_rejected() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert_eq!(solve_dense(a, vec![1.0, 2.0]), Err(LinalgError::Singular));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        assert_eq!(
            solve_dense(vec![vec![1.0, 2.0]], vec![1.0]),
            Err(LinalgError::DimensionMismatch)
        );
        assert_eq!(
            least_squares(&[vec![1.0]], &[1.0, 2.0]),
            Err(LinalgError::DimensionMismatch)
        );
        assert_eq!(least_squares(&[], &[]), Err(LinalgError::DimensionMismatch));
    }

    #[test]
    fn least_squares_recovers_exact_line() {
        // y = 2 + 3 x observed exactly at 4 points.
        let xs = [0.0, 1.0, 2.0, 5.0];
        let design: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let y: Vec<f64> = xs.iter().map(|&x| 2.0 + 3.0 * x).collect();
        let beta = least_squares(&design, &y).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-6);
        assert!((beta[1] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn least_squares_minimizes_residual_on_overdetermined_noisy_data() {
        // y = 1 + 2x with symmetric noise; slope/intercept land between
        // the extremes and the residual beats small perturbations.
        let design = vec![
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
        ];
        let y = vec![1.1, 2.9, 5.1, 6.9];
        let beta = least_squares(&design, &y).unwrap();
        let rss = |b: &[f64]| -> f64 {
            design
                .iter()
                .zip(&y)
                .map(|(row, &yi)| {
                    let pred = row[0] * b[0] + row[1] * b[1];
                    (pred - yi).powi(2)
                })
                .sum()
        };
        let base = rss(&beta);
        for d in [-0.05, 0.05] {
            assert!(base <= rss(&[beta[0] + d, beta[1]]) + 1e-12);
            assert!(base <= rss(&[beta[0], beta[1] + d]) + 1e-12);
        }
    }
}
