//! Criterion benches for the dynamical core: one full integration step,
//! serial vs the persistent rank team, at each mission resolution. This
//! is the hot loop of the whole framework — the adaptation layer can only
//! trade simulation speed against visualization if a step actually gets
//! cheaper with more workers, so this bench is the ground truth behind
//! the perfmodel scaling law.
//!
//! The pooled entries are only faster than serial on a multi-core host;
//! the bench prints both regardless so a single-core CI run still catches
//! regressions in the per-step cost itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wrf::{Fields, KernelPath, ModelConfig, WorkerPool, WrfModel};

fn bench_step(c: &mut Criterion) {
    for resolution_km in [24.0, 16.0, 10.0] {
        let cfg = ModelConfig::aila_default().with_resolution(resolution_km);
        let model = WrfModel::new(cfg).expect("valid configuration");
        let fields = model.fields().clone();
        let vortex = model.vortex();
        let dt = model.dt_secs();
        let mut group = c.benchmark_group(format!("physics_step_{resolution_km}km"));
        for path in [KernelPath::Scalar, KernelPath::Lanes] {
            for workers in [1usize, 2, 4] {
                // Exact team so the label is the team that actually runs,
                // even when it oversubscribes the host.
                let mut pool = WorkerPool::with_exact_team_path(workers, path);
                let mut out = Fields::zeros(1, 1, 1.0);
                group.bench_function(format!("{}_{workers}w", path.label()), |b| {
                    b.iter(|| {
                        let probe = pool.step(
                            black_box(&fields),
                            vortex,
                            &cfg.phys,
                            &cfg.vortex,
                            &cfg.geom,
                            dt,
                            &mut out,
                        );
                        black_box(probe)
                    })
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
