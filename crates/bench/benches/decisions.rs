//! Criterion benches for the decision layer: one greedy evaluation, one
//! LP solve (the optimization method's per-epoch cost — the paper invokes
//! it every 1.5 wall hours, so it must be negligible), and the simplex
//! solver on synthetic programs of growing size.

use adaptive_core::config::ApplicationConfig;
use adaptive_core::decision::{AlgorithmKind, DecisionInputs};
use criterion::{criterion_group, criterion_main, Criterion};
use lp::{Problem, Relation};
use perfmodel::ProcTable;
use std::hint::black_box;

fn inputs(table: &ProcTable, current: &ApplicationConfig) -> DecisionInputs<'static> {
    // Leak the borrowed pieces: criterion closures need 'static, and the
    // handful of leaked tables is irrelevant for a bench process.
    let table: &'static ProcTable = Box::leak(Box::new(table.clone()));
    let current: &'static ApplicationConfig = Box::leak(Box::new(current.clone()));
    DecisionInputs {
        free_disk_percent: 47.0,
        free_disk_bytes: 85_000_000_000,
        disk_capacity_bytes: 182_000_000_000,
        bandwidth_bps: 7e6,
        frame_bytes: 135_000_000,
        io_secs_per_frame: 0.9,
        proc_table: table,
        current,
        dt_sim_secs: 144.0,
        min_oi_min: 3.0,
        max_oi_min: 25.0,
        horizon_secs: 20.0 * 3600.0,
    }
}

fn bench_decision_epoch(c: &mut Criterion) {
    let table = ProcTable::from_entries((1..=48).map(|p| (p, 160.0 / p as f64)).collect());
    let current = ApplicationConfig::initial(48, 3.0, 24.0);
    let inp = inputs(&table, &current);
    let mut group = c.benchmark_group("decision_epoch");
    for kind in AlgorithmKind::both() {
        let name = match kind {
            AlgorithmKind::GreedyThreshold => "greedy_threshold",
            AlgorithmKind::Optimization => "optimization_lp",
            AlgorithmKind::StaticBaseline => "static_baseline",
        };
        group.bench_function(name, |b| {
            let mut algo = kind.build();
            b.iter(|| black_box(algo.decide(&inp)))
        });
    }
    group.finish();
}

fn bench_simplex_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex");
    for n in [4usize, 8, 16, 32] {
        // Dense feasible LP: min Σx s.t. random-ish ≥ rows, boxed vars.
        group.bench_function(format!("{n}vars_{n}rows"), |b| {
            let obj = vec![1.0; n];
            let mut p = Problem::minimize(&obj);
            for j in 0..n {
                p.set_bounds(j, 0.0, 10.0);
            }
            for i in 0..n {
                let row: Vec<f64> = (0..n)
                    .map(|j| 1.0 + (((i * 31 + j * 17) % 7) as f64) / 7.0)
                    .collect();
                p.add_constraint(&row, Relation::Ge, 2.0 + (i % 3) as f64);
            }
            b.iter(|| black_box(p.solve().expect("solves")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decision_epoch, bench_simplex_scaling);
criterion_main!(benches);
