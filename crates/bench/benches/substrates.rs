//! Criterion benches for the substrate crates: the dynamical core's step
//! (serial, shared-memory parallel, halo-exchange ranks), the wire
//! format, the renderer, and the performance-model fit.

use criterion::{criterion_group, criterion_main, Criterion};
use perfmodel::{Sample, ScalingFit};
use std::hint::black_box;
use viz::FrameRenderer;
use wrf::{ModelConfig, WrfModel};

fn bench_wrf_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("wrf_step");
    group.sample_size(20);
    // The 24 km grid (~270×232 points). Worker counts beyond the host's
    // core count cannot speed this up (the reference runner is a 1-core
    // container, where these rows measure pure threading overhead); on a
    // multi-core host the shared rows show the row-band scaling, and the
    // halo-rank rows its message-passing overhead on top.
    let cfg = ModelConfig::aila_default();
    let base = WrfModel::new(cfg).expect("valid");
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("shared/{threads}t"), |b| {
            let mut model = base.clone();
            b.iter(|| {
                model.advance_steps(1, threads).expect("finite");
                black_box(model.steps_taken())
            })
        });
    }
    group.finish();

    // Halo-exchange ranks vs shared memory on one step (message-passing
    // fidelity costs; measured on the same state).
    let mut group = c.benchmark_group("wrf_step_halo_ranks");
    group.sample_size(20);
    let model = base.clone();
    let fields = model.fields().clone();
    let vortex = *model.vortex();
    let cfg = *model.config();
    for ranks in [2usize, 4, 8] {
        group.bench_function(format!("{ranks}ranks"), |b| {
            b.iter(|| {
                black_box(wrf::par::step_halo_ranks(
                    &fields,
                    &vortex,
                    &cfg.phys,
                    &cfg.vortex,
                    &cfg.geom,
                    144.0,
                    ranks,
                ))
            })
        });
    }
    group.finish();
}

fn bench_ncdf(c: &mut Criterion) {
    let mut model = WrfModel::new(ModelConfig::aila_default().with_decimation(2)).expect("valid");
    model.advance_steps(1, 4).expect("finite");
    let frame = model.frame();
    let bytes = frame.to_bytes();
    let mut group = c.benchmark_group("ncdf");
    group.bench_function(format!("encode_{}kb", bytes.len() / 1024), |b| {
        b.iter(|| black_box(frame.to_bytes().len()))
    });
    group.bench_function(format!("decode_{}kb", bytes.len() / 1024), |b| {
        b.iter(|| black_box(ncdf::Dataset::from_bytes(&bytes).expect("valid")))
    });
    group.finish();
}

fn bench_render(c: &mut Criterion) {
    let mut model = WrfModel::new(ModelConfig::aila_default().with_decimation(4)).expect("valid");
    model.advance_steps(2, 4).expect("finite");
    model.spawn_nest();
    let frame = model.frame();
    c.bench_function("render_frame", |b| {
        let renderer = FrameRenderer::default();
        b.iter(|| black_box(renderer.render(&frame).expect("renders")))
    });
}

fn bench_perfmodel(c: &mut Criterion) {
    let truth = ScalingFit::from_coeffs([0.3, 2.2e-3, 2e-3, 0.02]);
    let samples: Vec<Sample> = [1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0, 90.0]
        .iter()
        .map(|&p| Sample {
            procs: p,
            work: 1e5,
            time: truth.predict(p, 1e5),
        })
        .collect();
    c.bench_function("perfmodel_fit", |b| {
        b.iter(|| black_box(ScalingFit::fit(&samples).expect("fits")))
    });
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut model = WrfModel::new(ModelConfig::aila_default().with_decimation(4)).expect("valid");
    model.advance_steps(2, 4).expect("finite");
    model.spawn_nest();
    let blob = model.checkpoint();
    let mut group = c.benchmark_group("checkpoint");
    group.bench_function(format!("save_{}kb", blob.len() / 1024), |b| {
        b.iter(|| black_box(model.checkpoint().len()))
    });
    group.bench_function("restore", |b| {
        b.iter(|| black_box(WrfModel::restore(&blob).expect("valid")))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_wrf_step,
    bench_ncdf,
    bench_render,
    bench_perfmodel,
    bench_checkpoint
);
criterion_main!(benches);
