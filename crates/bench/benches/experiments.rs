//! Criterion benches over the paper's experiments.
//!
//! One bench per (figure-panel, algorithm): each measures the complete
//! closed-loop DES run that regenerates the corresponding panel of
//! Figures 5–8 (the four figures share the same six runs, so this is the
//! cost of the entire evaluation section), plus the Table I analytic/DES
//! fill-time computation.

use adaptive_core::decision::AlgorithmKind;
use adaptive_core::orchestrator::{Orchestrator, RunOptions};
use criterion::{criterion_group, criterion_main, Criterion};
use cyclone::{Mission, Site, SiteKind};
use std::hint::black_box;

fn bench_figure_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_5_to_8_runs");
    group.sample_size(10);
    for kind in SiteKind::all() {
        for algo in AlgorithmKind::both() {
            let site = Site::of_kind(kind);
            let name = format!(
                "{}/{}",
                site.label,
                match algo {
                    AlgorithmKind::GreedyThreshold => "greedy",
                    AlgorithmKind::Optimization => "optimization",
                    AlgorithmKind::StaticBaseline => "static",
                }
            );
            // Cap the greedy cross-continent run (it otherwise idles at
            // the 120 h default cap after stalling — the paper's dotted
            // line, not interesting to time).
            let opts = RunOptions {
                wall_cap_hours: 60.0,
                ..Default::default()
            };
            group.bench_function(&name, |b| {
                b.iter(|| {
                    let out = Orchestrator::new(Site::of_kind(kind), Mission::aila(), algo)
                        .with_options(opts.clone())
                        .run();
                    black_box(out.frames_written)
                })
            });
        }
    }
    group.finish();
}

fn bench_short_mission_scaling(c: &mut Criterion) {
    // Ablation: how does run cost scale with mission length (DES event
    // count)? Near-linear confirms the event loop has no hidden
    // quadratic behaviour.
    let mut group = c.benchmark_group("mission_length_scaling");
    group.sample_size(10);
    for hours in [6.0, 12.0, 24.0] {
        group.bench_function(format!("{hours}h"), |b| {
            b.iter(|| {
                let out = Orchestrator::new(
                    Site::inter_department(),
                    Mission::aila().with_duration_hours(hours),
                    AlgorithmKind::Optimization,
                )
                .run();
                black_box(out.sim_minutes)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure_runs, bench_short_mission_scaling);
criterion_main!(benches);
