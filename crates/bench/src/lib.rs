//! Shared harness for the table/figure reproduction binaries and the
//! criterion benches.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index); this library holds the pieces
//! they share: running the six canonical experiments (3 sites × 2
//! algorithms), formatting rows the way the paper's axes are labelled,
//! and writing CSV artifacts under `results/`.

use adaptive_core::decision::AlgorithmKind;
use adaptive_core::orchestrator::{Orchestrator, RunOutcome};
use cyclone::{Mission, Site, SiteKind};
use std::path::PathBuf;
use viz::plot::{Plot, GREEDY_RED, OPTIMIZATION_BLUE};

/// The mission every experiment binary runs: the full 60-hour Aila track.
pub fn paper_mission() -> Mission {
    Mission::aila()
}

/// Run one (site, algorithm) experiment of the full mission.
pub fn run_one(kind: SiteKind, algo: AlgorithmKind) -> RunOutcome {
    Orchestrator::new(Site::of_kind(kind), paper_mission(), algo).run()
}

/// Run the greedy/optimization pair for a site.
pub fn run_pair(kind: SiteKind) -> (RunOutcome, RunOutcome) {
    (
        run_one(kind, AlgorithmKind::GreedyThreshold),
        run_one(kind, AlgorithmKind::Optimization),
    )
}

/// Where result CSVs land (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("results directory is creatable");
    dir
}

/// Write a CSV artifact and report where it went.
pub fn write_artifact(name: &str, contents: &str) {
    let path = results_dir().join(name);
    std::fs::write(&path, contents).expect("results file is writable");
    println!("  [wrote {}]", path.display());
}

/// `HH:MM` label for a wall-clock offset in seconds (the x-axes of
/// Figures 5–8).
pub fn wall_label(secs: f64) -> String {
    let mins = (secs / 60.0).round() as i64;
    format!("{:02}:{:02}", mins / 60, mins % 60)
}

/// `DD-May HH:MM` label for simulated minutes (the y-axes of Figures 5/7).
pub fn sim_label(sim_minutes: f64) -> String {
    Mission::format_sim_time(sim_minutes)
}

/// Sample a run's series at regular wall intervals: returns
/// `(wall_secs, value)` pairs every `every_secs` up to the run's end.
pub fn sample_series(out: &RunOutcome, series: &str, every_secs: f64) -> Vec<(f64, f64)> {
    let s = out.series.get(series).expect("known series name");
    let end = out.wall_hours * 3600.0;
    let mut rows = Vec::new();
    let mut t = 0.0;
    while t <= end + 1e-9 {
        if let Some(v) = s.value_at(t) {
            rows.push((t, v));
        }
        t += every_secs;
    }
    rows
}

/// Render one figure panel as a PPM line chart (the paper's plot style:
/// greedy red, optimization blue) and save it under `results/`.
///
/// `series_name` selects which recorded series to plot; values are passed
/// through `map_y`. X values are wall-clock hours.
pub fn save_panel_plot(
    file: &str,
    title: &str,
    y_label: &str,
    series_name: &str,
    greedy: &RunOutcome,
    opt: &RunOutcome,
    map_y: impl Fn(f64) -> f64,
) {
    let mut plot = Plot::new(title.to_uppercase());
    plot.x_label = "WALL CLOCK (HOURS)".into();
    plot.y_label = y_label.to_uppercase();
    for (label, out, color) in [
        ("GREEDY-THRESHOLD", greedy, GREEDY_RED),
        ("OPTIMIZATION", opt, OPTIMIZATION_BLUE),
    ] {
        let pts: Vec<(f64, f64)> = sample_series(out, series_name, 900.0)
            .into_iter()
            .map(|(t, v)| (t / 3600.0, map_y(v)))
            .collect();
        if !pts.is_empty() {
            plot.add_series(label, pts, color);
        }
    }
    let img = plot.render();
    let path = results_dir().join(file);
    img.save_ppm(&path).expect("results dir writable");
    println!("  [plotted {}]", path.display());
}

/// One row of the summary table printed by several binaries.
pub fn outcome_line(out: &RunOutcome) -> String {
    format!(
        "{:<16} {:<18} completed={:<5} wall={:>6.1}h sim={} frames(w/s/v)={}/{}/{} \
         restarts={} stalls={} minfree={:>5.1}% endfree={:>5.1}%",
        out.site_label,
        out.algorithm.label(),
        out.completed,
        out.wall_hours,
        sim_label(out.sim_minutes),
        out.frames_written,
        out.frames_shipped,
        out.frames_rendered,
        out.restarts,
        out.stalls,
        out.min_free_disk_pct,
        out.final_free_disk_pct,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_format_like_the_paper() {
        assert_eq!(wall_label(0.0), "00:00");
        assert_eq!(wall_label(2.5 * 3600.0), "02:30");
        assert_eq!(wall_label(26.0 * 3600.0), "26:00");
        assert_eq!(sim_label(15.0 * 60.0), "23-May 09:00");
    }
}
