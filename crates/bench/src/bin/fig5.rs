//! Figure 5: simulation times with progress in executions.
//!
//! For each configuration (a: inter-department, b: intra-country,
//! c: cross-continent), plots the simulated time reached (y, labelled
//! `DD-May HH:MM`) against wall-clock time (x, `HH:MM`) for both decision
//! algorithms. The paper's shapes: the optimization curve is steady and
//! reaches 25-May first in every configuration; the greedy cross-continent
//! curve flattens (dotted in the paper) when the simulation stalls on a
//! full disk.

use cyclone::SiteKind;
use repro_bench::{run_pair, sample_series, sim_label, wall_label, write_artifact};

fn main() {
    let mut csv = String::from("config,algorithm,wall_secs,wall_label,sim_minutes,sim_label\n");
    for (panel, kind) in ["a", "b", "c"].iter().zip(SiteKind::all()) {
        let (greedy, opt) = run_pair(kind);
        println!(
            "--- Fig 5({panel}) {} — simulated time vs wall clock ---",
            greedy.site_label
        );
        println!(
            "{:>9} | {:>16} | {:>16}",
            "wall", "Greedy-Threshold", "Optimization"
        );
        let step = 2.0 * 3600.0;
        let g = sample_series(&greedy, "sim_progress", step);
        let o = sample_series(&opt, "sim_progress", step);
        let rows = g.len().max(o.len());
        for i in 0..rows {
            let wall = i as f64 * step;
            let gv = g.get(i).map(|&(_, v)| sim_label(v));
            let ov = o.get(i).map(|&(_, v)| sim_label(v));
            println!(
                "{:>9} | {:>16} | {:>16}",
                wall_label(wall),
                gv.as_deref().unwrap_or("(done)"),
                ov.as_deref().unwrap_or("(done)"),
            );
        }
        for (algo, out) in [("Greedy-Threshold", &greedy), ("Optimization Method", &opt)] {
            for (t, v) in sample_series(out, "sim_progress", 1800.0) {
                csv.push_str(&format!(
                    "{},{},{},{},{},{}\n",
                    out.site_label,
                    algo,
                    t,
                    wall_label(t),
                    v,
                    sim_label(v)
                ));
            }
        }
        repro_bench::save_panel_plot(
            &format!("fig5{panel}_{}.ppm", greedy.site_label),
            &format!("Fig 5({panel}) {} - simulation progress", greedy.site_label),
            "simulated hours",
            "sim_progress",
            &greedy,
            &opt,
            |sim_min| sim_min / 60.0,
        );
        println!(
            "greedy: completed={} ({:.1} h)   optimization: completed={} ({:.1} h)\n",
            greedy.completed, greedy.wall_hours, opt.completed, opt.wall_hours
        );
    }
    write_artifact("fig5_sim_progress.csv", &csv);
}
