//! Benchmark profiling runs — the paper's calibration procedure, run for
//! real against our own dynamical core.
//!
//! "The execution times of a subset of configurations have been
//! experimentally found by running sample WRF runs ... for different
//! discrete number of processors, spanning the available processor space
//! and using performance modeling or curve fitting tools to interpolate
//! for other number of processors."
//!
//! This binary does exactly that with the in-repo solver: time real
//! integration steps on the persistent rank team ([`wrf::WorkerPool`]) at
//! several worker counts and workloads (resolutions), time the legacy
//! spawn-per-pass implementation at the same counts for comparison, fit
//! the scaling law with `perfmodel`, report its held-out error and the
//! sign of ∂t/∂p over the measured range, and emit the machine-readable
//! baseline `BENCH_physics.json` at the repo root for future regressions.
//!
//! ```text
//! cargo run --release -p repro-bench --bin profiling [-- --quick]
//! ```
//!
//! Note: the *real* speedup from extra workers is bounded by the host's
//! cores (`std::thread::available_parallelism`). On a single-core host the
//! measured times stay flat across worker counts — the fit then correctly
//! reports a near-zero parallel term; the pooled engine still wins on
//! every count by removing per-step thread spawns and allocations. The
//! printed host-core count makes the context of a run unambiguous.

use perfmodel::{ProcTable, Sample, ScalingFit};
use repro_bench::write_artifact;
use std::fmt::Write as _;
use std::time::Instant;
use wrf::{par, Fields, ModelConfig, WorkerPool};

struct Measurement {
    resolution_km: f64,
    nx: usize,
    ny: usize,
    workers: usize,
    pooled_secs: f64,
    spawning_secs: f64,
}

/// The physics state one resolution's measurements run on.
struct Workload {
    cfg: ModelConfig,
    fields: Fields,
}

impl Workload {
    fn new(resolution_km: f64) -> Self {
        let cfg = ModelConfig::aila_default().with_resolution(resolution_km);
        let model = wrf::WrfModel::new(cfg).expect("valid configuration");
        Workload {
            cfg,
            fields: model.fields().clone(),
        }
    }

    /// Seconds per step on the persistent pool (double-buffered, warm).
    fn time_pooled(&self, workers: usize, steps: usize) -> f64 {
        let model = wrf::WrfModel::new(self.cfg).expect("valid configuration");
        let vortex = model.vortex();
        let dt = model.dt_secs();
        // Exact team: the profiled worker count must be the team that
        // actually runs, even oversubscribed, or the fit's processor axis
        // would silently be the clamped count.
        let mut pool = WorkerPool::with_exact_team(workers);
        let mut cur = self.fields.clone();
        let mut out = Fields::zeros(1, 1, 1.0);
        // Warm-up: spawn the team, shape the scratch buffer.
        pool.step(
            &cur,
            vortex,
            &self.cfg.phys,
            &self.cfg.vortex,
            &self.cfg.geom,
            dt,
            &mut out,
        );
        let start = Instant::now();
        for _ in 0..steps {
            pool.step(
                &cur,
                vortex,
                &self.cfg.phys,
                &self.cfg.vortex,
                &self.cfg.geom,
                dt,
                &mut out,
            );
            std::mem::swap(&mut cur, &mut out);
        }
        start.elapsed().as_secs_f64() / steps as f64
    }

    /// Seconds per step on the legacy spawn-per-pass implementation.
    fn time_spawning(&self, workers: usize, steps: usize) -> f64 {
        let model = wrf::WrfModel::new(self.cfg).expect("valid configuration");
        let vortex = model.vortex();
        let dt = model.dt_secs();
        let mut cur = self.fields.clone();
        // Warm-up, matching the pooled path.
        cur = par::step_spawning(
            &cur,
            vortex,
            &self.cfg.phys,
            &self.cfg.vortex,
            &self.cfg.geom,
            dt,
            workers,
        );
        let start = Instant::now();
        for _ in 0..steps {
            cur = par::step_spawning(
                &cur,
                vortex,
                &self.cfg.phys,
                &self.cfg.vortex,
                &self.cfg.geom,
                dt,
                workers,
            );
        }
        start.elapsed().as_secs_f64() / steps as f64
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Quick mode still needs four counts: the scaling law has four
    // coefficients, and three samples left the fit unidentifiable.
    let worker_counts: &[usize] = if quick {
        &[1, 2, 4, 6]
    } else {
        &[1, 2, 3, 4, 6, 8]
    };
    let resolutions: &[f64] = if quick { &[24.0] } else { &[24.0, 16.0] };
    let steps = if quick { 2 } else { 8 };
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    println!("profiling the dynamical core (real measurements, host cores = {host_cores})\n");
    // A worker count beyond the host's cores measures *oversubscription*,
    // not scaling: the extra workers time-slice the same silicon. Those
    // rows are still recorded (they calibrate the pooled-vs-spawning
    // overhead), but they are marked invalid for scaling claims and the
    // adaptation-premise verdict below refuses to read them.
    let scaling_valid = |workers: usize| workers <= host_cores;
    let mut measurements = Vec::new();
    let mut samples = Vec::new();
    let mut csv = String::from("engine,resolution_km,workers,secs_per_step\n");
    for &res in resolutions {
        let wl = Workload::new(res);
        let (nx, ny) = (wl.fields.nx(), wl.fields.ny());
        let work = (nx * ny) as f64;
        println!("resolution {res} km ({nx}x{ny} grid, W = {work:.0} points):");
        for &w in worker_counts {
            let pooled = wl.time_pooled(w, steps);
            let spawning = wl.time_spawning(w, steps);
            println!(
                "  {w} workers: pooled {:.2} ms/step, legacy spawn-per-pass {:.2} ms/step ({:+.0}%){}",
                pooled * 1e3,
                spawning * 1e3,
                (pooled / spawning - 1.0) * 100.0,
                if scaling_valid(w) {
                    ""
                } else {
                    "  [oversubscribed: no scaling claim]"
                },
            );
            samples.push(Sample {
                procs: w as f64,
                work,
                time: pooled,
            });
            let _ = writeln!(csv, "pooled,{res},{w},{pooled:.6}");
            let _ = writeln!(csv, "spawning,{res},{w},{spawning:.6}");
            measurements.push(Measurement {
                resolution_km: res,
                nx,
                ny,
                workers: w,
                pooled_secs: pooled,
                spawning_secs: spawning,
            });
        }
    }

    let fit = ScalingFit::fit(&samples).expect("sample design is identifiable");
    let c = fit.coeffs();
    println!(
        "\nfitted law: t = {:.2e} + {:.2e}(W/p) + {:.2e}sqrt(W/p) + {:.2e}log2(p)   (R2 = {:.3})",
        c[0],
        c[1],
        c[2],
        c[3],
        fit.r_squared()
    );

    // Held-out check: predict a worker count that was not profiled.
    let res = resolutions[0];
    let wl = Workload::new(res);
    let work = (wl.fields.nx() * wl.fields.ny()) as f64;
    let measured = wl.time_pooled(5, steps);
    let predicted = fit.predict(5.0, work);
    let held_out_rel = (predicted - measured).abs() / measured;
    println!(
        "held-out (5 workers @ {res} km): measured {:.2} ms, fit predicts {:.2} ms ({:.1}% off)",
        measured * 1e3,
        predicted * 1e3,
        held_out_rel * 100.0
    );

    // The paper's adaptation premise, checked on the re-fitted law: is
    // ∂t/∂p negative (more processors → faster step) over the measured
    // range?
    let span: Vec<f64> = worker_counts.iter().map(|&w| w as f64).collect();
    print!("d(t)/d(p) at fixed W = {work:.0}:");
    let mut all_negative = true;
    let mut dt_dp = Vec::new();
    for &p in &span {
        let d = fit.d_dt_d_procs(p, work);
        if scaling_valid(p as usize) {
            all_negative &= d < 0.0;
        }
        dt_dp.push((p, d));
        print!("  p={p:.0}: {d:+.2e}");
    }
    println!();
    // Refuse the claim outright unless at least two worker counts fit on
    // real cores — one point gives the premise no slope to stand on.
    let valid_counts = worker_counts.iter().filter(|&&w| scaling_valid(w)).count();
    let premise = if valid_counts < 2 {
        "refused"
    } else if all_negative {
        "holds"
    } else {
        "violated"
    };
    match premise {
        "refused" => println!(
            "adaptation premise (negative d(t)/d(p)): REFUSED — host has {host_cores} core(s) \
             but scaling needs >=2 worker counts on real cores; rows with workers > cores \
             measure oversubscription, not scaling"
        ),
        "holds" => println!(
            "adaptation premise (negative d(t)/d(p) over the {valid_counts} on-core worker \
             counts): holds"
        ),
        _ => println!(
            "adaptation premise (negative d(t)/d(p) over the {valid_counts} on-core worker \
             counts): does NOT hold on this host"
        ),
    }

    // The table the decision algorithms would consume from this fit.
    let table = ProcTable::from_fit(&fit, work, worker_counts);
    println!("\nderived processor table @ {res} km:");
    for &(p, t) in table.entries() {
        println!("  {p:>2} workers -> {:.2} ms/step", t * 1e3);
    }
    write_artifact("profiling_runs.csv", &csv);

    // Machine-readable perf baseline at the repo root, so future changes
    // have a trajectory to regress against.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"steps_timed\": {steps},");
    let _ = writeln!(json, "  \"unit\": \"ms_per_step\",");
    let _ = writeln!(json, "  \"measurements\": [");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"resolution_km\": {}, \"grid\": [{}, {}], \"workers\": {}, \
             \"pooled_ms\": {:.4}, \"spawning_ms\": {:.4}, \"scaling_valid\": {}}}{comma}",
            m.resolution_km,
            m.nx,
            m.ny,
            m.workers,
            m.pooled_secs * 1e3,
            m.spawning_secs * 1e3,
            scaling_valid(m.workers),
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"fit\": {{\"coeffs\": [{:e}, {:e}, {:e}, {:e}], \"r_squared\": {:.4}, \
         \"held_out\": {{\"workers\": 5, \"resolution_km\": {res}, \"measured_ms\": {:.4}, \
         \"predicted_ms\": {:.4}, \"rel_error\": {:.4}}}}},",
        c[0],
        c[1],
        c[2],
        c[3],
        fit.r_squared(),
        measured * 1e3,
        predicted * 1e3,
        held_out_rel,
    );
    let _ = writeln!(
        json,
        "  \"dt_dp\": [{}],",
        dt_dp
            .iter()
            .map(|(p, d)| format!("{{\"procs\": {p}, \"value\": {d:e}}}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        json,
        "  \"scaling_claim\": {{\"premise\": \"{premise}\", \"on_core_worker_counts\": {valid_counts}, \
         \"note\": \"rows with scaling_valid=false ran more workers than host cores and measure \
         oversubscription, not scaling\"}}"
    );
    json.push_str("}\n");
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_physics.json");
    std::fs::write(&path, json).expect("repo root is writable");
    println!("  [wrote {}]", path.display());
}
