//! Benchmark profiling runs — the paper's calibration procedure, run for
//! real against our own dynamical core.
//!
//! "The execution times of a subset of configurations have been
//! experimentally found by running sample WRF runs ... for different
//! discrete number of processors, spanning the available processor space
//! and using performance modeling or curve fitting tools to interpolate
//! for other number of processors."
//!
//! This binary does exactly that with the in-repo solver: time real
//! integration steps at several worker counts and two workloads
//! (resolutions), fit the scaling law with `perfmodel`, and print the
//! fitted coefficients next to held-out measurements.
//!
//! Note: on a single-core host (such as the reference container) the
//! measured times are flat across worker counts — the fit then correctly
//! reports a near-zero parallel term, which is itself a useful sanity
//! check of the procedure.

use perfmodel::{ProcTable, Sample, ScalingFit};
use repro_bench::write_artifact;
use std::time::Instant;
use wrf::{ModelConfig, WrfModel};

fn measure_step_secs(resolution_km: f64, threads: usize, steps: usize) -> f64 {
    let cfg = ModelConfig::aila_default().with_resolution(resolution_km);
    let mut model = WrfModel::new(cfg).expect("valid configuration");
    // Warm-up step so allocations and caches settle.
    model.advance_steps(1, threads).expect("finite");
    let start = Instant::now();
    model.advance_steps(steps, threads).expect("finite");
    start.elapsed().as_secs_f64() / steps as f64
}

fn main() {
    let worker_counts = [1usize, 2, 3, 4, 6, 8];
    let resolutions = [24.0f64, 16.0];
    let steps = 3;

    println!("profiling the dynamical core (real measurements)\n");
    let mut samples = Vec::new();
    let mut csv = String::from("resolution_km,workers,secs_per_step\n");
    for &res in &resolutions {
        let (nx, ny) = ModelConfig::aila_default()
            .with_resolution(res)
            .physics_grid();
        let work = (nx * ny) as f64;
        println!("resolution {res} km ({nx}x{ny} grid, W = {work:.0} points):");
        for &w in &worker_counts {
            let t = measure_step_secs(res, w, steps);
            println!("  {w} workers: {:.2} ms/step", t * 1e3);
            samples.push(Sample {
                procs: w as f64,
                work,
                time: t,
            });
            csv.push_str(&format!("{res},{w},{t:.6}\n"));
        }
    }

    let fit = ScalingFit::fit(&samples).expect("sample design is identifiable");
    let c = fit.coeffs();
    println!(
        "\nfitted law: t = {:.2e} + {:.2e}(W/p) + {:.2e}sqrt(W/p) + {:.2e}log2(p)   (R2 = {:.3})",
        c[0],
        c[1],
        c[2],
        c[3],
        fit.r_squared()
    );

    // Held-out check: predict a worker count that was not profiled.
    let res = resolutions[0];
    let (nx, ny) = ModelConfig::aila_default()
        .with_resolution(res)
        .physics_grid();
    let work = (nx * ny) as f64;
    let measured = measure_step_secs(res, 5, steps);
    let predicted = fit.predict(5.0, work);
    println!(
        "held-out (5 workers @ {res} km): measured {:.2} ms, fit predicts {:.2} ms",
        measured * 1e3,
        predicted * 1e3
    );

    // The table the decision algorithms would consume from this fit.
    let table = ProcTable::from_fit(&fit, work, &worker_counts);
    println!("\nderived processor table @ {res} km:");
    for &(p, t) in table.entries() {
        println!("  {p:>2} workers -> {:.2} ms/step", t * 1e3);
    }
    write_artifact("profiling_runs.csv", &csv);
}
