//! Benchmark profiling runs — the paper's calibration procedure, run for
//! real against our own dynamical core.
//!
//! "The execution times of a subset of configurations have been
//! experimentally found by running sample WRF runs ... for different
//! discrete number of processors, spanning the available processor space
//! and using performance modeling or curve fitting tools to interpolate
//! for other number of processors."
//!
//! This binary does exactly that with the in-repo solver: time real
//! integration steps on the persistent rank team ([`wrf::WorkerPool`])
//! for **both** kernel paths — the original scalar stencils and the
//! vectorized lanes kernels (DESIGN.md §17) — across worker counts and
//! workloads (resolutions), time the legacy spawn-per-pass implementation
//! as the scalar baseline, fit the scaling law with `perfmodel` from the
//! honest rows only, report its held-out error and the sign of ∂t/∂p,
//! and emit the machine-readable baseline `BENCH_physics.json` at the
//! repo root for future regressions.
//!
//! ```text
//! cargo run --release -p repro-bench --bin profiling [-- --quick]
//! ```
//!
//! # Honesty rules
//!
//! - A worker count beyond the host's cores measures *oversubscription*,
//!   not scaling. Those rows are recorded (they calibrate pool overhead)
//!   but marked `scaling_valid: false`, and neither the fit nor the
//!   adaptation-premise verdict reads them.
//! - The fit consumes only `scaling_valid: true` rows of the lanes path
//!   (the path the model actually runs). Fewer than
//!   [`ScalingFit::MIN_SAMPLES`] such rows and the binary **refuses to
//!   emit a fit at all** (`"fit": null` plus a `fit_refusal` reason) —
//!   an unidentifiable law is worse than no law.
//! - On a single-core host every valid row has `procs = 1`, so the
//!   collectives column of the law is unobservable; the fit pins that
//!   coefficient to zero and the premise verdict is refused for lack of
//!   a processor axis. Workload scaling (resolution sweep) is still
//!   measured and fitted honestly.

use perfmodel::{ProcTable, Sample, ScalingFit};
use repro_bench::write_artifact;
use std::fmt::Write as _;
use std::time::Instant;
use wrf::{par, Fields, KernelPath, ModelConfig, WorkerPool};

/// Print a report line and append it to the text artifact
/// (`results/profiling_output.txt`).
macro_rules! out {
    ($report:expr, $($arg:tt)*) => {{
        let line = format!($($arg)*);
        println!("{line}");
        $report.push_str(&line);
        $report.push('\n');
    }};
}

struct Measurement {
    resolution_km: f64,
    nx: usize,
    ny: usize,
    workers: usize,
    path: KernelPath,
    pooled_secs: f64,
    /// Legacy spawn-per-pass time — only measured on the scalar path,
    /// whose serial kernels it runs.
    spawning_secs: Option<f64>,
}

/// The physics state one resolution's measurements run on.
struct Workload {
    cfg: ModelConfig,
    fields: Fields,
}

impl Workload {
    fn new(resolution_km: f64) -> Self {
        let cfg = ModelConfig::aila_default().with_resolution(resolution_km);
        let model = wrf::WrfModel::new(cfg).expect("valid configuration");
        Workload {
            cfg,
            fields: model.fields().clone(),
        }
    }

    fn work_points(&self) -> f64 {
        (self.fields.nx() * self.fields.ny()) as f64
    }

    /// Seconds per step on the persistent pool (double-buffered, warm)
    /// running `path` kernels. The work is deterministic, so the *minimum*
    /// over `repeats` timed passes is the least-noise estimator — scheduler
    /// and frequency jitter only ever add time, never subtract it.
    fn time_pooled(&self, workers: usize, steps: usize, repeats: usize, path: KernelPath) -> f64 {
        let model = wrf::WrfModel::new(self.cfg).expect("valid configuration");
        let vortex = model.vortex();
        let dt = model.dt_secs();
        // Exact team: the profiled worker count must be the team that
        // actually runs, even oversubscribed, or the fit's processor axis
        // would silently be the clamped count.
        let mut pool = WorkerPool::with_exact_team_path(workers, path);
        let mut cur = self.fields.clone();
        let mut out = Fields::zeros(1, 1, 1.0);
        // Warm-up: spawn the team, shape the scratch buffers.
        pool.step(
            &cur,
            vortex,
            &self.cfg.phys,
            &self.cfg.vortex,
            &self.cfg.geom,
            dt,
            &mut out,
        );
        let mut best = f64::INFINITY;
        for _ in 0..repeats.max(1) {
            let start = Instant::now();
            for _ in 0..steps {
                pool.step(
                    &cur,
                    vortex,
                    &self.cfg.phys,
                    &self.cfg.vortex,
                    &self.cfg.geom,
                    dt,
                    &mut out,
                );
                std::mem::swap(&mut cur, &mut out);
            }
            best = best.min(start.elapsed().as_secs_f64() / steps as f64);
        }
        best
    }

    /// Seconds per step on the legacy spawn-per-pass implementation
    /// (scalar kernels by construction); minimum over `repeats` passes.
    fn time_spawning(&self, workers: usize, steps: usize, repeats: usize) -> f64 {
        let model = wrf::WrfModel::new(self.cfg).expect("valid configuration");
        let vortex = model.vortex();
        let dt = model.dt_secs();
        let mut cur = self.fields.clone();
        // Warm-up, matching the pooled path.
        cur = par::step_spawning(
            &cur,
            vortex,
            &self.cfg.phys,
            &self.cfg.vortex,
            &self.cfg.geom,
            dt,
            workers,
        );
        let mut best = f64::INFINITY;
        for _ in 0..repeats.max(1) {
            let start = Instant::now();
            for _ in 0..steps {
                cur = par::step_spawning(
                    &cur,
                    vortex,
                    &self.cfg.phys,
                    &self.cfg.vortex,
                    &self.cfg.geom,
                    dt,
                    workers,
                );
            }
            best = best.min(start.elapsed().as_secs_f64() / steps as f64);
        }
        best
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let worker_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 6, 8] };
    // Four resolutions so that even a single-core host (every multi-worker
    // row oversubscribed) yields MIN_SAMPLES honest rows for the fit via
    // the workload axis.
    let resolutions: &[f64] = if quick {
        &[24.0]
    } else {
        &[48.0, 32.0, 24.0, 16.0]
    };
    let steps = if quick { 2 } else { 8 };
    // Each cell is the min over this many timed passes — see time_pooled.
    let repeats = if quick { 1 } else { 3 };
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let mut report = String::new();
    out!(
        report,
        "profiling the dynamical core (real measurements, host cores = {host_cores}, \
         {steps} steps x {repeats} passes per cell, min taken)\n"
    );
    let scaling_valid = |workers: usize| workers <= host_cores;
    let mut measurements = Vec::new();
    let mut csv = String::from("engine,kernel_path,resolution_km,workers,secs_per_step\n");
    for &res in resolutions {
        let wl = Workload::new(res);
        let (nx, ny) = (wl.fields.nx(), wl.fields.ny());
        out!(
            report,
            "resolution {res} km ({nx}x{ny} grid, W = {:.0} points):",
            wl.work_points()
        );
        for &w in worker_counts {
            let scalar = wl.time_pooled(w, steps, repeats, KernelPath::Scalar);
            let lanes = wl.time_pooled(w, steps, repeats, KernelPath::Lanes);
            let spawning = wl.time_spawning(w, steps, repeats);
            out!(
                report,
                "  {w} workers: scalar {:.2} ms/step, lanes {:.2} ms/step ({:.2}x), \
                 legacy spawn-per-pass {:.2} ms/step{}",
                scalar * 1e3,
                lanes * 1e3,
                scalar / lanes,
                spawning * 1e3,
                if scaling_valid(w) {
                    ""
                } else {
                    "  [oversubscribed: no scaling claim]"
                },
            );
            let _ = writeln!(csv, "pooled,scalar,{res},{w},{scalar:.6}");
            let _ = writeln!(csv, "pooled,lanes,{res},{w},{lanes:.6}");
            let _ = writeln!(csv, "spawning,scalar,{res},{w},{spawning:.6}");
            measurements.push(Measurement {
                resolution_km: res,
                nx,
                ny,
                workers: w,
                path: KernelPath::Scalar,
                pooled_secs: scalar,
                spawning_secs: Some(spawning),
            });
            measurements.push(Measurement {
                resolution_km: res,
                nx,
                ny,
                workers: w,
                path: KernelPath::Lanes,
                pooled_secs: lanes,
                spawning_secs: None,
            });
        }
    }
    write_artifact("profiling_runs.csv", &csv);

    // The lanes-vs-scalar story at workers = 1: pure kernel speed, no
    // parallel effects. This is the bench trajectory the CI smoke gate
    // regresses against.
    let mut speedups = Vec::new();
    for &res in resolutions {
        let scalar = measurements
            .iter()
            .find(|m| m.resolution_km == res && m.workers == 1 && m.path == KernelPath::Scalar)
            .expect("measured above");
        let lanes = measurements
            .iter()
            .find(|m| m.resolution_km == res && m.workers == 1 && m.path == KernelPath::Lanes)
            .expect("measured above");
        speedups.push((
            res,
            scalar.nx,
            scalar.ny,
            scalar.pooled_secs,
            lanes.pooled_secs,
        ));
    }
    out!(report, "\nlanes speedup at workers = 1:");
    for &(res, nx, ny, s, l) in &speedups {
        out!(
            report,
            "  {res} km ({nx}x{ny}): scalar {:.2} ms -> lanes {:.2} ms = {:.2}x",
            s * 1e3,
            l * 1e3,
            s / l
        );
    }

    // Re-fit the scaling law from the honest lanes rows only.
    let fit_samples: Vec<Sample> = measurements
        .iter()
        .filter(|m| m.path == KernelPath::Lanes && scaling_valid(m.workers))
        .map(|m| Sample {
            procs: m.workers as f64,
            work: (m.nx * m.ny) as f64,
            time: m.pooled_secs,
        })
        .collect();
    let fit = if fit_samples.len() < ScalingFit::MIN_SAMPLES {
        Err(format!(
            "only {} scaling_valid lanes rows, need {} — refusing to fit",
            fit_samples.len(),
            ScalingFit::MIN_SAMPLES
        ))
    } else {
        ScalingFit::fit(&fit_samples).map_err(|e| format!("fit failed: {e}"))
    };

    let finest = *resolutions.last().expect("non-empty");
    let work = Workload::new(finest).work_points();
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"schema_version\": 2,");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"steps_timed\": {steps},");
    let _ = writeln!(json, "  \"unit\": \"ms_per_step\",");
    let _ = writeln!(json, "  \"measurements\": [");
    for (i, m) in measurements.iter().enumerate() {
        let comma = if i + 1 == measurements.len() { "" } else { "," };
        let spawning = match m.spawning_secs {
            Some(s) => format!(", \"spawning_ms\": {:.4}", s * 1e3),
            None => String::new(),
        };
        let _ = writeln!(
            json,
            "    {{\"resolution_km\": {}, \"grid\": [{}, {}], \"workers\": {}, \
             \"kernel_path\": \"{}\", \"pooled_ms\": {:.4}{spawning}, \"scaling_valid\": {}}}{comma}",
            m.resolution_km,
            m.nx,
            m.ny,
            m.workers,
            m.path.label(),
            m.pooled_secs * 1e3,
            scaling_valid(m.workers),
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"lanes_speedup\": [");
    for (i, &(res, nx, ny, s, l)) in speedups.iter().enumerate() {
        let comma = if i + 1 == speedups.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"resolution_km\": {res}, \"grid\": [{nx}, {ny}], \"workers\": 1, \
             \"scalar_ms\": {:.4}, \"lanes_ms\": {:.4}, \"speedup\": {:.3}}}{comma}",
            s * 1e3,
            l * 1e3,
            s / l,
        );
    }
    let _ = writeln!(json, "  ],");

    match &fit {
        Ok(fit) => {
            let c = fit.coeffs();
            out!(
                report,
                "\nfitted law (lanes, {} honest rows): t = {:.2e} + {:.2e}(W/p) + \
                 {:.2e}sqrt(W/p) + {:.2e}log2(p)   (R2 = {:.3}, fingerprint {:016x})",
                fit_samples.len(),
                c[0],
                c[1],
                c[2],
                c[3],
                fit.r_squared(),
                fit.fingerprint(),
            );

            // Held-out check on a workload the fit never saw: lanes at one
            // worker, 20 km — always an honest configuration.
            let held = Workload::new(20.0);
            let measured = held.time_pooled(1, steps, repeats, KernelPath::Lanes);
            let predicted = fit.predict(1.0, held.work_points());
            let held_out_rel = (predicted - measured).abs() / measured;
            out!(
                report,
                "held-out (lanes, 1 worker @ 20 km, W = {:.0}): measured {:.2} ms, \
                 fit predicts {:.2} ms ({:.1}% off)",
                held.work_points(),
                measured * 1e3,
                predicted * 1e3,
                held_out_rel * 100.0
            );

            // The paper's adaptation premise on the re-fit law: is ∂t/∂p
            // negative (more processors → faster) over the measured range?
            // Meaningless without at least two worker counts on real
            // cores, and the verdict says so.
            let mut dt_dp = Vec::new();
            let mut all_negative = true;
            let mut deriv_line = format!("d(t)/d(p) at fixed W = {work:.0}:");
            for &w in worker_counts {
                let p = w as f64;
                let d = fit.d_dt_d_procs(p, work);
                if scaling_valid(w) {
                    all_negative &= d < 0.0;
                }
                dt_dp.push((p, d));
                let _ = write!(deriv_line, "  p={p:.0}: {d:+.2e}");
            }
            out!(report, "{deriv_line}");
            let valid_counts = worker_counts.iter().filter(|&&w| scaling_valid(w)).count();
            let premise = if valid_counts < 2 {
                "refused"
            } else if all_negative {
                "holds"
            } else {
                "violated"
            };
            match premise {
                "refused" => out!(
                    report,
                    "adaptation premise (negative d(t)/d(p)): REFUSED — host has {host_cores} \
                     core(s) but scaling needs >=2 worker counts on real cores; rows with \
                     workers > cores measure oversubscription, not scaling"
                ),
                "holds" => out!(
                    report,
                    "adaptation premise (negative d(t)/d(p) over the {valid_counts} on-core \
                     worker counts): holds"
                ),
                _ => out!(
                    report,
                    "adaptation premise (negative d(t)/d(p) over the {valid_counts} on-core \
                     worker counts): does NOT hold on this host"
                ),
            }

            // The table the decision algorithms would consume from this fit.
            let table = ProcTable::from_fit(fit, work, worker_counts);
            out!(
                report,
                "\nderived processor table @ {finest} km (lanes law):"
            );
            for &(p, t) in table.entries() {
                out!(report, "  {p:>2} workers -> {:.2} ms/step", t * 1e3);
            }

            let _ = writeln!(
                json,
                "  \"fit\": {{\"kernel_path\": \"lanes\", \"coeffs\": [{:e}, {:e}, {:e}, {:e}], \
                 \"r_squared\": {:.4}, \"fingerprint\": \"{:016x}\", \"used_samples\": {}, \
                 \"held_out\": {{\"kernel_path\": \"lanes\", \"workers\": 1, \
                 \"resolution_km\": 20, \"measured_ms\": {:.4}, \"predicted_ms\": {:.4}, \
                 \"rel_error\": {:.4}}}}},",
                c[0],
                c[1],
                c[2],
                c[3],
                fit.r_squared(),
                fit.fingerprint(),
                fit_samples.len(),
                measured * 1e3,
                predicted * 1e3,
                held_out_rel,
            );
            let _ = writeln!(
                json,
                "  \"dt_dp\": [{}],",
                dt_dp
                    .iter()
                    .map(|(p, d)| format!("{{\"procs\": {p}, \"value\": {d:e}}}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let _ = writeln!(
                json,
                "  \"scaling_claim\": {{\"premise\": \"{premise}\", \
                 \"on_core_worker_counts\": {valid_counts}, \
                 \"note\": \"rows with scaling_valid=false ran more workers than host cores and \
                 measure oversubscription, not scaling; the fit reads only scaling_valid lanes \
                 rows\"}}"
            );
        }
        Err(reason) => {
            out!(report, "\nNO FIT EMITTED: {reason}");
            let _ = writeln!(json, "  \"fit\": null,");
            let _ = writeln!(json, "  \"fit_refusal\": \"{reason}\",");
            let _ = writeln!(json, "  \"dt_dp\": [],");
            let _ = writeln!(
                json,
                "  \"scaling_claim\": {{\"premise\": \"refused\", \
                 \"on_core_worker_counts\": 0, \
                 \"note\": \"no fit: {reason}\"}}"
            );
        }
    }
    json.push_str("}\n");
    write_artifact("profiling_output.txt", &report);
    let path =
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_physics.json");
    std::fs::write(&path, json).expect("repo root is writable");
    println!("  [wrote {}]", path.display());
}
