//! CI gate over `BENCH_physics.json` — the bench trajectory's honesty
//! checks, run after the profiling binary in the `bench-smoke` CI step.
//!
//! Validates the schema the profiling binary emits (schema_version 2,
//! per-kernel-path measurement rows) and the invariants the repo's
//! performance story rests on:
//!
//! 1. every measurement row names a known `kernel_path` and carries a
//!    positive time;
//! 2. `workers > host_cores` rows are marked `scaling_valid: false`
//!    (oversubscription must never masquerade as scaling);
//! 3. on every measured grid the lanes path is at least as fast as the
//!    scalar path at `workers = 1` — the vectorization must never
//!    regress below the kernels it replaced;
//! 4. the `fit` section is either `null` with a stated `fit_refusal`, or
//!    a law fitted from >= MIN_SAMPLES honest rows with `r_squared` and
//!    a held-out error attached.
//!
//! Exits non-zero with a list of violations, so the CI step fails loudly.
//!
//! ```text
//! cargo run --release -p repro-bench --bin bench_check [-- path/to/BENCH_physics.json]
//! ```

use perfmodel::ScalingFit;
use serde::Value;

fn num(v: &Value, key: &str) -> Option<f64> {
    match v.get(key) {
        Some(Value::Num(n)) => Some(*n),
        _ => None,
    }
}

fn text<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match v.get(key) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn boolean(v: &Value, key: &str) -> Option<bool> {
    match v.get(key) {
        Some(Value::Bool(b)) => Some(*b),
        _ => None,
    }
}

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../BENCH_physics.json")
            .to_string_lossy()
            .into_owned()
    });
    let raw = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_check: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let root: Value = match serde_json::from_str(&raw) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_check: {path} is not valid JSON: {e}");
            std::process::exit(1);
        }
    };

    let mut errors: Vec<String> = Vec::new();
    let mut check = |ok: bool, msg: String| {
        if !ok {
            errors.push(msg);
        }
    };

    // --- header ---------------------------------------------------------
    let schema = num(&root, "schema_version").unwrap_or(0.0);
    check(
        schema == 2.0,
        format!("schema_version must be 2, got {schema}"),
    );
    let host_cores = num(&root, "host_cores").unwrap_or(0.0);
    check(
        host_cores >= 1.0,
        format!("host_cores must be >= 1, got {host_cores}"),
    );
    check(
        text(&root, "unit") == Some("ms_per_step"),
        "unit must be \"ms_per_step\"".into(),
    );

    // --- measurement rows ------------------------------------------------
    let rows = match root.get("measurements") {
        Some(Value::Seq(rows)) if !rows.is_empty() => rows.clone(),
        _ => {
            eprintln!("bench_check: measurements must be a non-empty array");
            std::process::exit(1);
        }
    };
    // (resolution, workers=1) -> per-path time, for the lanes gate below.
    let mut at_one: Vec<(f64, String, f64)> = Vec::new();
    let mut honest_lanes_rows = 0usize;
    for (i, row) in rows.iter().enumerate() {
        let res = num(row, "resolution_km").unwrap_or(-1.0);
        check(res > 0.0, format!("row {i}: bad resolution_km"));
        let workers = num(row, "workers").unwrap_or(-1.0);
        check(workers >= 1.0, format!("row {i}: bad workers"));
        let pooled = num(row, "pooled_ms").unwrap_or(-1.0);
        check(pooled > 0.0, format!("row {i}: bad pooled_ms"));
        let path = text(row, "kernel_path").unwrap_or("");
        check(
            path == "scalar" || path == "lanes",
            format!("row {i}: kernel_path must be scalar|lanes, got {path:?}"),
        );
        match row.get("grid") {
            Some(Value::Seq(g)) if g.len() == 2 => {}
            _ => check(false, format!("row {i}: grid must be [nx, ny]")),
        }
        let valid = match boolean(row, "scaling_valid") {
            Some(v) => v,
            None => {
                check(false, format!("row {i}: missing scaling_valid"));
                false
            }
        };
        // The honesty rule: oversubscribed rows must say so.
        check(
            workers <= host_cores || !valid,
            format!(
                "row {i}: workers {workers} > host_cores {host_cores} but scaling_valid=true \
                 (oversubscription sold as scaling)"
            ),
        );
        if valid && path == "lanes" {
            honest_lanes_rows += 1;
        }
        if workers == 1.0 {
            at_one.push((res, path.to_string(), pooled));
        }
    }

    // --- lanes must not regress below scalar at workers = 1 --------------
    let mut grids: Vec<f64> = at_one.iter().map(|(r, _, _)| *r).collect();
    grids.sort_by(|a, b| a.partial_cmp(b).expect("finite resolutions"));
    grids.dedup();
    for res in grids {
        let time_of = |want: &str| {
            at_one
                .iter()
                .find(|(r, p, _)| *r == res && p == want)
                .map(|(_, _, t)| *t)
        };
        match (time_of("scalar"), time_of("lanes")) {
            (Some(scalar), Some(lanes)) => check(
                lanes <= scalar,
                format!(
                    "{res} km @ 1 worker: lanes {lanes:.3} ms is SLOWER than scalar \
                     {scalar:.3} ms — the vectorized path regressed"
                ),
            ),
            _ => check(
                false,
                format!("{res} km: missing scalar or lanes row at workers = 1"),
            ),
        }
    }

    // --- fit section ------------------------------------------------------
    match root.get("fit") {
        Some(Value::Null) => {
            check(
                text(&root, "fit_refusal").is_some(),
                "fit is null but no fit_refusal reason is given".into(),
            );
        }
        Some(fit @ Value::Map(_)) => {
            let used = num(fit, "used_samples").unwrap_or(0.0);
            check(
                used >= ScalingFit::MIN_SAMPLES as f64,
                format!(
                    "fit claims only {used} samples; emitting a fit needs >= {}",
                    ScalingFit::MIN_SAMPLES
                ),
            );
            check(
                honest_lanes_rows >= ScalingFit::MIN_SAMPLES,
                format!("fit emitted but only {honest_lanes_rows} scaling_valid lanes rows exist"),
            );
            let r2 = num(fit, "r_squared");
            check(
                r2.is_some_and(|r| (0.0..=1.0).contains(&r)),
                format!("fit r_squared must be in [0, 1], got {r2:?}"),
            );
            match fit.get("coeffs") {
                Some(Value::Seq(c)) if c.len() == 4 => {}
                other => check(
                    false,
                    format!("fit coeffs must be 4 numbers, got {other:?}"),
                ),
            }
            match fit.get("held_out") {
                Some(h @ Value::Map(_)) => {
                    check(
                        num(h, "rel_error").is_some_and(|e| e >= 0.0),
                        "held_out must report a non-negative rel_error".into(),
                    );
                }
                _ => check(false, "fit must carry a held_out section".into()),
            }
        }
        other => check(false, format!("fit must be a map or null, got {other:?}")),
    }

    if errors.is_empty() {
        println!(
            "bench_check: {path} OK ({} rows, {honest_lanes_rows} honest lanes rows)",
            rows.len()
        );
    } else {
        eprintln!("bench_check: {path} FAILED:");
        for e in &errors {
            eprintln!("  - {e}");
        }
        std::process::exit(1);
    }
}
