//! Table III: resolutions for different pressure values — the schedule
//! itself, plus a live trace of when the Aila simulation actually
//! triggered each stage (the dynamic behaviour Table III drives).

use cyclone::Mission;
use repro_bench::write_artifact;
use wrf::WrfModel;

fn main() {
    let mission = Mission::aila();
    println!("Table III — resolutions for different pressure values\n");
    println!("{:>15} {:>17}", "Pressure (hPa)", "Resolution (km)");
    let mut csv = String::from("pressure_hpa,resolution_km\n");
    for stage in &mission.schedule.stages {
        println!("{:>15} {:>17}", stage.pressure_hpa, stage.resolution_km);
        csv.push_str(&format!("{},{}\n", stage.pressure_hpa, stage.resolution_km));
    }
    println!(
        "\nnest spawned below {} hPa; nest resolution = parent/3 (finest {} km → {:.2} km)\n",
        mission.schedule.nest_spawn_hpa,
        mission.schedule.finest_km(),
        mission.schedule.finest_km() / 3.0
    );

    // Live trace: integrate the mission and report first-crossing times.
    println!("stage activation during the simulated Aila lifecycle:");
    let mut model = WrfModel::new(mission.model).expect("valid mission model");
    let mut current = mission.schedule.default_resolution_km;
    let mut nest = false;
    let mut trace = String::from("sim_time,event\n");
    let mut hour = 0.0;
    while hour < mission.duration_hours {
        hour += 0.5;
        model
            .advance_to_minutes(hour * 60.0, 1)
            .expect("finite integration");
        let p = model.min_pressure_hpa();
        let (res, want_nest) = mission.schedule.apply_with_hysteresis(p, current, nest);
        if want_nest && !nest {
            println!(
                "  {}  pressure {:6.1} hPa -> nest spawned",
                Mission::format_sim_time(model.sim_minutes()),
                p
            );
            trace.push_str(&format!(
                "{},nest_spawned\n",
                Mission::format_sim_time(model.sim_minutes())
            ));
            model.spawn_nest();
            nest = true;
        }
        if res != current {
            println!(
                "  {}  pressure {:6.1} hPa -> resolution {} km (nest {:.2} km)",
                Mission::format_sim_time(model.sim_minutes()),
                p,
                res,
                res / 3.0
            );
            trace.push_str(&format!(
                "{},resolution_{}km\n",
                Mission::format_sim_time(model.sim_minutes()),
                res
            ));
            model.set_resolution(res).expect("schedule resolution");
            current = res;
        }
    }
    write_artifact("table3_schedule.csv", &csv);
    write_artifact("table3_activation_trace.csv", &trace);
}
