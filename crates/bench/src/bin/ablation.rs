//! Ablation studies over the framework's design choices.
//!
//! DESIGN.md §6 documents several policy constants the paper leaves
//! implicit; this binary quantifies what each one buys by re-running the
//! canonical experiments with the knob moved:
//!
//! 1. **decision interval** — the paper's 1.5 h epoch vs. faster/slower
//!    managers,
//! 2. **restart overhead** — how sensitive the outcome is to the
//!    checkpoint-restart cost,
//! 3. **network variability** — ideal links vs. the modelled WAN jitter,
//! 4. **algorithm ladder** — static baseline vs. greedy vs. optimization
//!    on every site (the framework's whole value proposition in one
//!    table),
//! 5. **checkpoint cadence** — the live durable pipeline timed end-to-end
//!    at different checkpoint intervals (and with durability off), so the
//!    crash-consistency tax is a measured number rather than folklore.
//!
//! Each row is a full mission; everything still runs in seconds.

use adaptive_core::decision::AlgorithmKind;
use adaptive_core::online::{run_online, OnlineOptions};
use adaptive_core::orchestrator::{Orchestrator, RunOptions, RunOutcome};
use adaptive_core::recovery::DurabilityOptions;
use cyclone::{Mission, Site, SiteKind};
use repro_bench::write_artifact;
use std::time::Instant;

fn row(out: &RunOutcome) -> String {
    format!(
        "completed={:<5} wall={:>6.1}h frames={:>4} minfree={:>5.1}% stalls={} restarts={}",
        out.completed,
        out.wall_hours,
        out.frames_written,
        out.min_free_disk_pct,
        out.stalls,
        out.restarts
    )
}

fn run_with(
    kind: SiteKind,
    algo: AlgorithmKind,
    opts: RunOptions,
    mutate: impl FnOnce(&mut Site, &mut Mission),
) -> RunOutcome {
    let mut site = Site::of_kind(kind);
    let mut mission = Mission::aila();
    mutate(&mut site, &mut mission);
    Orchestrator::new(site, mission, algo)
        .with_options(opts)
        .run()
}

fn main() {
    let capped = RunOptions {
        wall_cap_hours: 60.0,
        ..Default::default()
    };
    let mut csv = String::from(
        "study,variant,site,algorithm,completed,wall_hours,min_free_pct,frames,stalls\n",
    );
    let mut record = |study: &str, variant: &str, out: &RunOutcome| {
        csv.push_str(&format!(
            "{study},{variant},{},{},{},{:.2},{:.2},{},{}\n",
            out.site_label,
            out.algorithm.label(),
            out.completed,
            out.wall_hours,
            out.min_free_disk_pct,
            out.frames_written,
            out.stalls
        ));
    };

    println!("=== ablation 1: decision interval (intra-country, optimization) ===");
    for hours in [0.5, 1.5, 3.0, 6.0] {
        let out = run_with(
            SiteKind::IntraCountry,
            AlgorithmKind::Optimization,
            capped.clone(),
            |_, m| m.decision_interval_hours = hours,
        );
        println!("  epoch {hours:>4} h : {}", row(&out));
        record("decision_interval", &format!("{hours}h"), &out);
    }
    println!("(too-slow managers miss regime changes; too-fast ones add restart churn)\n");

    println!("=== ablation 2: restart overhead (inter-department, optimization) ===");
    for secs in [0.0, 180.0, 900.0, 3600.0] {
        let out = run_with(
            SiteKind::InterDepartment,
            AlgorithmKind::Optimization,
            capped.clone(),
            |s, _| s.cluster.restart_overhead_secs = secs,
        );
        println!("  restart {secs:>5.0} s : {}", row(&out));
        record("restart_overhead", &format!("{secs}s"), &out);
    }
    println!();

    println!("=== ablation 3: network variability (cross-continent, optimization) ===");
    for var in [0.0, 0.3, 0.6] {
        let out = run_with(
            SiteKind::CrossContinent,
            AlgorithmKind::Optimization,
            capped.clone(),
            |s, _| s.variability = var,
        );
        println!("  jitter ±{:>3.0}% : {}", var * 100.0, row(&out));
        record("net_variability", &format!("{var}"), &out);
    }
    println!("(the EMA bandwidth probe keeps the LP stable under jitter)\n");

    println!("=== ablation 4: the algorithm ladder (all sites) ===");
    for kind in SiteKind::all() {
        for algo in AlgorithmKind::all() {
            let out = run_with(kind, algo, capped.clone(), |_, _| {});
            println!(
                "  {:<16} {:<22}: {}",
                out.site_label,
                out.algorithm.label(),
                row(&out)
            );
            record("ladder", "-", &out);
        }
        println!();
    }

    println!("=== ablation 5: checkpoint cadence (live durable pipeline) ===");
    // The live pipeline, wall-clock timed: durability off, then durable
    // state at successively tighter checkpoint cadences. Every variant
    // runs the same compressed mission, so elapsed real time isolates the
    // journal + checkpoint overhead. StaticBaseline keeps the output
    // schedule identical across variants.
    let site = Site::inter_department();
    let mut mission = Mission::aila().with_duration_hours(2.0).with_decimation(16);
    mission.decision_interval_hours = 0.5;
    let mut baseline_secs = None;
    for cadence_min in [0.0_f64, 60.0, 30.0, 10.0] {
        let durable = cadence_min > 0.0;
        let tag = if durable {
            format!("ablation-ckpt-{cadence_min}")
        } else {
            "ablation-ckpt-none".to_string()
        };
        let state_dir = std::env::temp_dir().join(format!("adaptive-{tag}-{}", std::process::id()));
        // Best of five repetitions: a single run is ~tens of ms, where
        // one cold fsync or a scheduler hiccup would swamp the signal.
        let mut elapsed = f64::INFINITY;
        let mut report = None;
        for _ in 0..5 {
            let mut options = OnlineOptions::fast(&tag);
            if durable {
                let _ = std::fs::remove_dir_all(&state_dir);
                options = options.with_durability(
                    DurabilityOptions::new(&state_dir).with_checkpoint_every_min(cadence_min),
                );
            }
            let started = Instant::now();
            let r = run_online(&site, &mission, AlgorithmKind::StaticBaseline, &options);
            elapsed = elapsed.min(started.elapsed().as_secs_f64());
            report = Some(r);
        }
        let report = report.expect("five repetitions ran");
        if durable {
            let _ = std::fs::remove_dir_all(&state_dir);
        }
        let overhead = match baseline_secs {
            None => {
                baseline_secs = Some(elapsed);
                String::from("(baseline)")
            }
            Some(base) => format!("{:+.1}% vs volatile", 100.0 * (elapsed - base) / base),
        };
        let variant = if durable {
            format!("{cadence_min}min")
        } else {
            "volatile".to_string()
        };
        println!(
            "  cadence {variant:>8}: completed={} frames={:>3} elapsed={:>6.3}s {overhead}",
            report.completed, report.frames_written, elapsed
        );
        csv.push_str(&format!(
            "checkpoint_cadence,{variant},{},{},{},{:.6},{:.2},{},{}\n",
            site.label,
            AlgorithmKind::StaticBaseline.label(),
            report.completed,
            elapsed / 3600.0,
            report.final_free_disk_pct,
            report.frames_written,
            report.stalls
        ));
    }
    println!("(fsync-per-frame journaling plus periodic snapshots, priced in wall time)\n");

    write_artifact("ablation.csv", &csv);
}
