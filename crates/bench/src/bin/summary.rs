//! §V headline summary: runs all six experiments (3 sites × 2 algorithms)
//! and prints the paper's abstract-level comparison — simulation-rate
//! gain, storage saving, completion/stall behaviour — plus a CSV of the
//! per-run outcomes.
//!
//! Paper claims being checked (shape, not absolute numbers):
//! - optimization completes the entire simulation for all three network
//!   configurations; greedy stalls on the cross-continent link,
//! - optimization provides ≈30% higher simulation rate,
//! - optimization consumes ≈25–50% less storage, avoiding disk overflow,
//! - optimization's output interval is near-constant (consistent QoS).

use adaptive_core::metrics;
use cyclone::SiteKind;
use repro_bench::{outcome_line, run_pair, write_artifact};

fn main() {
    println!("=== §V summary: six canonical experiments ===\n");
    let mut csv = String::from(
        "site,algorithm,completed,ended_stalled,wall_hours,sim_minutes,frames_written,\
         frames_shipped,frames_rendered,restarts,stalls,min_free_pct,final_free_pct\n",
    );
    let mut comparisons = Vec::new();

    for kind in SiteKind::all() {
        let (greedy, opt) = run_pair(kind);
        println!("{}", outcome_line(&greedy));
        println!("{}", outcome_line(&opt));
        for out in [&greedy, &opt] {
            csv.push_str(&format!(
                "{},{},{},{},{:.3},{:.1},{},{},{},{},{},{:.2},{:.2}\n",
                out.site_label,
                out.algorithm.label(),
                out.completed,
                out.ended_stalled,
                out.wall_hours,
                out.sim_minutes,
                out.frames_written,
                out.frames_shipped,
                out.frames_rendered,
                out.restarts,
                out.stalls,
                out.min_free_disk_pct,
                out.final_free_disk_pct,
            ));
        }
        // Which force drove the LP's choices over this run?
        if let Some(binding) = opt.series.get("binding_constraint") {
            let mut counts = [0usize; 4];
            for &(_, code) in &binding.points {
                counts[(code as usize).min(3)] += 1;
            }
            println!(
                "  optimization binding constraints: machine {} / disk {} / viz {} / infeasible {}",
                counts[0], counts[1], counts[2], counts[3]
            );
        }
        let c = metrics::compare(&greedy, &opt);
        println!(
            "  -> sim-rate gain {:+.1}%  storage saving {:+.1}%  mid-run viz gain {:+.1} sim-min  \
             OI variation greedy {:.2} vs opt {:.2}\n",
            c.sim_rate_gain_pct,
            c.storage_saving_pct,
            c.viz_progress_gain_min,
            c.oi_variation.0,
            c.oi_variation.1
        );
        comparisons.push(c);
    }

    write_artifact("summary.csv", &csv);

    println!("=== paper-shape checklist ===");
    let cross = &comparisons[2];
    println!(
        "optimization completes everywhere ........ {}",
        comparisons.iter().all(|c| c.completed.1)
    );
    println!(
        "greedy fails cross-continent ............. {}",
        !cross.completed.0
    );
    println!(
        "optimization ahead at mid-run viz ........ {}",
        comparisons.iter().all(|c| c.viz_progress_gain_min > 0.0)
    );
    println!(
        "optimization rate gain (paper ~30%) ...... {:+.1}% / {:+.1}% / {:+.1}%",
        comparisons[0].sim_rate_gain_pct,
        comparisons[1].sim_rate_gain_pct,
        comparisons[2].sim_rate_gain_pct
    );
    println!(
        "storage saving (paper ~25-50%) ........... {:+.1}% / {:+.1}% / {:+.1}%",
        comparisons[0].storage_saving_pct,
        comparisons[1].storage_saving_pct,
        comparisons[2].storage_saving_pct
    );
    println!(
        "OI variation (σ/μ) greedy vs opt ......... {:.2}/{:.2}  {:.2}/{:.2}  {:.2}/{:.2}",
        comparisons[0].oi_variation.0,
        comparisons[0].oi_variation.1,
        comparisons[1].oi_variation.0,
        comparisons[1].oi_variation.1,
        comparisons[2].oi_variation.0,
        comparisons[2].oi_variation.1
    );
    // The paper's QoS argument is about the starved link; the ordering on
    // the intermediate link is RNG-sensitive (EXPERIMENTS.md deviation 5).
    println!(
        "opt OI steadier on the starved link ...... {}",
        comparisons[2].oi_variation.1 <= comparisons[2].oi_variation.0 + 1e-9
    );
}
