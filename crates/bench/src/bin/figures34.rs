//! Figures 3 & 4: the qualitative views.
//!
//! Figure 3 — "Windspeed visualization in finer resolution nest inside
//! parent domain": a windspeed pseudocolor of the parent with the nest
//! window outlined, plus the nest-only view.
//!
//! Figure 4 — "Visualization of Perturbation Pressure at 18:00 hours on
//! 23rd, 24th and 25th May, 2009": pressure pseudocolor frames at those
//! three epochs, with the coastline and eye marked, and the accumulated
//! track written as CSV.
//!
//! Images land under `results/` as PPM files.

use cyclone::Mission;
use repro_bench::{results_dir, write_artifact};
use viz::{FrameRenderer, TrackLog};
use wrf::WrfModel;

fn main() {
    // Decimation 4: sharper fields than the experiment default, still fast.
    let mission = Mission::aila();
    let cfg = mission.model.with_decimation(4);
    let mut model = WrfModel::new(cfg).expect("valid model");
    let mut track = TrackLog::new();

    // The paper's three epochs: 18:00 on May 23/24/25 = t = 24 h/48 h/72 h
    // — the mission ends at 60 h, so the last panel is taken at the final
    // state (25-May 06:00), as the experiments were also stopped early.
    let epochs_min = [24.0 * 60.0, 48.0 * 60.0, 60.0 * 60.0];
    let renderer = FrameRenderer {
        scale: 3,
        ..Default::default()
    };

    for (i, &target) in epochs_min.iter().enumerate() {
        model
            .advance_to_minutes(target, 2)
            .expect("finite integration");
        let p = model.min_pressure_hpa();
        let (res, nest) = mission.schedule.apply_with_hysteresis(
            p,
            model.config().resolution_km,
            model.has_nest(),
        );
        if nest && !model.has_nest() {
            model.spawn_nest();
        }
        if res != model.config().resolution_km {
            model.set_resolution(res).expect("schedule resolution");
        }
        let frame = model.frame();
        track.ingest(&frame);

        let label = Mission::format_sim_time(model.sim_minutes()).replace([' ', ':'], "_");
        // Figure 4 panel: perturbation pressure.
        let img = renderer.render(&frame).expect("full frame renders");
        let path = results_dir().join(format!("fig4_pressure_{label}.ppm"));
        img.save_ppm(&path).expect("results dir writable");
        println!(
            "fig4 panel {}: {} — min pressure {:.1} hPa, eye at ({:.1}E, {:.1}N) -> {}",
            i + 1,
            Mission::format_sim_time(model.sim_minutes()),
            p,
            model.eye_lonlat().0,
            model.eye_lonlat().1,
            path.display()
        );

        // Figure 3: windspeed with the nest, once the nest exists.
        if model.has_nest() {
            let wind = FrameRenderer {
                scalar: viz::ScalarField::Windspeed,
                scale: 3,
                ..Default::default()
            };
            let full = wind.render(&frame).expect("parent renders");
            let nest_view = wind.render_nest(&frame).expect("nest renders");
            let p1 = results_dir().join(format!("fig3_windspeed_parent_{label}.ppm"));
            let p2 = results_dir().join(format!("fig3_windspeed_nest_{label}.ppm"));
            full.save_ppm(&p1).expect("writable");
            nest_view.save_ppm(&p2).expect("writable");
            println!(
                "fig3: windspeed max {:.1} m/s, parent+nest views -> {} , {}",
                model.max_wind_ms(),
                p1.display(),
                p2.display()
            );
        }
    }

    write_artifact("fig4_track.csv", &track.to_csv());
    println!(
        "track: {} fixes, {:.1} degrees long, deepest {:.1} hPa",
        track.fixes().len(),
        track.length_deg(),
        track.min_pressure().expect("fixes exist")
    );
}
