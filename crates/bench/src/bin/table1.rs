//! Table I: illustration of disk-space limitation.
//!
//! "Climate simulation of grid size 4486×4486 points, 10 KM resolution
//! [≈31 GB of output per frame], execution on 16,384 cores with 1.2
//! seconds of execution time per time step, and I/O bandwidth of about
//! 5 GBps" — for disks of {5, 100, 300, 500} TB and networks of
//! {1, 10} Gbps, when does the stable storage become full?
//!
//! Two independent computations, printed side by side:
//! 1. the closed-form fill-time model (production rate minus drain rate),
//! 2. a discrete-event replay of the same pipeline (steps, frame writes,
//!    FIFO transfers against a byte-accurate disk) — validating that the
//!    orchestration machinery reproduces the arithmetic.

use des::{run_until_empty, Scheduler};
use repro_bench::write_artifact;
use resources::{Disk, FrameStore};

/// One frame is produced per solve-plus-write cycle; the disk fills when
/// cumulative production minus cumulative drain exceeds capacity.
fn analytic_fill_secs(
    disk_bytes: f64,
    net_bps: f64,
    frame_bytes: f64,
    step_secs: f64,
    io_bps: f64,
) -> f64 {
    let cycle = step_secs + frame_bytes / io_bps;
    let production = frame_bytes / cycle;
    let net = production - net_bps;
    assert!(net > 0.0, "with these parameters the disk never fills");
    disk_bytes / net
}

/// DES replay: the simulation writes a frame every cycle; the sender
/// ships FIFO at `net_bps`; report the time of the first rejected write.
fn des_fill_secs(
    disk_bytes: u64,
    net_bps: f64,
    frame_bytes: u64,
    step_secs: f64,
    io_bps: f64,
) -> f64 {
    #[derive(PartialEq)]
    enum Ev {
        FrameDone,
        TransferDone,
    }
    struct W {
        store: FrameStore,
        sending: Option<u64>,
        full_at: Option<f64>,
        net_bps: f64,
        frame_bytes: u64,
        cycle: f64,
    }
    let cycle = step_secs + frame_bytes as f64 / io_bps;
    let mut w = W {
        store: FrameStore::new(Disk::new(disk_bytes)),
        sending: None,
        full_at: None,
        net_bps,
        frame_bytes,
        cycle,
    };
    let mut sched: Scheduler<Ev> = Scheduler::new();
    sched.schedule_in(cycle, Ev::FrameDone);
    run_until_empty(&mut sched, &mut w, |w, now, ev, sched| {
        match ev {
            Ev::FrameDone => {
                if w.store.store(now.as_mins(), w.frame_bytes).is_err() {
                    w.full_at = Some(now.as_secs());
                    return false;
                }
                sched.schedule_in(w.cycle, Ev::FrameDone);
            }
            Ev::TransferDone => {
                let id = w.sending.take().expect("transfer in flight");
                w.store.complete_transfer(id).expect("tracked frame");
            }
        }
        if w.sending.is_none() {
            if let Some(meta) = w.store.begin_transfer() {
                w.sending = Some(meta.id);
                sched.schedule_in(meta.bytes as f64 / w.net_bps, Ev::TransferDone);
            }
        }
        true
    });
    w.full_at.expect("parameters guarantee overflow")
}

fn human(secs: f64) -> String {
    if secs < 3600.0 {
        format!("{:.0} minutes", secs / 60.0)
    } else {
        format!("{:.1} hours", secs / 3600.0)
    }
}

fn main() {
    // Paper parameters. "About 5 GBps" I/O reproduces the printed rows
    // best at 4 GBps (their own rows imply a ~9 s produce cycle).
    let frame = 31e9;
    let step = 1.2;
    let io = 4e9;
    println!("Table I — time until stable storage becomes full");
    println!("(4486x4486 grid, 10 km, 31 GB/frame, 1.2 s/step, ~5 GBps I/O)\n");
    println!(
        "{:>10} {:>10} | {:>12} {:>12} | {:>10}",
        "Disk", "Network", "analytic", "DES replay", "paper"
    );
    let paper_rows = [
        ("5 TB", "1 Gbps", 5e12, 1e9, "25 min"),
        ("5 TB", "10 Gbps", 5e12, 10e9, "36 min"),
        ("100 TB", "1 Gbps", 100e12, 1e9, "8 hours"),
        ("100 TB", "10 Gbps", 100e12, 10e9, "12 hours"),
        ("300 TB", "1 Gbps", 300e12, 1e9, "24.5 hours"),
        ("300 TB", "10 Gbps", 300e12, 10e9, "36 hours"),
        ("500 TB", "1 Gbps", 500e12, 1e9, "41 hours"),
        ("500 TB", "10 Gbps", 500e12, 10e9, "60 hours"),
    ];
    let mut csv = String::from("disk,network,analytic_secs,des_secs,paper\n");
    for (disk_label, net_label, disk, net_bits) in
        paper_rows.iter().map(|&(d, n, db, nb, _)| (d, n, db, nb))
    {
        let net = net_bits / 8.0;
        let a = analytic_fill_secs(disk, net, frame, step, io);
        let d = des_fill_secs(disk as u64, net, frame as u64, step, io);
        let paper = paper_rows
            .iter()
            .find(|&&(dl, nl, _, _, _)| dl == disk_label && nl == net_label)
            .map(|&(_, _, _, _, p)| p)
            .expect("row exists");
        println!(
            "{:>10} {:>10} | {:>12} {:>12} | {:>10}",
            disk_label,
            net_label,
            human(a),
            human(d),
            paper
        );
        // The two computations must agree closely: the DES lags the
        // continuous model by at most one produce cycle plus the frame
        // that is in flight (its bytes free only at transfer completion).
        let slack = (step + frame / io) + frame / net + 1.0;
        assert!(
            (a - d).abs() <= slack,
            "analytic {a:.1}s vs DES {d:.1}s (slack {slack:.1}s)"
        );
        csv.push_str(&format!("{disk_label},{net_label},{a:.1},{d:.1},{paper}\n"));
    }
    write_artifact("table1_fill_times.csv", &csv);
}
