//! Figure 8: adaptivity of the framework — variation in the number of
//! processors (left y-axis) and output interval (right y-axis) against
//! wall-clock time, for the inter-department (a) and cross-continent (b)
//! configurations.
//!
//! Paper shapes: greedy starts at maximum processors and the 3-minute
//! interval, then reacts — interval up, processors down — as the disk
//! drains; the optimization method settles near its steady state from the
//! first epoch and varies little between genuine regime changes.

use cyclone::SiteKind;
use repro_bench::{run_pair, sample_series, wall_label, write_artifact};

fn main() {
    let mut csv = String::from("config,algorithm,wall_secs,wall_label,procs,output_interval_min\n");
    for (panel, kind) in ["a", "b"]
        .iter()
        .zip([SiteKind::InterDepartment, SiteKind::CrossContinent])
    {
        let (greedy, opt) = run_pair(kind);
        println!(
            "--- Fig 8({panel}) {} — processors and output interval vs wall clock ---",
            greedy.site_label
        );
        println!(
            "{:>9} | {:>12} {:>8} | {:>12} {:>8}",
            "wall", "greedy procs", "g. OI", "opt procs", "o. OI"
        );
        let step = 1.5 * 3600.0; // the decision epoch
        let gp = sample_series(&greedy, "procs", step);
        let go = sample_series(&greedy, "output_interval", step);
        let op = sample_series(&opt, "procs", step);
        let oo = sample_series(&opt, "output_interval", step);
        for i in 0..gp.len().max(op.len()) {
            let wall = i as f64 * step;
            let cell = |s: &[(f64, f64)]| {
                s.get(i)
                    .map(|&(_, v)| format!("{v:.0}"))
                    .unwrap_or_else(|| "-".into())
            };
            println!(
                "{:>9} | {:>12} {:>8} | {:>12} {:>8}",
                wall_label(wall),
                cell(&gp),
                cell(&go),
                cell(&op),
                cell(&oo),
            );
        }
        println!();
        repro_bench::save_panel_plot(
            &format!("fig8{panel}_procs_{}.ppm", greedy.site_label),
            &format!("Fig 8({panel}) {} - processors", greedy.site_label),
            "processors",
            "procs",
            &greedy,
            &opt,
            |v| v,
        );
        repro_bench::save_panel_plot(
            &format!("fig8{panel}_oi_{}.ppm", greedy.site_label),
            &format!("Fig 8({panel}) {} - output interval", greedy.site_label),
            "output interval (sim min)",
            "output_interval",
            &greedy,
            &opt,
            |v| v,
        );
        for (algo, out) in [("Greedy-Threshold", &greedy), ("Optimization Method", &opt)] {
            let procs = sample_series(out, "procs", 1800.0);
            let oi = sample_series(out, "output_interval", 1800.0);
            for (k, &(t, p)) in procs.iter().enumerate() {
                let o = oi.get(k).map(|&(_, v)| v).unwrap_or(f64::NAN);
                csv.push_str(&format!(
                    "{},{},{},{},{:.0},{:.1}\n",
                    out.site_label,
                    algo,
                    t,
                    wall_label(t),
                    p,
                    o
                ));
            }
        }
    }
    write_artifact("fig8_adaptivity.csv", &csv);
}
