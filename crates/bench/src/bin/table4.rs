//! Table IV: simulation and visualization configurations — the three
//! sites, their clusters, disks, and links, plus the derived quantities
//! the framework actually consumes (profiled step times, allowed
//! processor counts, frame I/O costs).

use cyclone::{Mission, Site, SiteKind};
use repro_bench::write_artifact;

fn main() {
    let mission = Mission::aila();
    println!("Table IV — simulation and visualization configurations\n");
    let mut csv = String::from(
        "configuration,cluster,max_cores,disk_gb,bandwidth_mbps,io_mbps,restart_secs\n",
    );
    for site in SiteKind::all().map(Site::of_kind) {
        println!("{}:", site.label);
        println!("  cluster ................ {}", site.cluster.name);
        println!("  maximum cores .......... {}", site.cluster.max_cores);
        println!("  disk space ............. {} GB", site.disk_gb);
        println!("  avg sim-vis bandwidth .. {} Mbps", site.bandwidth_mbps);
        println!(
            "  parallel I/O ........... {:.0} MB/s",
            site.cluster.io_bps / 1e6
        );
        println!(
            "  restart overhead ....... {:.0} s",
            site.cluster.restart_overhead_secs
        );
        let t24 = site.proc_table(&mission, 24.0, false);
        let t10 = site.proc_table(&mission, 10.0, true);
        println!(
            "  profiled s/step ........ {:.1} (24 km, max cores) … {:.1} (10 km + nest)",
            t24.min_time(),
            t10.min_time()
        );
        let allowed = site.allowed_procs(&mission, 24.0, true);
        println!(
            "  allowed cores @24 km ... {} counts in [{}, {}]",
            allowed.len(),
            allowed.first().expect("non-empty"),
            allowed.last().expect("non-empty"),
        );
        println!(
            "  frame @24 km ........... {:.0} MB ({:.1} s of I/O)\n",
            mission.frame_bytes(24.0, false) as f64 / 1e6,
            site.cluster.io_time(mission.frame_bytes(24.0, false)),
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{:.0},{:.0}\n",
            site.label,
            site.cluster.name,
            site.cluster.max_cores,
            site.disk_gb,
            site.bandwidth_mbps,
            site.cluster.io_bps / 1e6,
            site.cluster.restart_overhead_secs,
        ));
    }
    write_artifact("table4_sites.csv", &csv);
}
