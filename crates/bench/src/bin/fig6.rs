//! Figure 6: free disk space with progress in executions.
//!
//! Plots the remaining-free-disk percentage (y) against wall-clock time
//! (x) per configuration and algorithm. Paper shapes: greedy dives early
//! (below 40% free on `fire` within hours) and saw-tooths; greedy
//! overflows (<10%) and stalls cross-continent; optimization stays high
//! and steady, never approaching overflow.

use cyclone::SiteKind;
use repro_bench::{run_pair, sample_series, wall_label, write_artifact};

fn main() {
    let mut csv = String::from("config,algorithm,wall_secs,wall_label,free_pct\n");
    for (panel, kind) in ["a", "b", "c"].iter().zip(SiteKind::all()) {
        let (greedy, opt) = run_pair(kind);
        println!(
            "--- Fig 6({panel}) {} — remaining free disk %% vs wall clock ---",
            greedy.site_label
        );
        println!("{:>9} | {:>7} | {:>7}", "wall", "greedy", "optim");
        let step = 2.0 * 3600.0;
        let g = sample_series(&greedy, "free_disk_pct", step);
        let o = sample_series(&opt, "free_disk_pct", step);
        for i in 0..g.len().max(o.len()) {
            let wall = i as f64 * step;
            println!(
                "{:>9} | {:>7} | {:>7}",
                wall_label(wall),
                g.get(i)
                    .map(|&(_, v)| format!("{v:.1}%"))
                    .unwrap_or_else(|| "-".into()),
                o.get(i)
                    .map(|&(_, v)| format!("{v:.1}%"))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        repro_bench::save_panel_plot(
            &format!("fig6{panel}_{}.ppm", greedy.site_label),
            &format!("Fig 6({panel}) {} - free disk", greedy.site_label),
            "free disk (%)",
            "free_disk_pct",
            &greedy,
            &opt,
            |v| v,
        );
        println!(
            "minimum free: greedy {:.1}%  optimization {:.1}%\n",
            greedy.min_free_disk_pct, opt.min_free_disk_pct
        );
        for (algo, out) in [("Greedy-Threshold", &greedy), ("Optimization Method", &opt)] {
            for (t, v) in sample_series(out, "free_disk_pct", 1800.0) {
                csv.push_str(&format!(
                    "{},{},{},{},{:.3}\n",
                    out.site_label,
                    algo,
                    t,
                    wall_label(t),
                    v
                ));
            }
        }
    }
    write_artifact("fig6_free_disk.csv", &csv);
}
