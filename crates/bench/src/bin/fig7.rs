//! Figure 7: progress at the visualization end.
//!
//! Plots, per configuration and algorithm, the simulation timestamp of the
//! most recently visualized frame (y, `DD-May HH:MM`) against wall-clock
//! time (x). Paper shapes: the greedy heuristic lags — "it tries to send
//! every time step from the simulation to the visualization site in the
//! initial stages", so its transfer queue backs up behind the slow link —
//! while the optimization method makes steady progress.

use cyclone::SiteKind;
use repro_bench::{run_pair, sample_series, sim_label, wall_label, write_artifact};

fn main() {
    let mut csv =
        String::from("config,algorithm,wall_secs,wall_label,viz_sim_minutes,viz_sim_label\n");
    for (panel, kind) in ["a", "b", "c"].iter().zip(SiteKind::all()) {
        let (greedy, opt) = run_pair(kind);
        println!(
            "--- Fig 7({panel}) {} — visualization progress vs wall clock ---",
            greedy.site_label
        );
        println!(
            "{:>9} | {:>16} | {:>16}",
            "wall", "Greedy-Threshold", "Optimization"
        );
        let step = 2.0 * 3600.0;
        let g = sample_series(&greedy, "viz_progress", step);
        let o = sample_series(&opt, "viz_progress", step);
        let horizon = (greedy.wall_hours.min(opt.wall_hours) * 3600.0 / step).ceil() as usize;
        for i in 0..=horizon {
            let wall = i as f64 * step;
            let fmt = |s: &[(f64, f64)]| {
                s.iter()
                    .take_while(|&&(t, _)| t <= wall + 1.0)
                    .last()
                    .map(|&(_, v)| sim_label(v))
                    .unwrap_or_else(|| "(none yet)".into())
            };
            println!(
                "{:>9} | {:>16} | {:>16}",
                wall_label(wall),
                fmt(&g),
                fmt(&o)
            );
        }
        // Mid-run comparison — the regime the paper's figures emphasise.
        let mid = greedy.wall_hours.min(opt.wall_hours) * 3600.0 / 2.0;
        let at = |out: &adaptive_core::orchestrator::RunOutcome| {
            adaptive_core::metrics::viz_progress_at(out, mid)
        };
        println!(
            "at mid-run ({}): greedy visualized up to {}, optimization up to {}\n",
            wall_label(mid),
            sim_label(at(&greedy)),
            sim_label(at(&opt)),
        );
        repro_bench::save_panel_plot(
            &format!("fig7{panel}_{}.ppm", greedy.site_label),
            &format!(
                "Fig 7({panel}) {} - visualization progress",
                greedy.site_label
            ),
            "visualized sim hours",
            "viz_progress",
            &greedy,
            &opt,
            |sim_min| sim_min / 60.0,
        );
        for (algo, out) in [("Greedy-Threshold", &greedy), ("Optimization Method", &opt)] {
            for (t, v) in sample_series(out, "viz_progress", 1800.0) {
                csv.push_str(&format!(
                    "{},{},{},{},{},{}\n",
                    out.site_label,
                    algo,
                    t,
                    wall_label(t),
                    v,
                    sim_label(v)
                ));
            }
        }
    }
    write_artifact("fig7_viz_progress.csv", &csv);
}
