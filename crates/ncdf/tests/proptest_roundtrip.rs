//! Property tests: arbitrary datasets round-trip bit-exactly, and arbitrary
//! byte soup never panics the decoder.

use ncdf::{AttrValue, Data, Dataset};
use proptest::prelude::*;

fn arb_attr() -> impl Strategy<Value = AttrValue> {
    prop_oneof![
        "[a-zA-Z0-9 _:-]{0,32}".prop_map(AttrValue::Text),
        // Finite floats only: NaN would break Dataset equality in the
        // roundtrip assertion (the format itself carries NaN fine).
        (-1e12f64..1e12).prop_map(AttrValue::F64),
        any::<i64>().prop_map(AttrValue::I64),
        prop::collection::vec(-1e6f64..1e6, 0..8).prop_map(AttrValue::F64List),
    ]
}

fn arb_data(len: usize) -> impl Strategy<Value = Data> {
    prop_oneof![
        prop::collection::vec(-1e6f32..1e6, len..=len).prop_map(Data::F32),
        prop::collection::vec(-1e12f64..1e12, len..=len).prop_map(Data::F64),
        prop::collection::vec(any::<i32>(), len..=len).prop_map(Data::I32),
        prop::collection::vec(any::<u8>(), len..=len).prop_map(Data::U8),
    ]
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    // Dim lengths kept small so payloads stay cheap.
    let dims = prop::collection::vec(1usize..5, 0..4);
    let attrs = prop::collection::btree_map("[a-z_]{1,12}", arb_attr(), 0..4);
    (dims, attrs).prop_flat_map(|(dim_lens, attrs)| {
        let ndims = dim_lens.len();
        // For each variable: which dims it spans (as a subset mask kept in
        // order) — generated as booleans per dim.
        let var_specs = prop::collection::vec(
            (
                prop::collection::vec(any::<bool>(), ndims..=ndims),
                0usize..4, // payload dtype selector handled below
            ),
            0..4,
        );
        (Just(dim_lens), Just(attrs), var_specs).prop_flat_map(|(dim_lens, attrs, specs)| {
            let mut strategies: Vec<BoxedStrategy<(Vec<usize>, Data)>> = Vec::new();
            for (mask, _) in &specs {
                let picked: Vec<usize> = mask
                    .iter()
                    .enumerate()
                    .filter(|(_, &m)| m)
                    .map(|(i, _)| i)
                    .collect();
                let len: usize = picked.iter().map(|&i| dim_lens[i]).product();
                let picked_clone = picked.clone();
                strategies.push(
                    arb_data(len)
                        .prop_map(move |d| (picked_clone.clone(), d))
                        .boxed(),
                );
            }
            let dim_lens2 = dim_lens.clone();
            let attrs2 = attrs.clone();
            strategies.prop_map(move |vars| {
                let mut ds = Dataset::new();
                let mut ids = Vec::new();
                for (i, &len) in dim_lens2.iter().enumerate() {
                    ids.push(ds.add_dim(format!("d{i}"), len).expect("unique dim names"));
                }
                for (k, v) in &attrs2 {
                    ds.set_attr(k.clone(), v.clone());
                }
                for (vi, (picked, data)) in vars.into_iter().enumerate() {
                    let vdims: Vec<_> = picked.iter().map(|&i| ids[i]).collect();
                    ds.add_var(format!("v{vi}"), &vdims, data)
                        .expect("shape matches by construction");
                }
                ds
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_is_identity(ds in arb_dataset()) {
        let bytes = ds.to_bytes();
        let back = Dataset::from_bytes(&bytes).expect("decodes");
        prop_assert_eq!(ds, back);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Any outcome is fine as long as it is a Result, not a panic.
        let _ = Dataset::from_bytes(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_mutated_valid_blob(
        ds in arb_dataset(),
        flips in prop::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 1..8),
    ) {
        let mut bytes = ds.to_bytes().to_vec();
        if bytes.is_empty() { return Ok(()); }
        for (idx, val) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= val;
        }
        let _ = Dataset::from_bytes(&bytes);
    }
}
