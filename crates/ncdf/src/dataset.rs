//! Dataset model: dimensions, variables, attributes.

use crate::{AttrValue, DType, Data, NcdfError};
use std::collections::BTreeMap;

/// Handle to a dimension within one [`Dataset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimId(pub(crate) u32);

impl DimId {
    /// Position of the dimension in the dataset's declaration order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A named axis with a fixed length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dim {
    /// Axis name (`south_north`, `west_east`, `bottom_top`, ...).
    pub name: String,
    /// Number of grid points along the axis.
    pub len: usize,
}

/// A typed array laid out over dataset dimensions, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    /// Variable name (`pressure`, `u`, `v`, ...).
    pub name: String,
    /// Dimension handles, slowest-varying first.
    pub dims: Vec<DimId>,
    /// Per-variable attributes (units, description, ...).
    pub attrs: BTreeMap<String, AttrValue>,
    /// The payload.
    pub data: Data,
}

impl Variable {
    /// Element type.
    pub fn dtype(&self) -> DType {
        self.data.dtype()
    }

    /// Lengths of this variable's dimensions, slowest-varying first.
    pub fn shape(&self, ds: &Dataset) -> Vec<usize> {
        self.dims
            .iter()
            .map(|&DimId(i)| ds.dims[i as usize].len)
            .collect()
    }

    /// Attribute lookup.
    pub fn attr(&self, name: &str) -> Option<&AttrValue> {
        self.attrs.get(name)
    }
}

/// An in-memory dataset: the unit that one output "frame" is encoded as.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    pub(crate) dims: Vec<Dim>,
    pub(crate) attrs: BTreeMap<String, AttrValue>,
    pub(crate) vars: Vec<Variable>,
}

impl Dataset {
    /// New empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a dimension. Names must be unique within the dataset.
    pub fn add_dim(&mut self, name: impl Into<String>, len: usize) -> Result<DimId, NcdfError> {
        let name = name.into();
        if self.dims.iter().any(|d| d.name == name) {
            return Err(NcdfError::DuplicateName(name));
        }
        let id = DimId(self.dims.len() as u32);
        self.dims.push(Dim { name, len });
        Ok(id)
    }

    /// Set (or replace) a global attribute.
    pub fn set_attr(&mut self, name: impl Into<String>, value: AttrValue) {
        self.attrs.insert(name.into(), value);
    }

    /// Global attribute lookup.
    pub fn attr(&self, name: &str) -> Option<&AttrValue> {
        self.attrs.get(name)
    }

    /// Remove a global attribute, returning its previous value.
    pub fn remove_attr(&mut self, name: &str) -> Option<AttrValue> {
        self.attrs.remove(name)
    }

    /// All global attributes in name order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Add a variable whose payload must exactly fill the product of the
    /// given dimensions.
    pub fn add_var(
        &mut self,
        name: impl Into<String>,
        dims: &[DimId],
        data: Data,
    ) -> Result<&mut Variable, NcdfError> {
        let name = name.into();
        if self.vars.iter().any(|v| v.name == name) {
            return Err(NcdfError::DuplicateName(name));
        }
        for &DimId(i) in dims {
            if i as usize >= self.dims.len() {
                return Err(NcdfError::UnknownDim(i));
            }
        }
        let expected: usize = dims
            .iter()
            .map(|&DimId(i)| self.dims[i as usize].len)
            .product();
        if expected != data.len() {
            return Err(NcdfError::ShapeMismatch {
                name,
                expected,
                actual: data.len(),
            });
        }
        self.vars.push(Variable {
            name,
            dims: dims.to_vec(),
            attrs: BTreeMap::new(),
            data,
        });
        Ok(self.vars.last_mut().expect("just pushed"))
    }

    /// Variable lookup by name.
    pub fn var(&self, name: &str) -> Option<&Variable> {
        self.vars.iter().find(|v| v.name == name)
    }

    /// All variables in insertion order.
    pub fn vars(&self) -> impl Iterator<Item = &Variable> {
        self.vars.iter()
    }

    /// All dimensions in declaration order.
    pub fn dims(&self) -> impl Iterator<Item = &Dim> {
        self.dims.iter()
    }

    /// Dimension lookup by name.
    pub fn dim(&self, name: &str) -> Option<&Dim> {
        self.dims.iter().find(|d| d.name == name)
    }

    /// Total payload bytes across all variables (excludes header overhead).
    /// This is the quantity the storage model charges per frame.
    pub fn payload_bytes(&self) -> u64 {
        self.vars
            .iter()
            .map(|v| (v.data.len() * v.dtype().size()) as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut ds = Dataset::new();
        let y = ds.add_dim("y", 2).unwrap();
        let x = ds.add_dim("x", 3).unwrap();
        ds.set_attr("res_km", AttrValue::F64(24.0));
        let v = ds.add_var("p", &[y, x], Data::F32(vec![0.0; 6])).unwrap();
        v.attrs
            .insert("units".into(), AttrValue::Text("hPa".into()));

        assert_eq!(ds.dim("y").unwrap().len, 2);
        assert_eq!(ds.attr("res_km").unwrap().as_f64(), Some(24.0));
        let p = ds.var("p").unwrap();
        assert_eq!(p.shape(&ds), vec![2, 3]);
        assert_eq!(p.attr("units").unwrap().as_text(), Some("hPa"));
        assert_eq!(ds.payload_bytes(), 24);
    }

    #[test]
    fn duplicate_dim_rejected() {
        let mut ds = Dataset::new();
        ds.add_dim("x", 1).unwrap();
        assert_eq!(
            ds.add_dim("x", 2),
            Err(NcdfError::DuplicateName("x".into()))
        );
    }

    #[test]
    fn duplicate_var_rejected() {
        let mut ds = Dataset::new();
        let x = ds.add_dim("x", 1).unwrap();
        ds.add_var("v", &[x], Data::U8(vec![0])).unwrap();
        let err = ds.add_var("v", &[x], Data::U8(vec![0])).unwrap_err();
        assert_eq!(err, NcdfError::DuplicateName("v".into()));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut ds = Dataset::new();
        let x = ds.add_dim("x", 4).unwrap();
        let err = ds.add_var("v", &[x], Data::F32(vec![0.0; 3])).unwrap_err();
        assert!(matches!(
            err,
            NcdfError::ShapeMismatch {
                expected: 4,
                actual: 3,
                ..
            }
        ));
    }

    #[test]
    fn unknown_dim_rejected() {
        let mut ds = Dataset::new();
        let err = ds.add_var("v", &[DimId(9)], Data::F32(vec![])).unwrap_err();
        assert_eq!(err, NcdfError::UnknownDim(9));
    }

    #[test]
    fn scalar_variable_via_no_dims() {
        let mut ds = Dataset::new();
        // Empty dim list: product of nothing is 1 element — a scalar.
        ds.add_var("t", &[], Data::F64(vec![42.0])).unwrap();
        assert_eq!(ds.var("t").unwrap().data.as_f64(), Some(&[42.0][..]));
    }
}
