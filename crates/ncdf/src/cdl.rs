//! CDL-style text description of a dataset (what `ncdump -h` prints for a
//! NetCDF file), plus data summaries — the debugging view climate
//! scientists expect from their file format.

use crate::{AttrValue, Dataset};
use std::fmt::Write as _;

impl Dataset {
    /// Render a CDL-like header description: dimensions, variables with
    /// their dimension lists and attributes, and global attributes.
    pub fn to_cdl(&self, name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "netcdf {name} {{");
        if self.dims().next().is_some() {
            out.push_str("dimensions:\n");
            for d in self.dims() {
                let _ = writeln!(out, "\t{} = {} ;", d.name, d.len);
            }
        }
        if self.vars().next().is_some() {
            out.push_str("variables:\n");
            for v in self.vars() {
                let dims: Vec<String> = v
                    .shape(self)
                    .iter()
                    .zip(v.dims.iter())
                    .map(|(_, id)| {
                        self.dims()
                            .nth(id.index())
                            .map(|d| d.name.clone())
                            .unwrap_or_else(|| "?".into())
                    })
                    .collect();
                let ty = match v.dtype() {
                    crate::DType::F32 => "float",
                    crate::DType::F64 => "double",
                    crate::DType::I32 => "int",
                    crate::DType::U8 => "byte",
                };
                let _ = writeln!(out, "\t{ty} {}({}) ;", v.name, dims.join(", "));
                for (k, val) in &v.attrs {
                    let _ = writeln!(out, "\t\t{}:{k} = {} ;", v.name, fmt_attr(val));
                }
                // Data summary: count plus min/max for numeric payloads.
                let vals = v.data.to_f64_vec();
                if let (Some(min), Some(max)) = (
                    vals.iter().copied().reduce(f64::min),
                    vals.iter().copied().reduce(f64::max),
                ) {
                    let _ = writeln!(out, "\t\t// {} values in [{min:.4}, {max:.4}]", vals.len());
                }
            }
        }
        if self.attrs().next().is_some() {
            out.push_str("\n// global attributes:\n");
            for (k, val) in self.attrs() {
                let _ = writeln!(out, "\t\t:{k} = {} ;", fmt_attr(val));
            }
        }
        out.push_str("}\n");
        out
    }
}

fn fmt_attr(v: &AttrValue) -> String {
    match v {
        AttrValue::Text(s) => format!("{s:?}"),
        AttrValue::F64(x) => format!("{x}"),
        AttrValue::I64(x) => format!("{x}"),
        AttrValue::F64List(xs) => xs
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    }
}

#[cfg(test)]
mod tests {
    use crate::{AttrValue, Data, Dataset};

    #[test]
    fn cdl_lists_dims_vars_and_attrs() {
        let mut ds = Dataset::new();
        ds.set_attr("title", AttrValue::Text("aila".into()));
        ds.set_attr("res_km", AttrValue::F64(24.0));
        let y = ds.add_dim("south_north", 2).unwrap();
        let x = ds.add_dim("west_east", 3).unwrap();
        let v = ds
            .add_var(
                "pressure",
                &[y, x],
                Data::F32(vec![1000.0, 1001.0, 999.0, 1002.0, 998.0, 1000.5]),
            )
            .unwrap();
        v.attrs
            .insert("units".into(), AttrValue::Text("hPa".into()));

        let cdl = ds.to_cdl("frame");
        assert!(cdl.starts_with("netcdf frame {"));
        assert!(cdl.contains("south_north = 2 ;"));
        assert!(cdl.contains("west_east = 3 ;"));
        assert!(cdl.contains("float pressure(south_north, west_east) ;"));
        assert!(cdl.contains("pressure:units = \"hPa\" ;"));
        assert!(cdl.contains("6 values in [998.0000, 1002.0000]"));
        assert!(cdl.contains(":title = \"aila\" ;"));
        assert!(cdl.contains(":res_km = 24 ;"));
        assert!(cdl.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_dataset_renders_minimal_cdl() {
        let cdl = Dataset::new().to_cdl("empty");
        assert_eq!(cdl, "netcdf empty {\n}\n");
    }

    #[test]
    fn real_frame_cdl_is_complete() {
        let model = wrf_model();
        let ds = model.frame();
        let cdl = ds.to_cdl("history");
        for name in ["eta", "u", "v", "qvapor", "pressure", "landmask"] {
            assert!(cdl.contains(name), "CDL missing {name}");
        }
        assert!(cdl.contains(":sim_minutes"));
    }

    // Tiny local helper: build a model without a dev-dependency cycle.
    fn wrf_model() -> TestModel {
        TestModel
    }
    struct TestModel;
    impl TestModel {
        fn frame(&self) -> Dataset {
            let mut ds = Dataset::new();
            ds.set_attr("sim_minutes", AttrValue::F64(0.0));
            let y = ds.add_dim("south_north", 2).unwrap();
            let x = ds.add_dim("west_east", 2).unwrap();
            for name in ["eta", "u", "v", "qvapor", "pressure"] {
                ds.add_var(name, &[y, x], Data::F32(vec![0.0; 4])).unwrap();
            }
            ds.add_var("landmask", &[y, x], Data::U8(vec![0; 4]))
                .unwrap();
            ds
        }
    }
}
