//! Binary encoder/decoder for [`Dataset`].
//!
//! Encoding uses `bytes::BufMut` over a pre-sized `BytesMut`; decoding uses
//! a bounds-checked cursor (never panics on truncated input — every read is
//! validated and surfaces [`NcdfError::Truncated`]).

use crate::dataset::{Dataset, Dim, DimId, Variable};
use crate::{AttrValue, DType, Data, NcdfError, MAGIC, VERSION};
use bytes::{BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;

// Attribute wire tags.
const ATTR_TEXT: u8 = 0;
const ATTR_F64: u8 = 1;
const ATTR_I64: u8 = 2;
const ATTR_F64LIST: u8 = 3;

impl Dataset {
    /// Serialize to a single binary blob.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_size_hint());
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        put_attrs(&mut buf, &self.attrs);
        buf.put_u32_le(self.dims.len() as u32);
        for d in &self.dims {
            put_string(&mut buf, &d.name);
            buf.put_u64_le(d.len as u64);
        }
        buf.put_u32_le(self.vars.len() as u32);
        for v in &self.vars {
            put_string(&mut buf, &v.name);
            buf.put_u8(v.dtype().tag());
            buf.put_u32_le(v.dims.len() as u32);
            for &DimId(i) in &v.dims {
                buf.put_u32_le(i);
            }
            put_attrs(&mut buf, &v.attrs);
            buf.put_u64_le(v.data.len() as u64);
            match &v.data {
                Data::F32(xs) => xs.iter().for_each(|&x| buf.put_f32_le(x)),
                Data::F64(xs) => xs.iter().for_each(|&x| buf.put_f64_le(x)),
                Data::I32(xs) => xs.iter().for_each(|&x| buf.put_i32_le(x)),
                Data::U8(xs) => buf.put_slice(xs),
            }
        }
        buf.freeze()
    }

    /// Parse a blob produced by [`Dataset::to_bytes`], validating structure
    /// and shapes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, NcdfError> {
        let mut c = Cursor::new(bytes);
        let magic = c.take(4, "magic")?;
        if magic != MAGIC {
            return Err(NcdfError::BadMagic);
        }
        let version = c.u16("version")?;
        if version != VERSION {
            return Err(NcdfError::UnsupportedVersion(version));
        }
        let attrs = get_attrs(&mut c)?;

        let ndims = c.u32("dim count")? as usize;
        c.check_count(ndims as u64, 9, "dimension")?;
        let mut dims = Vec::with_capacity(ndims);
        for _ in 0..ndims {
            let name = c.string("dim name")?;
            let len = c.u64("dim length")? as usize;
            if dims.iter().any(|d: &Dim| d.name == name) {
                return Err(NcdfError::DuplicateName(name));
            }
            dims.push(Dim { name, len });
        }

        let nvars = c.u32("var count")? as usize;
        c.check_count(nvars as u64, 10, "variable")?;
        let mut vars: Vec<Variable> = Vec::with_capacity(nvars);
        for _ in 0..nvars {
            let name = c.string("var name")?;
            if vars.iter().any(|v| v.name == name) {
                return Err(NcdfError::DuplicateName(name));
            }
            let dtype = DType::from_tag(c.u8("dtype")?).ok_or(NcdfError::BadTag(0xff))?;
            let nd = c.u32("var ndims")? as usize;
            c.check_count(nd as u64, 4, "variable dim")?;
            let mut vdims = Vec::with_capacity(nd);
            for _ in 0..nd {
                let id = c.u32("dim id")?;
                if id as usize >= dims.len() {
                    return Err(NcdfError::UnknownDim(id));
                }
                vdims.push(DimId(id));
            }
            let vattrs = get_attrs(&mut c)?;
            let count = c.u64("element count")?;
            c.check_count(count, dtype.size() as u64, "element")?;
            let count = count as usize;
            let expected: usize = vdims.iter().map(|&DimId(i)| dims[i as usize].len).product();
            if expected != count {
                return Err(NcdfError::ShapeMismatch {
                    name,
                    expected,
                    actual: count,
                });
            }
            let data = match dtype {
                DType::F32 => {
                    let raw = c.take(count * 4, "f32 payload")?;
                    Data::F32(
                        raw.chunks_exact(4)
                            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                            .collect(),
                    )
                }
                DType::F64 => {
                    let raw = c.take(count * 8, "f64 payload")?;
                    Data::F64(
                        raw.chunks_exact(8)
                            .map(|b| {
                                f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
                            })
                            .collect(),
                    )
                }
                DType::I32 => {
                    let raw = c.take(count * 4, "i32 payload")?;
                    Data::I32(
                        raw.chunks_exact(4)
                            .map(|b| i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                            .collect(),
                    )
                }
                DType::U8 => Data::U8(c.take(count, "u8 payload")?.to_vec()),
            };
            vars.push(Variable {
                name,
                dims: vdims,
                attrs: vattrs,
                data,
            });
        }
        Ok(Dataset { dims, attrs, vars })
    }

    /// Rough pre-allocation size for the encoder.
    fn encoded_size_hint(&self) -> usize {
        let payload: usize = self
            .vars
            .iter()
            .map(|v| v.data.len() * v.dtype().size())
            .sum();
        payload + 1024 + 64 * (self.vars.len() + self.dims.len() + self.attrs.len())
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_attrs(buf: &mut BytesMut, attrs: &BTreeMap<String, AttrValue>) {
    buf.put_u32_le(attrs.len() as u32);
    for (name, val) in attrs {
        put_string(buf, name);
        match val {
            AttrValue::Text(s) => {
                buf.put_u8(ATTR_TEXT);
                put_string(buf, s);
            }
            AttrValue::F64(v) => {
                buf.put_u8(ATTR_F64);
                buf.put_f64_le(*v);
            }
            AttrValue::I64(v) => {
                buf.put_u8(ATTR_I64);
                buf.put_i64_le(*v);
            }
            AttrValue::F64List(vs) => {
                buf.put_u8(ATTR_F64LIST);
                buf.put_u32_le(vs.len() as u32);
                vs.iter().for_each(|&v| buf.put_f64_le(v));
            }
        }
    }
}

fn get_attrs(c: &mut Cursor<'_>) -> Result<BTreeMap<String, AttrValue>, NcdfError> {
    let n = c.u32("attr count")? as usize;
    c.check_count(n as u64, 5, "attribute")?;
    let mut attrs = BTreeMap::new();
    for _ in 0..n {
        let name = c.string("attr name")?;
        let tag = c.u8("attr tag")?;
        let val = match tag {
            ATTR_TEXT => AttrValue::Text(c.string("attr text")?),
            ATTR_F64 => AttrValue::F64(c.f64("attr f64")?),
            ATTR_I64 => AttrValue::I64(c.i64("attr i64")?),
            ATTR_F64LIST => {
                let len = c.u32("attr list len")? as usize;
                c.check_count(len as u64, 8, "attr list element")?;
                let mut vs = Vec::with_capacity(len);
                for _ in 0..len {
                    vs.push(c.f64("attr list element")?);
                }
                AttrValue::F64List(vs)
            }
            t => return Err(NcdfError::BadTag(t)),
        };
        if attrs.insert(name.clone(), val).is_some() {
            return Err(NcdfError::DuplicateName(name));
        }
    }
    Ok(attrs)
}

// ---------------------------------------------------------------------------
// Quantized + delta codec (degradation-ladder rung 1)
// ---------------------------------------------------------------------------

/// Magic bytes for the quantized/delta wire format.
pub const QUANT_MAGIC: &[u8; 4] = b"AQZ1";
/// Version written by [`encode_quantized`].
pub const QUANT_VERSION: u16 = 1;

// Per-variable encoding tags inside an AQZ1 blob.
const ENC_RAW: u8 = 0;
const ENC_QUANT: u8 = 1;

/// Lossy-compress a dataset: floating-point variables are quantized to
/// 16-bit levels over their own `[min, max]` range, delta-coded against
/// the previous element, and written as zigzag LEB128 varints; integer
/// and byte variables pass through raw. Smooth physical fields (pressure,
/// winds) compress to a small fraction of [`Dataset::to_bytes`] while
/// keeping worst-case error at `(max - min) / 65535` per value.
pub fn encode_quantized(ds: &Dataset) -> Bytes {
    let mut buf = BytesMut::with_capacity(1024 + ds.payload_bytes() as usize / 2);
    buf.put_slice(QUANT_MAGIC);
    buf.put_u16_le(QUANT_VERSION);
    put_attrs(&mut buf, &ds.attrs);
    buf.put_u32_le(ds.dims.len() as u32);
    for d in &ds.dims {
        put_string(&mut buf, &d.name);
        buf.put_u64_le(d.len as u64);
    }
    buf.put_u32_le(ds.vars.len() as u32);
    for v in &ds.vars {
        put_string(&mut buf, &v.name);
        buf.put_u8(v.dtype().tag());
        buf.put_u32_le(v.dims.len() as u32);
        for &DimId(i) in &v.dims {
            buf.put_u32_le(i);
        }
        put_attrs(&mut buf, &v.attrs);
        buf.put_u64_le(v.data.len() as u64);
        match &v.data {
            Data::F32(xs) => {
                buf.put_u8(ENC_QUANT);
                let vals: Vec<f64> = xs.iter().map(|&x| x as f64).collect();
                put_quantized(&mut buf, &vals);
            }
            Data::F64(xs) => {
                buf.put_u8(ENC_QUANT);
                put_quantized(&mut buf, xs);
            }
            Data::I32(xs) => {
                buf.put_u8(ENC_RAW);
                xs.iter().for_each(|&x| buf.put_i32_le(x));
            }
            Data::U8(xs) => {
                buf.put_u8(ENC_RAW);
                buf.put_slice(xs);
            }
        }
    }
    buf.freeze()
}

/// Decode a blob written by [`encode_quantized`] back into a [`Dataset`]
/// (lossy for floating-point variables, exact for integer/byte ones).
/// Fully validated: truncation, bad tags, and shape mismatches all
/// surface as errors, never panics.
pub fn decode_quantized(bytes: &[u8]) -> Result<Dataset, NcdfError> {
    let mut c = Cursor::new(bytes);
    let magic = c.take(4, "quant magic")?;
    if magic != QUANT_MAGIC {
        return Err(NcdfError::BadMagic);
    }
    let version = c.u16("quant version")?;
    if version != QUANT_VERSION {
        return Err(NcdfError::UnsupportedVersion(version));
    }
    let attrs = get_attrs(&mut c)?;

    let ndims = c.u32("dim count")? as usize;
    c.check_count(ndims as u64, 9, "dimension")?;
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let name = c.string("dim name")?;
        let len = c.u64("dim length")? as usize;
        if dims.iter().any(|d: &Dim| d.name == name) {
            return Err(NcdfError::DuplicateName(name));
        }
        dims.push(Dim { name, len });
    }

    let nvars = c.u32("var count")? as usize;
    c.check_count(nvars as u64, 11, "variable")?;
    let mut vars: Vec<Variable> = Vec::with_capacity(nvars);
    for _ in 0..nvars {
        let name = c.string("var name")?;
        if vars.iter().any(|v| v.name == name) {
            return Err(NcdfError::DuplicateName(name));
        }
        let dtype = DType::from_tag(c.u8("dtype")?).ok_or(NcdfError::BadTag(0xff))?;
        let nd = c.u32("var ndims")? as usize;
        c.check_count(nd as u64, 4, "variable dim")?;
        let mut vdims = Vec::with_capacity(nd);
        for _ in 0..nd {
            let id = c.u32("dim id")?;
            if id as usize >= dims.len() {
                return Err(NcdfError::UnknownDim(id));
            }
            vdims.push(DimId(id));
        }
        let vattrs = get_attrs(&mut c)?;
        let count = c.u64("element count")?;
        c.check_count(count, 1, "element")?;
        let count = count as usize;
        let expected: usize = vdims.iter().map(|&DimId(i)| dims[i as usize].len).product();
        if expected != count {
            return Err(NcdfError::ShapeMismatch {
                name,
                expected,
                actual: count,
            });
        }
        let encoding = c.u8("encoding tag")?;
        let data = match (encoding, dtype) {
            (ENC_QUANT, DType::F32) => {
                let vals = get_quantized(&mut c, count)?;
                Data::F32(vals.into_iter().map(|x| x as f32).collect())
            }
            (ENC_QUANT, DType::F64) => Data::F64(get_quantized(&mut c, count)?),
            (ENC_RAW, DType::I32) => {
                let raw = c.take(count * 4, "i32 payload")?;
                Data::I32(
                    raw.chunks_exact(4)
                        .map(|b| i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                        .collect(),
                )
            }
            (ENC_RAW, DType::U8) => Data::U8(c.take(count, "u8 payload")?.to_vec()),
            (t, _) => return Err(NcdfError::BadTag(t)),
        };
        vars.push(Variable {
            name,
            dims: vdims,
            attrs: vattrs,
            data,
        });
    }
    Ok(Dataset { dims, attrs, vars })
}

/// Quantize to u16 levels over `[min, max]`, delta-code, zigzag, LEB128.
fn put_quantized(buf: &mut BytesMut, vals: &[f64]) {
    let vmin = vals.iter().copied().fold(f64::INFINITY, f64::min);
    let vmax = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let (vmin, vmax) = if vmin.is_finite() && vmax.is_finite() {
        (vmin, vmax)
    } else {
        (0.0, 0.0)
    };
    buf.put_f64_le(vmin);
    buf.put_f64_le(vmax);
    let range = vmax - vmin;
    let mut prev: i64 = 0;
    for &x in vals {
        let q = if range > 0.0 {
            (((x - vmin) / range * 65535.0).round()).clamp(0.0, 65535.0) as i64
        } else {
            0
        };
        let delta = q - prev;
        prev = q;
        put_varint(buf, zigzag(delta));
    }
}

/// Inverse of [`put_quantized`]: read `count` levels and dequantize.
fn get_quantized(c: &mut Cursor<'_>, count: usize) -> Result<Vec<f64>, NcdfError> {
    let vmin = c.f64("quant min")?;
    let vmax = c.f64("quant max")?;
    let range = vmax - vmin;
    let mut vals = Vec::with_capacity(count);
    let mut prev: i64 = 0;
    for _ in 0..count {
        let delta = unzigzag(get_varint(c)?);
        let q = (prev + delta).clamp(0, 65535);
        prev = q;
        vals.push(if range > 0.0 {
            vmin + q as f64 / 65535.0 * range
        } else {
            vmin
        });
    }
    Ok(vals)
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(c: &mut Cursor<'_>) -> Result<u64, NcdfError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let byte = c.u8("varint")?;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(NcdfError::BadTag(0x80))
}

/// Bounds-checked little-endian reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], NcdfError> {
        if self.remaining() < n {
            return Err(NcdfError::Truncated { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, ctx: &'static str) -> Result<u8, NcdfError> {
        Ok(self.take(1, ctx)?[0])
    }

    fn u16(&mut self, ctx: &'static str) -> Result<u16, NcdfError> {
        let b = self.take(2, ctx)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, ctx: &'static str) -> Result<u32, NcdfError> {
        let b = self.take(4, ctx)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, ctx: &'static str) -> Result<u64, NcdfError> {
        let b = self.take(8, ctx)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn i64(&mut self, ctx: &'static str) -> Result<i64, NcdfError> {
        Ok(self.u64(ctx)? as i64)
    }

    fn f64(&mut self, ctx: &'static str) -> Result<f64, NcdfError> {
        Ok(f64::from_bits(self.u64(ctx)?))
    }

    fn string(&mut self, ctx: &'static str) -> Result<String, NcdfError> {
        let len = self.u32(ctx)? as usize;
        let raw = self.take(len, ctx)?;
        String::from_utf8(raw.to_vec()).map_err(|_| NcdfError::BadString)
    }

    /// Reject declared counts whose minimal encoding cannot fit in what is
    /// left of the buffer — prevents attacker/corruption-driven giant
    /// allocations before we ever read the items.
    fn check_count(
        &self,
        count: u64,
        min_item_bytes: u64,
        context: &'static str,
    ) -> Result<(), NcdfError> {
        if count.saturating_mul(min_item_bytes.max(1)) > self.remaining() as u64 {
            return Err(NcdfError::CountTooLarge { context, count });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut ds = Dataset::new();
        ds.set_attr("title", AttrValue::Text("frame".into()));
        ds.set_attr("res_km", AttrValue::F64(24.0));
        ds.set_attr("step", AttrValue::I64(42));
        ds.set_attr(
            "corners",
            AttrValue::F64List(vec![60.0, -10.0, 120.0, 40.0]),
        );
        let y = ds.add_dim("y", 2).unwrap();
        let x = ds.add_dim("x", 3).unwrap();
        let v = ds
            .add_var("p", &[y, x], Data::F32(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]))
            .unwrap();
        v.attrs
            .insert("units".into(), AttrValue::Text("hPa".into()));
        ds.add_var("mask", &[y, x], Data::U8(vec![0, 1, 0, 1, 0, 1]))
            .unwrap();
        ds.add_var("eta", &[x], Data::F64(vec![0.5, -0.5, 0.0]))
            .unwrap();
        ds.add_var("ids", &[x], Data::I32(vec![-1, 0, 1])).unwrap();
        ds
    }

    #[test]
    fn roundtrip_all_types() {
        let ds = sample();
        let bytes = ds.to_bytes();
        let back = Dataset::from_bytes(&bytes).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes().to_vec();
        bytes[0] = b'X';
        assert_eq!(Dataset::from_bytes(&bytes), Err(NcdfError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample().to_bytes().to_vec();
        bytes[4] = 0xff;
        assert!(matches!(
            Dataset::from_bytes(&bytes),
            Err(NcdfError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn every_truncation_point_errors_not_panics() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let r = Dataset::from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "decode of {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn corrupt_count_does_not_overallocate() {
        let mut bytes = sample().to_bytes().to_vec();
        // Global attr count sits right after magic+version; blow it up.
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        let r = Dataset::from_bytes(&bytes);
        assert!(matches!(r, Err(NcdfError::CountTooLarge { .. })));
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds = Dataset::new();
        let back = Dataset::from_bytes(&ds.to_bytes()).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn quantized_roundtrip_bounds_error_and_preserves_structure() {
        let ds = sample();
        let bytes = encode_quantized(&ds);
        let back = decode_quantized(&bytes).unwrap();
        assert_eq!(back.dims, ds.dims);
        assert_eq!(back.attrs, ds.attrs);
        assert_eq!(back.vars.len(), ds.vars.len());
        for (orig, got) in ds.vars.iter().zip(&back.vars) {
            assert_eq!(orig.name, got.name);
            assert_eq!(orig.dims, got.dims);
            assert_eq!(orig.attrs, got.attrs);
            assert_eq!(orig.dtype(), got.dtype());
            let a = orig.data.to_f64_vec();
            let b = got.data.to_f64_vec();
            let range = a.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - a.iter().copied().fold(f64::INFINITY, f64::min);
            let tol = match orig.dtype() {
                DType::F32 | DType::F64 => range / 65535.0 + 1e-12,
                DType::I32 | DType::U8 => 0.0, // raw passthrough is exact
            };
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() <= tol, "{} vs {} (tol {tol})", x, y);
            }
        }
    }

    #[test]
    fn quantized_compresses_smooth_fields() {
        // A smooth 2-D field like surface pressure: neighboring levels
        // differ by a few quantization steps, so deltas are 1-byte varints.
        let mut ds = Dataset::new();
        let y = ds.add_dim("y", 64).unwrap();
        let x = ds.add_dim("x", 64).unwrap();
        let vals: Vec<f64> = (0..64 * 64)
            .map(|i| {
                let (r, c) = (i / 64, i % 64);
                1000.0
                    - 40.0
                        * (-((r as f64 - 32.0).powi(2) + (c as f64 - 32.0).powi(2)) / 200.0).exp()
            })
            .collect();
        ds.add_var("pressure", &[y, x], Data::F64(vals)).unwrap();
        let raw = ds.to_bytes();
        let quant = encode_quantized(&ds);
        assert!(
            (quant.len() as f64) < raw.len() as f64 * 0.30,
            "quantized {} vs raw {}",
            quant.len(),
            raw.len()
        );
        let back = decode_quantized(&quant).unwrap();
        let a = ds.var("pressure").unwrap().data.to_f64_vec();
        let b = back.var("pressure").unwrap().data.to_f64_vec();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() <= 40.0 / 65535.0 + 1e-9);
        }
    }

    #[test]
    fn quantized_every_truncation_point_errors_not_panics() {
        let bytes = encode_quantized(&sample());
        for cut in 0..bytes.len() {
            let r = decode_quantized(&bytes[..cut]);
            assert!(r.is_err(), "decode of {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn quantized_rejects_wrong_magic_and_version() {
        let bytes = encode_quantized(&sample());
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert_eq!(decode_quantized(&bad), Err(NcdfError::BadMagic));
        let mut bad = bytes.to_vec();
        bad[4] = 0xff;
        assert!(matches!(
            decode_quantized(&bad),
            Err(NcdfError::UnsupportedVersion(_))
        ));
        // An NCDL blob fed to the quantized decoder is a magic mismatch,
        // and vice versa — the two formats cannot be confused.
        assert_eq!(
            decode_quantized(&sample().to_bytes()),
            Err(NcdfError::BadMagic)
        );
        assert_eq!(Dataset::from_bytes(&bytes), Err(NcdfError::BadMagic));
    }

    #[test]
    fn quantized_constant_field_roundtrips_exactly() {
        let mut ds = Dataset::new();
        let x = ds.add_dim("x", 5).unwrap();
        ds.add_var("c", &[x], Data::F64(vec![7.25; 5])).unwrap();
        let back = decode_quantized(&encode_quantized(&ds)).unwrap();
        assert_eq!(back.var("c").unwrap().data.to_f64_vec(), vec![7.25; 5]);
    }

    #[test]
    fn zigzag_varint_roundtrip_extremes() {
        for v in [0i64, 1, -1, 65535, -65535, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        let mut buf = BytesMut::new();
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            put_varint(&mut buf, v);
        }
        let frozen = buf.freeze();
        let mut c = Cursor::new(&frozen);
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            assert_eq!(get_varint(&mut c).unwrap(), v);
        }
    }

    #[test]
    fn payload_bytes_matches_encoded_data() {
        let ds = sample();
        // 6 f32 + 6 u8 + 3 f64 + 3 i32 = 24 + 6 + 24 + 12 = 66.
        assert_eq!(ds.payload_bytes(), 66);
        // Encoded blob is payload + bounded metadata overhead.
        assert!(ds.to_bytes().len() as u64 >= ds.payload_bytes());
    }
}
