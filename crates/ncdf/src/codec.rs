//! Binary encoder/decoder for [`Dataset`].
//!
//! Encoding uses `bytes::BufMut` over a pre-sized `BytesMut`; decoding uses
//! a bounds-checked cursor (never panics on truncated input — every read is
//! validated and surfaces [`NcdfError::Truncated`]).

use crate::dataset::{Dataset, Dim, DimId, Variable};
use crate::{AttrValue, DType, Data, NcdfError, MAGIC, VERSION};
use bytes::{BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;

// Attribute wire tags.
const ATTR_TEXT: u8 = 0;
const ATTR_F64: u8 = 1;
const ATTR_I64: u8 = 2;
const ATTR_F64LIST: u8 = 3;

impl Dataset {
    /// Serialize to a single binary blob.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_size_hint());
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        put_attrs(&mut buf, &self.attrs);
        buf.put_u32_le(self.dims.len() as u32);
        for d in &self.dims {
            put_string(&mut buf, &d.name);
            buf.put_u64_le(d.len as u64);
        }
        buf.put_u32_le(self.vars.len() as u32);
        for v in &self.vars {
            put_string(&mut buf, &v.name);
            buf.put_u8(v.dtype().tag());
            buf.put_u32_le(v.dims.len() as u32);
            for &DimId(i) in &v.dims {
                buf.put_u32_le(i);
            }
            put_attrs(&mut buf, &v.attrs);
            buf.put_u64_le(v.data.len() as u64);
            match &v.data {
                Data::F32(xs) => xs.iter().for_each(|&x| buf.put_f32_le(x)),
                Data::F64(xs) => xs.iter().for_each(|&x| buf.put_f64_le(x)),
                Data::I32(xs) => xs.iter().for_each(|&x| buf.put_i32_le(x)),
                Data::U8(xs) => buf.put_slice(xs),
            }
        }
        buf.freeze()
    }

    /// Parse a blob produced by [`Dataset::to_bytes`], validating structure
    /// and shapes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, NcdfError> {
        let mut c = Cursor::new(bytes);
        let magic = c.take(4, "magic")?;
        if magic != MAGIC {
            return Err(NcdfError::BadMagic);
        }
        let version = c.u16("version")?;
        if version != VERSION {
            return Err(NcdfError::UnsupportedVersion(version));
        }
        let attrs = get_attrs(&mut c)?;

        let ndims = c.u32("dim count")? as usize;
        c.check_count(ndims as u64, 9, "dimension")?;
        let mut dims = Vec::with_capacity(ndims);
        for _ in 0..ndims {
            let name = c.string("dim name")?;
            let len = c.u64("dim length")? as usize;
            if dims.iter().any(|d: &Dim| d.name == name) {
                return Err(NcdfError::DuplicateName(name));
            }
            dims.push(Dim { name, len });
        }

        let nvars = c.u32("var count")? as usize;
        c.check_count(nvars as u64, 10, "variable")?;
        let mut vars: Vec<Variable> = Vec::with_capacity(nvars);
        for _ in 0..nvars {
            let name = c.string("var name")?;
            if vars.iter().any(|v| v.name == name) {
                return Err(NcdfError::DuplicateName(name));
            }
            let dtype = DType::from_tag(c.u8("dtype")?).ok_or(NcdfError::BadTag(0xff))?;
            let nd = c.u32("var ndims")? as usize;
            c.check_count(nd as u64, 4, "variable dim")?;
            let mut vdims = Vec::with_capacity(nd);
            for _ in 0..nd {
                let id = c.u32("dim id")?;
                if id as usize >= dims.len() {
                    return Err(NcdfError::UnknownDim(id));
                }
                vdims.push(DimId(id));
            }
            let vattrs = get_attrs(&mut c)?;
            let count = c.u64("element count")?;
            c.check_count(count, dtype.size() as u64, "element")?;
            let count = count as usize;
            let expected: usize = vdims.iter().map(|&DimId(i)| dims[i as usize].len).product();
            if expected != count {
                return Err(NcdfError::ShapeMismatch {
                    name,
                    expected,
                    actual: count,
                });
            }
            let data = match dtype {
                DType::F32 => {
                    let raw = c.take(count * 4, "f32 payload")?;
                    Data::F32(
                        raw.chunks_exact(4)
                            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                            .collect(),
                    )
                }
                DType::F64 => {
                    let raw = c.take(count * 8, "f64 payload")?;
                    Data::F64(
                        raw.chunks_exact(8)
                            .map(|b| {
                                f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
                            })
                            .collect(),
                    )
                }
                DType::I32 => {
                    let raw = c.take(count * 4, "i32 payload")?;
                    Data::I32(
                        raw.chunks_exact(4)
                            .map(|b| i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                            .collect(),
                    )
                }
                DType::U8 => Data::U8(c.take(count, "u8 payload")?.to_vec()),
            };
            vars.push(Variable {
                name,
                dims: vdims,
                attrs: vattrs,
                data,
            });
        }
        Ok(Dataset { dims, attrs, vars })
    }

    /// Rough pre-allocation size for the encoder.
    fn encoded_size_hint(&self) -> usize {
        let payload: usize = self
            .vars
            .iter()
            .map(|v| v.data.len() * v.dtype().size())
            .sum();
        payload + 1024 + 64 * (self.vars.len() + self.dims.len() + self.attrs.len())
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_attrs(buf: &mut BytesMut, attrs: &BTreeMap<String, AttrValue>) {
    buf.put_u32_le(attrs.len() as u32);
    for (name, val) in attrs {
        put_string(buf, name);
        match val {
            AttrValue::Text(s) => {
                buf.put_u8(ATTR_TEXT);
                put_string(buf, s);
            }
            AttrValue::F64(v) => {
                buf.put_u8(ATTR_F64);
                buf.put_f64_le(*v);
            }
            AttrValue::I64(v) => {
                buf.put_u8(ATTR_I64);
                buf.put_i64_le(*v);
            }
            AttrValue::F64List(vs) => {
                buf.put_u8(ATTR_F64LIST);
                buf.put_u32_le(vs.len() as u32);
                vs.iter().for_each(|&v| buf.put_f64_le(v));
            }
        }
    }
}

fn get_attrs(c: &mut Cursor<'_>) -> Result<BTreeMap<String, AttrValue>, NcdfError> {
    let n = c.u32("attr count")? as usize;
    c.check_count(n as u64, 5, "attribute")?;
    let mut attrs = BTreeMap::new();
    for _ in 0..n {
        let name = c.string("attr name")?;
        let tag = c.u8("attr tag")?;
        let val = match tag {
            ATTR_TEXT => AttrValue::Text(c.string("attr text")?),
            ATTR_F64 => AttrValue::F64(c.f64("attr f64")?),
            ATTR_I64 => AttrValue::I64(c.i64("attr i64")?),
            ATTR_F64LIST => {
                let len = c.u32("attr list len")? as usize;
                c.check_count(len as u64, 8, "attr list element")?;
                let mut vs = Vec::with_capacity(len);
                for _ in 0..len {
                    vs.push(c.f64("attr list element")?);
                }
                AttrValue::F64List(vs)
            }
            t => return Err(NcdfError::BadTag(t)),
        };
        if attrs.insert(name.clone(), val).is_some() {
            return Err(NcdfError::DuplicateName(name));
        }
    }
    Ok(attrs)
}

/// Bounds-checked little-endian reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], NcdfError> {
        if self.remaining() < n {
            return Err(NcdfError::Truncated { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, ctx: &'static str) -> Result<u8, NcdfError> {
        Ok(self.take(1, ctx)?[0])
    }

    fn u16(&mut self, ctx: &'static str) -> Result<u16, NcdfError> {
        let b = self.take(2, ctx)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, ctx: &'static str) -> Result<u32, NcdfError> {
        let b = self.take(4, ctx)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, ctx: &'static str) -> Result<u64, NcdfError> {
        let b = self.take(8, ctx)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn i64(&mut self, ctx: &'static str) -> Result<i64, NcdfError> {
        Ok(self.u64(ctx)? as i64)
    }

    fn f64(&mut self, ctx: &'static str) -> Result<f64, NcdfError> {
        Ok(f64::from_bits(self.u64(ctx)?))
    }

    fn string(&mut self, ctx: &'static str) -> Result<String, NcdfError> {
        let len = self.u32(ctx)? as usize;
        let raw = self.take(len, ctx)?;
        String::from_utf8(raw.to_vec()).map_err(|_| NcdfError::BadString)
    }

    /// Reject declared counts whose minimal encoding cannot fit in what is
    /// left of the buffer — prevents attacker/corruption-driven giant
    /// allocations before we ever read the items.
    fn check_count(
        &self,
        count: u64,
        min_item_bytes: u64,
        context: &'static str,
    ) -> Result<(), NcdfError> {
        if count.saturating_mul(min_item_bytes.max(1)) > self.remaining() as u64 {
            return Err(NcdfError::CountTooLarge { context, count });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut ds = Dataset::new();
        ds.set_attr("title", AttrValue::Text("frame".into()));
        ds.set_attr("res_km", AttrValue::F64(24.0));
        ds.set_attr("step", AttrValue::I64(42));
        ds.set_attr(
            "corners",
            AttrValue::F64List(vec![60.0, -10.0, 120.0, 40.0]),
        );
        let y = ds.add_dim("y", 2).unwrap();
        let x = ds.add_dim("x", 3).unwrap();
        let v = ds
            .add_var("p", &[y, x], Data::F32(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]))
            .unwrap();
        v.attrs
            .insert("units".into(), AttrValue::Text("hPa".into()));
        ds.add_var("mask", &[y, x], Data::U8(vec![0, 1, 0, 1, 0, 1]))
            .unwrap();
        ds.add_var("eta", &[x], Data::F64(vec![0.5, -0.5, 0.0]))
            .unwrap();
        ds.add_var("ids", &[x], Data::I32(vec![-1, 0, 1])).unwrap();
        ds
    }

    #[test]
    fn roundtrip_all_types() {
        let ds = sample();
        let bytes = ds.to_bytes();
        let back = Dataset::from_bytes(&bytes).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes().to_vec();
        bytes[0] = b'X';
        assert_eq!(Dataset::from_bytes(&bytes), Err(NcdfError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample().to_bytes().to_vec();
        bytes[4] = 0xff;
        assert!(matches!(
            Dataset::from_bytes(&bytes),
            Err(NcdfError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn every_truncation_point_errors_not_panics() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            let r = Dataset::from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "decode of {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn corrupt_count_does_not_overallocate() {
        let mut bytes = sample().to_bytes().to_vec();
        // Global attr count sits right after magic+version; blow it up.
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        let r = Dataset::from_bytes(&bytes);
        assert!(matches!(r, Err(NcdfError::CountTooLarge { .. })));
    }

    #[test]
    fn empty_dataset_roundtrips() {
        let ds = Dataset::new();
        let back = Dataset::from_bytes(&ds.to_bytes()).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn payload_bytes_matches_encoded_data() {
        let ds = sample();
        // 6 f32 + 6 u8 + 3 f64 + 3 i32 = 24 + 6 + 24 + 12 = 66.
        assert_eq!(ds.payload_bytes(), 66);
        // Encoded blob is payload + bounded metadata overhead.
        assert!(ds.to_bytes().len() as u64 >= ds.payload_bytes());
    }
}
