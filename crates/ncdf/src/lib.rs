//! Minimal self-describing scientific array format ("NetCDF-lite").
//!
//! WRF writes its history frames as NetCDF; the paper's pipeline ships those
//! files from the simulation site to the remote visualization site, where a
//! custom VisIt plug-in reads them directly. This crate plays NetCDF's role:
//! a compact, self-describing container with named **dimensions**, typed
//! **variables** laid out over those dimensions, and **attributes** at both
//! the dataset and variable level, serialized to a single binary blob.
//!
//! The format is deliberately small but honest: everything the pipeline and
//! visualization engine need — shapes, units, timestamps, multiple typed
//! payloads per frame — round-trips through [`Dataset::to_bytes`] /
//! [`Dataset::from_bytes`] with full validation on decode.
//!
//! # Layout (version 1, little-endian)
//!
//! ```text
//! magic "NCDL" | u16 version | global attrs | dims | variables
//! attrs : u32 count, then (string name, u8 tag, payload)
//! dims  : u32 count, then (string name, u64 length)
//! vars  : u32 count, then (string name, u8 dtype, u32 ndims, u32 dim-ids,
//!         attrs, u64 element count, raw data)
//! string: u32 byte length + UTF-8 bytes
//! ```
//!
//! # Example
//!
//! ```
//! use ncdf::{Dataset, Data, AttrValue};
//!
//! let mut ds = Dataset::new();
//! ds.set_attr("title", AttrValue::Text("aila frame".into()));
//! let y = ds.add_dim("south_north", 3).unwrap();
//! let x = ds.add_dim("west_east", 2).unwrap();
//! ds.add_var("pressure", &[y, x], Data::F32(vec![1000.0; 6])).unwrap();
//!
//! let bytes = ds.to_bytes();
//! let back = Dataset::from_bytes(&bytes).unwrap();
//! assert_eq!(back.var("pressure").unwrap().shape(&back), vec![3, 2]);
//! ```

mod cdl;
pub mod codec;
mod dataset;
mod error;
mod types;

pub use dataset::{Dataset, Dim, DimId, Variable};
pub use error::NcdfError;
pub use types::{AttrValue, DType, Data};

/// Format magic bytes at the start of every encoded dataset.
pub const MAGIC: &[u8; 4] = b"NCDL";
/// Current format version written by [`Dataset::to_bytes`].
pub const VERSION: u16 = 1;
