//! Value types: element dtypes, attribute values, and typed payloads.

/// Element type of a variable's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// 32-bit IEEE float (the usual WRF history type).
    F32,
    /// 64-bit IEEE float.
    F64,
    /// 32-bit signed integer.
    I32,
    /// Raw byte (masks, category fields).
    U8,
}

impl DType {
    /// Size of one element in bytes.
    pub fn size(self) -> usize {
        match self {
            DType::F32 | DType::I32 => 4,
            DType::F64 => 8,
            DType::U8 => 1,
        }
    }

    /// Wire tag byte.
    pub(crate) fn tag(self) -> u8 {
        match self {
            DType::F32 => 0,
            DType::F64 => 1,
            DType::I32 => 2,
            DType::U8 => 3,
        }
    }

    /// Inverse of [`DType::tag`].
    pub(crate) fn from_tag(t: u8) -> Option<Self> {
        match t {
            0 => Some(DType::F32),
            1 => Some(DType::F64),
            2 => Some(DType::I32),
            3 => Some(DType::U8),
            _ => None,
        }
    }
}

/// An attribute value attached to the dataset or to a variable.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// UTF-8 text (units, descriptions, timestamps).
    Text(String),
    /// Scalar float (e.g. `resolution_km`).
    F64(f64),
    /// Scalar integer (e.g. `step_index`).
    I64(i64),
    /// Float list (e.g. corner coordinates).
    F64List(Vec<f64>),
}

impl AttrValue {
    /// The text payload, when this is a `Text` attribute.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttrValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, widening `I64` to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::F64(v) => Some(*v),
            AttrValue::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The integer payload, when this is an `I64` attribute.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            AttrValue::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// The list payload, when this is an `F64List` attribute.
    pub fn as_f64_list(&self) -> Option<&[f64]> {
        match self {
            AttrValue::F64List(v) => Some(v),
            _ => None,
        }
    }
}

/// A variable's payload: one contiguous typed array in row-major order
/// (last dimension fastest, matching NetCDF/C conventions).
#[derive(Debug, Clone, PartialEq)]
pub enum Data {
    /// 32-bit floats.
    F32(Vec<f32>),
    /// 64-bit floats.
    F64(Vec<f64>),
    /// 32-bit signed integers.
    I32(Vec<i32>),
    /// Raw bytes.
    U8(Vec<u8>),
}

impl Data {
    /// Element type of this payload.
    pub fn dtype(&self) -> DType {
        match self {
            Data::F32(_) => DType::F32,
            Data::F64(_) => DType::F64,
            Data::I32(_) => DType::I32,
            Data::U8(_) => DType::U8,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Data::F32(v) => v.len(),
            Data::F64(v) => v.len(),
            Data::I32(v) => v.len(),
            Data::U8(v) => v.len(),
        }
    }

    /// True when the payload holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// View as `f32` slice when this is an `F32` payload.
    pub fn as_f32(&self) -> Option<&[f32]> {
        match self {
            Data::F32(v) => Some(v),
            _ => None,
        }
    }

    /// View as `f64` slice when this is an `F64` payload.
    pub fn as_f64(&self) -> Option<&[f64]> {
        match self {
            Data::F64(v) => Some(v),
            _ => None,
        }
    }

    /// View as `u8` slice when this is a `U8` payload.
    pub fn as_u8(&self) -> Option<&[u8]> {
        match self {
            Data::U8(v) => Some(v),
            _ => None,
        }
    }

    /// Copy out as `f64`, converting from any numeric dtype. Useful for
    /// renderers that do not care about the storage type.
    pub fn to_f64_vec(&self) -> Vec<f64> {
        match self {
            Data::F32(v) => v.iter().map(|&x| x as f64).collect(),
            Data::F64(v) => v.clone(),
            Data::I32(v) => v.iter().map(|&x| x as f64).collect(),
            Data::U8(v) => v.iter().map(|&x| x as f64).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_sizes() {
        assert_eq!(DType::F32.size(), 4);
        assert_eq!(DType::F64.size(), 8);
        assert_eq!(DType::I32.size(), 4);
        assert_eq!(DType::U8.size(), 1);
    }

    #[test]
    fn dtype_tag_roundtrip() {
        for d in [DType::F32, DType::F64, DType::I32, DType::U8] {
            assert_eq!(DType::from_tag(d.tag()), Some(d));
        }
        assert_eq!(DType::from_tag(200), None);
    }

    #[test]
    fn attr_accessors() {
        assert_eq!(AttrValue::Text("x".into()).as_text(), Some("x"));
        assert_eq!(AttrValue::F64(2.5).as_f64(), Some(2.5));
        assert_eq!(AttrValue::I64(7).as_f64(), Some(7.0));
        assert_eq!(AttrValue::I64(7).as_i64(), Some(7));
        assert_eq!(AttrValue::F64(1.0).as_i64(), None);
        assert_eq!(
            AttrValue::F64List(vec![1.0, 2.0]).as_f64_list(),
            Some(&[1.0, 2.0][..])
        );
        assert_eq!(AttrValue::Text("x".into()).as_f64(), None);
    }

    #[test]
    fn data_len_and_dtype() {
        let d = Data::F32(vec![1.0, 2.0, 3.0]);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.dtype(), DType::F32);
        assert_eq!(d.as_f32().unwrap().len(), 3);
        assert!(d.as_f64().is_none());
    }

    #[test]
    fn to_f64_converts_all_dtypes() {
        assert_eq!(Data::F32(vec![1.5]).to_f64_vec(), vec![1.5]);
        assert_eq!(Data::F64(vec![2.5]).to_f64_vec(), vec![2.5]);
        assert_eq!(Data::I32(vec![-3]).to_f64_vec(), vec![-3.0]);
        assert_eq!(Data::U8(vec![9]).to_f64_vec(), vec![9.0]);
    }
}
