//! Error type for dataset construction and decoding.

use std::fmt;

/// Everything that can go wrong building or decoding a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NcdfError {
    /// Encoded blob does not start with the `NCDL` magic.
    BadMagic,
    /// Encoded blob has a version this library cannot read.
    UnsupportedVersion(u16),
    /// Decoder ran off the end of the buffer.
    Truncated {
        /// What the decoder was reading when the buffer ran out.
        context: &'static str,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadString,
    /// An attribute tag or dtype byte was not recognised.
    BadTag(u8),
    /// A dimension or variable name is used twice.
    DuplicateName(String),
    /// A variable references a dimension id that does not exist.
    UnknownDim(u32),
    /// Variable payload length disagrees with the product of its dims.
    ShapeMismatch {
        /// Variable whose payload is wrong.
        name: String,
        /// Elements implied by the dimensions.
        expected: usize,
        /// Elements actually supplied.
        actual: usize,
    },
    /// A declared count is implausibly large for the remaining buffer
    /// (defends against corrupt headers causing huge allocations).
    CountTooLarge {
        /// What the count described.
        context: &'static str,
        /// The declared count.
        count: u64,
    },
}

impl fmt::Display for NcdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NcdfError::BadMagic => write!(f, "not an NCDL dataset (bad magic)"),
            NcdfError::UnsupportedVersion(v) => write!(f, "unsupported format version {v}"),
            NcdfError::Truncated { context } => write!(f, "truncated while reading {context}"),
            NcdfError::BadString => write!(f, "length-prefixed string is not valid UTF-8"),
            NcdfError::BadTag(t) => write!(f, "unrecognised tag byte 0x{t:02x}"),
            NcdfError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            NcdfError::UnknownDim(id) => write!(f, "variable references unknown dimension {id}"),
            NcdfError::ShapeMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "variable `{name}`: dims imply {expected} elements, got {actual}"
            ),
            NcdfError::CountTooLarge { context, count } => {
                write!(
                    f,
                    "declared {context} count {count} exceeds buffer capacity"
                )
            }
        }
    }
}

impl std::error::Error for NcdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NcdfError::ShapeMismatch {
            name: "p".into(),
            expected: 6,
            actual: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("`p`"));
        assert!(msg.contains('6'));
        assert!(msg.contains('5'));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&NcdfError::BadMagic);
    }
}
