//! Criterion bench for the AQZ1 delta + quantize codec.
//!
//! Encodes and decodes a smooth two-field frame shaped like the model's
//! visualization output (pressure + tracer on a 16 km-class grid slab),
//! plus the exact `Dataset::to_bytes` wire format as the baseline the
//! AQZ1 rung is traded against. The uncompressed payload size is printed
//! once so per-iteration times convert directly to throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use ncdf::codec::{decode_quantized, encode_quantized};
use ncdf::{AttrValue, Data, Dataset};

/// A smooth synthetic frame: 2 f64 fields on a `ny`×`nx` grid plus a
/// byte mask, mirroring what the serving tier actually ships.
fn frame(ny: usize, nx: usize) -> Dataset {
    let mut ds = Dataset::new();
    ds.set_attr("title", AttrValue::Text("bench frame".into()));
    ds.set_attr("res_km", AttrValue::F64(16.0));
    let y = ds.add_dim("y", ny).unwrap();
    let x = ds.add_dim("x", nx).unwrap();
    let field = |fy: f64, fx: f64, amp: f64| -> Vec<f64> {
        (0..ny * nx)
            .map(|i| {
                let (j, k) = ((i / nx) as f64, (i % nx) as f64);
                1000.0 + amp * ((j * fy).sin() * (k * fx).cos())
            })
            .collect()
    };
    ds.add_var("pressure", &[y, x], Data::F64(field(0.031, 0.017, 12.0)))
        .unwrap();
    ds.add_var("tracer", &[y, x], Data::F64(field(0.013, 0.041, 0.8)))
        .unwrap();
    ds.add_var("mask", &[y, x], Data::U8(vec![1; ny * nx]))
        .unwrap();
    ds
}

fn bench_codec(c: &mut Criterion) {
    // 180×208 ≈ the 16 km parent grid decimated 2× for the wire.
    let ds = frame(180, 208);
    let payload = ds.payload_bytes();
    let encoded = encode_quantized(&ds);
    let exact = ds.to_bytes();

    println!(
        "aqz1: payload {payload} B, encoded {} B ({:.1}% of exact {} B)",
        encoded.len(),
        100.0 * encoded.len() as f64 / exact.len() as f64,
        exact.len()
    );

    let mut g = c.benchmark_group("aqz1");
    g.bench_function("encode", |b| b.iter(|| encode_quantized(&ds)));
    g.bench_function("decode", |b| {
        b.iter(|| decode_quantized(&encoded).expect("self-produced blob decodes"))
    });
    // The exact format bounds what AQZ1 must beat to earn its rung.
    g.bench_function("exact_encode", |b| b.iter(|| ds.to_bytes()));
    g.bench_function("exact_decode", |b| {
        b.iter(|| Dataset::from_bytes(&exact).expect("self-produced blob decodes"))
    });
    g.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
