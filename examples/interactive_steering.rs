//! Interactive steering — the paper's future work, demonstrated.
//!
//! "We also intend to investigate interactive simulation/visualization,
//! so that user input based on the visualization can steer the
//! simulation." This example scripts a scientist's session over the
//! cross-continent configuration:
//!
//! 1. the run starts under the optimization method (which settles at the
//!    sparse 25-minute interval the starved link demands),
//! 2. at hour 2 the scientist — watching the cyclone deepen — requests
//!    10-minute frames and pins the 12 km grid,
//! 3. at hour 8 they release control back to the framework.
//!
//! The run report shows the framework honoring the requests and the price
//! paid in disk headroom.
//!
//! ```text
//! cargo run --release --example interactive_steering
//! ```

use climate_adaptive::adaptive::decision::AlgorithmKind;
use climate_adaptive::adaptive::orchestrator::{Orchestrator, RunOptions};
use climate_adaptive::adaptive::steering::SteeringCommand;
use climate_adaptive::prelude::*;

fn main() {
    let mission = Mission::aila().with_duration_hours(24.0);
    let opts = RunOptions {
        wall_cap_hours: 60.0,
        ..Default::default()
    };

    let hands_off = Orchestrator::new(
        Site::cross_continent(),
        mission.clone(),
        AlgorithmKind::Optimization,
    )
    .with_options(opts.clone())
    .run();

    let steered = Orchestrator::new(
        Site::cross_continent(),
        mission,
        AlgorithmKind::Optimization,
    )
    .with_options(opts)
    .with_steering(vec![
        (
            2.0,
            SteeringCommand::RequestTemporalResolution { max_oi_min: 10.0 },
        ),
        (2.0, SteeringCommand::PinResolution { km: 12.0 }),
        (8.0, SteeringCommand::Release),
    ])
    .run();

    println!("cross-continent, optimization method, 24-simulated-hour mission\n");
    for (label, out) in [("hands-off", &hands_off), ("steered", &steered)] {
        println!(
            "{label:<10} completed={} wall={:.1}h frames={} visualized={} minfree={:.1}% \
             steering commands={}",
            out.completed,
            out.wall_hours,
            out.frames_written,
            out.frames_rendered,
            out.min_free_disk_pct,
            out.steering_commands_applied,
        );
    }
    println!(
        "\nthe steered run wrote {:.1}x the frames over the window of interest,",
        steered.frames_written as f64 / hands_off.frames_written.max(1) as f64
    );
    println!(
        "paying {:.1} points of disk headroom for the extra temporal resolution —",
        hands_off.min_free_disk_pct - steered.min_free_disk_pct
    );
    println!("the trade the scientist chose to make, applied safely by the framework.");
}
