//! Capacity planning: the Table I question for your own deployment.
//!
//! Given a frame size, step time, I/O bandwidth, and candidate disk and
//! network provisionings, when does stable storage fill — and what output
//! interval would the optimization method pick to avoid it? This is the
//! planning exercise the paper's Table I motivates, generalized over a
//! parameter sweep.
//!
//! ```text
//! cargo run --release --example capacity_planning [frame_GB] [step_secs]
//! ```

use climate_adaptive::adaptive::config::ApplicationConfig;
use climate_adaptive::adaptive::decision::{DecisionAlgorithm, DecisionInputs, Optimization};
use perfmodel::ProcTable;

fn fill_time_secs(disk: f64, net_bps: f64, frame: f64, cycle: f64) -> Option<f64> {
    let production = frame / cycle;
    let net = production - net_bps;
    (net > 0.0).then(|| disk / net)
}

fn human(secs: f64) -> String {
    if secs < 3600.0 {
        format!("{:6.0} min", secs / 60.0)
    } else if secs < 72.0 * 3600.0 {
        format!("{:6.1} h", secs / 3600.0)
    } else {
        format!("{:6.1} d", secs / 86400.0)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let frame_gb: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(31.0);
    let step_secs: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1.2);
    let io_bps = 4e9;
    let frame = frame_gb * 1e9;
    let cycle = step_secs + frame / io_bps;

    println!(
        "frame {frame_gb} GB, {step_secs} s/step, 4 GB/s parallel I/O \
         (produce cycle {cycle:.1} s)\n"
    );
    println!("time until storage is full (output every step):");
    print!("{:>10}", "disk \\ net");
    let nets = [0.1e9, 1e9, 10e9, 100e9];
    for n in nets {
        print!("{:>12}", format!("{} Gbps", n / 1e9));
    }
    println!();
    for disk_tb in [5.0, 50.0, 100.0, 300.0, 500.0] {
        print!("{:>10}", format!("{disk_tb} TB"));
        for n in nets {
            match fill_time_secs(disk_tb * 1e12, n / 8.0, frame, cycle) {
                Some(t) => print!("{:>12}", human(t)),
                None => print!("{:>12}", "never"),
            }
        }
        println!();
    }

    // What would the optimization method do about it? Ask it directly.
    println!("\noptimization method's prescription (60 h mission, 16k cores):");
    let table = ProcTable::from_entries(
        (1..=14)
            .map(|k| {
                let p = 1usize << k; // 2..16384 cores
                (p, step_secs * 16384.0 / p as f64)
            })
            .collect(),
    );
    let current = ApplicationConfig::initial(16384, 1.0, 10.0);
    println!(
        "{:>10} {:>10} | {:>8} {:>14}",
        "disk", "net", "cores", "output every"
    );
    for disk_tb in [5.0, 100.0, 500.0] {
        for n in [1e9, 10e9] {
            let inputs = DecisionInputs {
                free_disk_percent: 100.0,
                free_disk_bytes: (disk_tb * 1e12) as u64,
                disk_capacity_bytes: (disk_tb * 1e12) as u64,
                bandwidth_bps: n / 8.0,
                frame_bytes: frame as u64,
                io_secs_per_frame: frame / io_bps,
                proc_table: &table,
                current: &current,
                dt_sim_secs: 60.0, // 10 km resolution
                min_oi_min: 1.0,
                max_oi_min: 25.0,
                horizon_secs: 60.0 * 3600.0,
            };
            let (procs, oi) = Optimization::new().decide(&inputs);
            println!(
                "{:>10} {:>10} | {:>8} {:>11.1} min",
                format!("{disk_tb} TB"),
                format!("{} Gbps", n / 1e9),
                procs,
                oi
            );
        }
    }
    println!("\n(rows where even the sparsest interval overflows fall back to the");
    println!(" slowest configuration — the framework would stall-and-resume there)");
}
