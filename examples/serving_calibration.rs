//! Serving-tier calibration — the real socket tier vs the modeled
//! broker, over matched scenarios:
//!
//! ```text
//! cargo run --release --example serving_calibration
//! ```
//!
//! Each scenario is run twice with the same parameters (one virtual
//! second in the DES ≡ one wall second on loopback): once through
//! `broker::run_broker` (the PR 6 modeled fan-out) and once through
//! `server::FrameServer` with real `RemoteViewer` sockets. The paper's
//! claim that the modeled broker predicts the served system is the
//! thing under test: `results/serving_calibration.csv` reports
//! delivered / shed / recovery per scenario, modeled vs measured, with
//! relative errors.
//!
//! Scenarios (time-scaled versions of the `broker::loadgen` trio):
//! - `steady_ramp` — 16 viewers arrive evenly over 1 s of a 3 s
//!   production run; everyone joins live, nothing is shed.
//! - `thundering_herd` — 40 viewers at the same instant against a
//!   20 session/s, burst-8 admission gate; late admits join at the
//!   then-current head, so delivery reflects the gate's spread.
//! - `outage_reconnect` — 12 viewers, a full-fleet disconnect at
//!   t = 1 s with a 0.8 s outage against a 24-frame ring, so every
//!   cursor expires and resumes shed the same gap on both tiers; the
//!   link is paced (64 KB/s, half for catch-up) so recovery takes
//!   measurable time.

use climate_adaptive::adaptive::broker::{
    run_broker, BrokerConfig, LoadEvent, LoadScenario, ShedPolicy,
};
use climate_adaptive::adaptive::qos::{encode_fix, QosConfig, QosRung};
use climate_adaptive::adaptive::resilience::BackoffPolicy;
use climate_adaptive::adaptive::server::{FrameServer, RemoteViewer, ServerConfig, ViewerConfig};
use climate_adaptive::resources::SharedLink;
use climate_adaptive::viz::EyeFix;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const SEED: u64 = 0xCA11B8;
const CADENCE: Duration = Duration::from_millis(20);
const INTERVAL_SECS: f64 = 0.02;

/// delivered / shed / recovery from one run of one tier.
#[derive(Debug, Clone, Copy)]
struct Tally {
    delivered: u64,
    shed: u64,
    recovery_secs: f64,
}

struct Row {
    scenario: &'static str,
    clients: u64,
    modeled: Tally,
    measured: Tally,
}

fn rel_err(modeled: f64, measured: f64) -> f64 {
    (measured - modeled).abs() / modeled.abs().max(1.0)
}

/// Relative error for sub-second durations (no unit floor; symmetric
/// denominator so a near-zero model doesn't blow up the ratio).
fn rel_err_time(modeled: f64, measured: f64) -> f64 {
    let denom = modeled.abs().max(measured.abs());
    if denom < 1e-9 {
        0.0
    } else {
        (measured - modeled).abs() / denom
    }
}

fn body(i: u64) -> Vec<u8> {
    encode_fix(&EyeFix {
        sim_minutes: i as f64,
        lon: 80.0 + i as f64 * 0.01,
        lat: 15.0 + i as f64 * 0.005,
        pressure_hpa: 990.0 - (i % 50) as f64,
    })
    .to_vec()
}

// ---------------------------------------------------------------------------
// Modeled tier: the DES broker with wall-second-scale parameters
// ---------------------------------------------------------------------------

fn modeled_config(frames: u64, scenario: LoadScenario) -> BrokerConfig {
    BrokerConfig {
        frame_bytes: 32,
        frame_interval_secs: INTERVAL_SECS,
        horizon_secs: frames as f64 * INTERVAL_SECS,
        tick_secs: INTERVAL_SECS,
        link: SharedLink::new(1e9),
        retention_frames: 512,
        max_backlog_frames: 64,
        shed: ShedPolicy::DropOldest,
        admission_rate_per_sec: 256.0,
        admission_burst: 64,
        catchup_share: 0.5,
        catchup_burst_frames: 100,
        // Small reconnect jitter so modeled resumes land within a frame
        // of the measured restart at outage end.
        backoff: BackoffPolicy::new(SEED)
            .with_base(Duration::from_millis(5))
            .with_cap(Duration::from_millis(20)),
        breaker: Default::default(),
        qos: QosConfig::default(),
        seed: SEED,
        scenario,
    }
}

fn modeled(cfg: BrokerConfig) -> Tally {
    let out = run_broker(cfg);
    assert!(out.drained, "modeled run must drain");
    Tally {
        delivered: out.counters.frames_delivered,
        shed: out.counters.frames_shed,
        recovery_secs: out.recovery_secs.unwrap_or(0.0),
    }
}

// ---------------------------------------------------------------------------
// Measured tier: real sockets on loopback
// ---------------------------------------------------------------------------

fn measured_server_config() -> ServerConfig {
    ServerConfig {
        retention_frames: 512,
        max_backlog_frames: 64,
        shed: ShedPolicy::DropOldest,
        admission_rate_per_sec: 256.0,
        admission_burst: 64,
        catchup_share: 0.5,
        ..ServerConfig::default()
    }
}

fn spawn_viewer(
    addr: std::net::SocketAddr,
    id: u64,
    stop: Arc<AtomicBool>,
) -> JoinHandle<RemoteViewer> {
    std::thread::spawn(move || {
        let mut viewer = RemoteViewer::new(addr, ViewerConfig::loopback(id, SEED ^ id));
        viewer.run(&stop);
        viewer
    })
}

fn resume_viewer(mut viewer: RemoteViewer, stop: Arc<AtomicBool>) -> JoinHandle<RemoteViewer> {
    std::thread::spawn(move || {
        viewer.run(&stop);
        viewer
    })
}

/// Clients arrive over `ramp` while the producer streams `frames`.
fn measured_arrivals(clients: u64, frames: u64, ramp: Duration) -> Tally {
    let server = FrameServer::start(measured_server_config()).expect("bind server");
    let addr = server.addr().expect("remote mode");
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    std::thread::scope(|s| {
        let producer = s.spawn(|| {
            for i in 0..frames {
                server.publish(QosRung::TrackOnly, body(i));
                std::thread::sleep(CADENCE);
            }
        });
        let step = ramp / clients.max(1) as u32;
        for id in 0..clients {
            handles.push(spawn_viewer(addr, id + 1, Arc::clone(&stop)));
            if !step.is_zero() {
                std::thread::sleep(step);
            }
        }
        producer.join().expect("producer");
    });
    std::thread::sleep(Duration::from_millis(300));
    let report = server.drain();
    stop.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().expect("viewer");
    }
    Tally {
        delivered: report.counters.frames_delivered,
        shed: report.counters.frames_shed,
        recovery_secs: 0.0,
    }
}

/// Full-fleet disconnect at `outage_at`, return after `outage`; cursors
/// expire against the small ring and the fleet catches up over the
/// paced link.
fn measured_outage(clients: u64, frames: u64, outage_at: Duration, outage: Duration) -> Tally {
    let cfg = ServerConfig {
        retention_frames: 24,
        link_bytes_per_sec: 64_000.0,
        ..measured_server_config()
    };
    let server = FrameServer::start(cfg).expect("bind server");
    let addr = server.addr().expect("remote mode");
    let stop_a = Arc::new(AtomicBool::new(false));
    let stop_b = Arc::new(AtomicBool::new(false));
    let mut handles: Vec<JoinHandle<RemoteViewer>> = Vec::new();
    for id in 0..clients {
        handles.push(spawn_viewer(addr, id + 1, Arc::clone(&stop_a)));
    }
    let t0 = Instant::now();
    while server.connected() < clients && t0.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut recovery_secs = 0.0f64;
    std::thread::scope(|s| {
        let start = Instant::now();
        let producer = s.spawn(|| {
            for i in 0..frames {
                server.publish(QosRung::TrackOnly, body(i));
                std::thread::sleep(CADENCE);
            }
        });
        std::thread::sleep(outage_at.saturating_sub(start.elapsed()));
        stop_a.store(true, Ordering::SeqCst);
        let viewers: Vec<_> = handles
            .drain(..)
            .map(|h| h.join().expect("viewer"))
            .collect();
        std::thread::sleep(outage);
        let t_back = Instant::now();
        for viewer in viewers {
            handles.push(resume_viewer(viewer, Arc::clone(&stop_b)));
        }
        // Recovered when the whole fleet is within live lag of the head
        // again — the same condition that closes the modeled recovery
        // window.
        loop {
            let c = server.counters();
            let head = server.head();
            if c.cursor_advance + 2 * clients >= clients * head && head > 0 {
                break;
            }
            if t_back.elapsed() > Duration::from_secs(20) {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        recovery_secs = t_back.elapsed().as_secs_f64();
        producer.join().expect("producer");
    });
    std::thread::sleep(Duration::from_millis(300));
    let report = server.drain();
    stop_b.store(true, Ordering::SeqCst);
    for h in handles {
        h.join().expect("viewer");
    }
    Tally {
        delivered: report.counters.frames_delivered,
        shed: report.counters.frames_shed,
        recovery_secs,
    }
}

// ---------------------------------------------------------------------------
// The three matched scenarios
// ---------------------------------------------------------------------------

fn steady_ramp() -> Row {
    let clients = 16;
    let frames = 150;
    let scenario = LoadScenario::single(
        0.0,
        LoadEvent::ArrivalRamp {
            clients,
            over_secs: 1.0,
        },
    );
    Row {
        scenario: "steady_ramp",
        clients,
        modeled: modeled(modeled_config(frames, scenario)),
        measured: measured_arrivals(clients, frames, Duration::from_secs(1)),
    }
}

fn thundering_herd() -> Row {
    let clients = 40;
    let frames = 150;
    let scenario = LoadScenario::single(
        0.0,
        LoadEvent::ArrivalRamp {
            clients,
            over_secs: 0.0,
        },
    );
    let mut cfg = modeled_config(frames, scenario);
    cfg.admission_rate_per_sec = 20.0;
    cfg.admission_burst = 8;
    let modeled = modeled(cfg);
    let server_gate = |mut c: ServerConfig| {
        c.admission_rate_per_sec = 20.0;
        c.admission_burst = 8;
        c
    };
    // measured_arrivals builds the default gate; run the herd inline
    // with the tighter one instead.
    let measured = {
        let server = FrameServer::start(server_gate(measured_server_config())).expect("bind");
        let addr = server.addr().expect("remote mode");
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        std::thread::scope(|s| {
            let producer = s.spawn(|| {
                for i in 0..frames {
                    server.publish(QosRung::TrackOnly, body(i));
                    std::thread::sleep(CADENCE);
                }
            });
            for id in 0..clients {
                handles.push(spawn_viewer(addr, id + 1, Arc::clone(&stop)));
            }
            producer.join().expect("producer");
        });
        std::thread::sleep(Duration::from_millis(300));
        let report = server.drain();
        stop.store(true, Ordering::SeqCst);
        for h in handles {
            h.join().expect("viewer");
        }
        Tally {
            delivered: report.counters.frames_delivered,
            shed: report.counters.frames_shed,
            recovery_secs: 0.0,
        }
    };
    Row {
        scenario: "thundering_herd",
        clients,
        modeled,
        measured,
    }
}

fn outage_reconnect() -> Row {
    let clients = 12;
    let frames = 200;
    let scenario = LoadScenario::single(
        0.0,
        LoadEvent::ArrivalRamp {
            clients,
            over_secs: 0.0,
        },
    )
    .then(
        1.0,
        LoadEvent::MassDisconnect {
            frac: 1.0,
            outage_secs: 0.8,
        },
    );
    let mut cfg = modeled_config(frames, scenario);
    cfg.retention_frames = 24;
    cfg.link = SharedLink::new(64_000.0);
    Row {
        scenario: "outage_reconnect",
        clients,
        modeled: modeled(cfg),
        measured: measured_outage(
            clients,
            frames,
            Duration::from_secs(1),
            Duration::from_millis(800),
        ),
    }
}

fn main() {
    println!("calibrating the socket serving tier against the modeled broker\n");
    let rows = [steady_ramp(), thundering_herd(), outage_reconnect()];
    println!(
        "{:<18} {:>7} {:>10} {:>10} {:>7} {:>8} {:>8} {:>7} {:>7} {:>7} {:>7}",
        "scenario",
        "clients",
        "del(mod)",
        "del(meas)",
        "err",
        "shed(m)",
        "shed(r)",
        "err",
        "rec(m)",
        "rec(r)",
        "err"
    );
    let mut csv = String::from(
        "scenario,clients,modeled_delivered,measured_delivered,delivered_rel_err,\
         modeled_shed,measured_shed,shed_rel_err,\
         modeled_recovery_secs,measured_recovery_secs,recovery_rel_err\n",
    );
    for r in &rows {
        let de = rel_err(r.modeled.delivered as f64, r.measured.delivered as f64);
        let se = rel_err(r.modeled.shed as f64, r.measured.shed as f64);
        let re = rel_err_time(r.modeled.recovery_secs, r.measured.recovery_secs);
        println!(
            "{:<18} {:>7} {:>10} {:>10} {:>6.1}% {:>8} {:>8} {:>6.1}% {:>7.2} {:>7.2} {:>6.1}%",
            r.scenario,
            r.clients,
            r.modeled.delivered,
            r.measured.delivered,
            100.0 * de,
            r.modeled.shed,
            r.measured.shed,
            100.0 * se,
            r.modeled.recovery_secs,
            r.measured.recovery_secs,
            100.0 * re,
        );
        csv.push_str(&format!(
            "{},{},{},{},{:.4},{},{},{:.4},{:.3},{:.3},{:.4}\n",
            r.scenario,
            r.clients,
            r.modeled.delivered,
            r.measured.delivered,
            de,
            r.modeled.shed,
            r.measured.shed,
            se,
            r.modeled.recovery_secs,
            r.measured.recovery_secs,
            re,
        ));
    }
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/serving_calibration.csv", &csv).expect("write csv");
    println!(
        "\n3 scenarios -> results/serving_calibration.csv\n\
         the DES broker and the socket tier share the admission gate, ring,\n\
         bulkhead, and breaker; what differs is real TCP timing — the relative\n\
         errors above are the cost of trusting the model for capacity planning."
    );
}
