//! Live pipeline: the paper's daemons as real communicating threads.
//!
//! Runs the online mode — a simulation thread producing real encoded
//! frames, a frame-sender daemon throttled to the modeled link, a
//! receiver/visualization thread decoding and tracking the cyclone, and
//! an application manager steering everything through an actual JSON
//! configuration file on disk — all time-compressed so a multi-hour
//! mission plays out in under a second.
//!
//! ```text
//! cargo run --release --example remote_viz_pipeline
//! ```

use climate_adaptive::adaptive::decision::AlgorithmKind;
use climate_adaptive::adaptive::online::{run_online, OnlineOptions};
use climate_adaptive::prelude::*;

fn main() {
    let site = Site::inter_department();
    let mission = Mission::aila().with_duration_hours(4.0).with_decimation(12);
    let options = OnlineOptions::fast("example");

    println!("starting live pipeline: simulation + sender + receiver/viz + manager threads");
    println!(
        "config file: {}  (the manager writes it; the simulation polls it)\n",
        options.config_path.display()
    );

    for algo in AlgorithmKind::both() {
        let report = run_online(&site, &mission, algo, &options);
        println!("{}:", algo.label());
        println!(
            "  simulated {} (completed = {})",
            Mission::format_sim_time(report.sim_minutes),
            report.completed
        );
        println!(
            "  frames: {} written, {} shipped, {} rendered remotely",
            report.frames_written, report.frames_shipped, report.frames_rendered
        );
        println!(
            "  manager epochs: {}   stalls observed: {}",
            report.decisions, report.stalls
        );
        if let (Some(first), Some(last)) =
            (report.track.fixes().first(), report.track.fixes().last())
        {
            println!(
                "  remote track: ({:.1}E, {:.1}N) -> ({:.1}E, {:.1}N), deepest {:.1} hPa\n",
                first.lon,
                first.lat,
                last.lon,
                last.lat,
                report.track.min_pressure().expect("fixes exist")
            );
        }
    }
}
