//! Multi-site remote visualization — the paper's motivating scenario
//! ("joint analysis by [a] geographically distributed climate science
//! community"), extended beyond its single-receiver evaluation.
//!
//! Broadcasts the frame stream to three sites — a campus workstation, a
//! national lab over the NKN, and an overseas collaborator on a starved
//! link — and compares the space-reclamation policies:
//!
//! ```text
//! cargo run --release --example multi_site_viz
//! ```

use climate_adaptive::adaptive::fanout::{run_fanout, FanOutConfig, ReceiverSpec, ReleasePolicy};
use climate_adaptive::adaptive::qos::QosRung;
use climate_adaptive::prelude::*;
use resources::Disk;

fn receivers(overseas_rung: QosRung) -> Vec<ReceiverSpec> {
    vec![
        ReceiverSpec {
            label: "campus-workstation".into(),
            network: Site::inter_department().make_network(1),
            rung: QosRung::FullRes,
        },
        ReceiverSpec {
            label: "national-lab".into(),
            network: Site::intra_country().make_network(2),
            rung: QosRung::FullRes,
        },
        ReceiverSpec {
            label: "overseas-collaborator".into(),
            network: Site::cross_continent().make_network(3),
            rung: overseas_rung,
        },
    ]
}

fn main() {
    let mission = Mission::aila();
    let frame = mission.frame_bytes(24.0, false);
    // 2000 frames × ~136 MB ≈ 272 GB: more than the 182 GB disk holds,
    // so the reclamation policy decides who survives.
    let frames = 2000;
    println!(
        "broadcasting {frames} frames of {:.0} MB to three sites, 182 GB disk\n",
        frame as f64 / 1e6
    );
    println!(
        "{:<28} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "policy", "dropped", "campus", "nat-lab", "overseas", "unserved", "min free"
    );
    for (name, policy, overseas_rung) in [
        ("AllReceived", ReleasePolicy::AllReceived, QosRung::FullRes),
        ("Quorum(2)", ReleasePolicy::Quorum(2), QosRung::FullRes),
        (
            "FirstReceived",
            ReleasePolicy::FirstReceived,
            QosRung::FullRes,
        ),
        (
            "AllReceived + track-only",
            ReleasePolicy::AllReceived,
            QosRung::TrackOnly,
        ),
    ] {
        let out = run_fanout(FanOutConfig {
            disk: Disk::from_gb(182.0),
            frame_bytes: frame,
            production_interval_secs: 20.0,
            frames,
            receivers: receivers(overseas_rung),
            policy,
            crashes: Vec::new(),
        });
        println!(
            "{:<28} {:>8} {:>9} {:>9} {:>9} {:>9} {:>8.1}%",
            name,
            out.frames_dropped,
            out.delivered[0],
            out.delivered[1],
            out.delivered[2],
            out.unserved[2],
            out.min_free_pct
        );
    }
    println!(
        "\nAllReceived lets the overseas link hold the simulation-site disk hostage;\n\
         Quorum(2) keeps the fast sites live and feeds the straggler best-effort;\n\
         FirstReceived's per-laggard data loss now shows up in the unserved column;\n\
         and subscribing the overseas site at the track-only rung shrinks its\n\
         transfers enough that even AllReceived stops starving the simulation."
    );
}
