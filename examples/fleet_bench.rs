//! Fleet throughput bench: missions/sec vs DES worker threads.
//!
//! Runs the same N-mission ensemble (distinct network seeds, shared
//! cluster core pool, shared WAN link) through the sharded DES at 1–8
//! worker threads, timing each sweep, and writes
//! `results/fleet_throughput.csv`.
//!
//! Honesty rule (same as `BENCH_physics.json`): a worker count beyond
//! the host's cores measures *oversubscription*, not scaling, so every
//! row records `host_cores` and rows with `workers > host_cores` are
//! marked `scaling_valid=false`. The monotone-throughput verdict below
//! reads only the valid rows — on a 1-core host that is one row, and the
//! verdict says so instead of claiming a speedup the silicon cannot
//! show. Determinism is asserted either way: every sweep's per-mission
//! counters must equal the workers=1 reference.
//!
//! ```text
//! cargo run --release --example fleet_bench
//! cargo run --release --example fleet_bench -- --missions 12 --hours 6
//! ```

use climate_adaptive::adaptive::decision::AlgorithmKind;
use climate_adaptive::adaptive::engine::{PipelineCounters, PipelineOptions};
use climate_adaptive::adaptive::fleet::{ensemble, run_fleet, FleetOptions};
use climate_adaptive::prelude::*;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<f64>().ok())
    };
    let missions = flag("--missions").map(|v| v as usize).unwrap_or(8).max(1);
    let hours = flag("--hours").unwrap_or(6.0);

    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let site = Site::inter_department();
    let mission = Mission::aila().with_duration_hours(hours);
    let specs = || {
        ensemble(
            &site,
            &mission,
            AlgorithmKind::Optimization,
            &PipelineOptions::default(),
            missions,
        )
    };

    println!(
        "fleet throughput: {missions} missions x {hours:.0} h, shared {}-core pool, \
         host cores = {host_cores}\n",
        site.cluster.max_cores
    );

    let mut reference: Option<Vec<PipelineCounters>> = None;
    let mut csv =
        String::from("workers,missions,elapsed_secs,missions_per_sec,host_cores,scaling_valid\n");
    let mut valid_rows: Vec<(usize, f64)> = Vec::new();
    for workers in 1..=8usize {
        let t0 = Instant::now();
        let report = run_fleet(specs(), &FleetOptions::for_site(&site, workers));
        let elapsed = t0.elapsed().as_secs_f64();
        let rate = missions as f64 / elapsed;
        let valid = workers <= host_cores;

        let counters: Vec<PipelineCounters> = report
            .missions
            .iter()
            .map(|m| m.report.counters.clone())
            .collect();
        match &reference {
            None => reference = Some(counters),
            Some(base) => assert_eq!(
                &counters, base,
                "fleet diverged at {workers} workers — determinism bug"
            ),
        }

        println!(
            "  workers {workers}: {elapsed:>6.2} s, {rate:>5.2} missions/s{}",
            if valid { "" } else { "  (oversubscribed)" }
        );
        csv.push_str(&format!(
            "{workers},{missions},{elapsed:.4},{rate:.4},{host_cores},{valid}\n"
        ));
        if valid {
            valid_rows.push((workers, rate));
        }
    }

    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/fleet_throughput.csv", &csv).expect("write csv");
    println!("\n8 rows -> results/fleet_throughput.csv");

    // Scaling verdict over honest rows only.
    if valid_rows.len() < 2 {
        println!(
            "scaling verdict: SUPPRESSED — host has {host_cores} core(s); \
             worker counts beyond that time-slice the same silicon, so no \
             parallel-speedup claim is made (determinism still verified \
             across all 8 sweeps)"
        );
    } else {
        let monotone = valid_rows.windows(2).all(|w| w[1].1 >= w[0].1 * 0.95);
        println!(
            "scaling verdict over workers 1..={}: throughput {} monotonically \
             (5% tolerance)",
            valid_rows.last().unwrap().0,
            if monotone {
                "increases"
            } else {
                "DOES NOT increase"
            }
        );
    }
}
