//! Fault drill: inject every fault class and watch the framework heal.
//!
//! Part one replays the Aila mission in the DES orchestrator under a
//! scripted `FaultPlan` — a WAN collapse, a flapping link, external disk
//! pressure, a receiver outage, and a simulation crash — and prints the
//! recovery counters next to a fault-free control run. Part two runs the
//! transport daemons on real sockets: a receiver is killed mid-frame,
//! restarted on a *different* port, and the `ResilientSender` reconnects
//! with backoff and replays the unacknowledged frames until the remote
//! track is byte-identical to an unfaulted transfer.
//!
//! Part three is the recovery drill: the *live* online pipeline runs
//! with durable state, is hard-killed at a scripted wall hour, and is
//! restarted from disk by the recovery supervisor — the journal is
//! replayed, pending frames are requeued, and the mission finishes with
//! the recovery counters printed.
//!
//! ```text
//! cargo run --release --example fault_drill
//! cargo run --release --example fault_drill -- --kill-at 0.02
//! cargo run --release --example fault_drill -- --physics-threads follow
//! cargo run --release --example fault_drill -- --soak 2000 --seed 7
//! ```
//!
//! With `--kill-at <hours>` only the recovery drill runs, killing the
//! pipeline at that modeled wall hour. `--physics-threads <n|follow>`
//! sizes the *real* integrator rank team for the live runs: a fixed
//! worker count, or `follow` to track the manager's decided processor
//! count (the modeled knob). Results are bitwise identical either way —
//! only wall time changes.
//!
//! With `--soak <hours>` the drill instead runs the deterministic
//! chaos-soak harness: seeded composed fault storms through the DES,
//! each checked against the full invariant battery, until at least that
//! many *simulated* hours have been covered. `--seed <n>` picks the
//! first storm seed (storm `i` uses `n + i`); failures are shrunk to a
//! minimal replayable schedule and the process exits non-zero.
//!
//! With `--missions <n>` (optionally `--des-shards <k>` worker threads,
//! default 2) the drill instead throws seeded random fault storms at the
//! *sharded* multi-mission engine: n missions contend for one cluster
//! core pool and one WAN link while their faults abort transfers and
//! kill processes, the whole fleet is run twice, and any divergence
//! between the two runs exits non-zero (thread-interleaving bugs shake
//! out here).

use climate_adaptive::adaptive::chaos;
use climate_adaptive::adaptive::decision::AlgorithmKind;
use climate_adaptive::adaptive::engine::PhysicsThreads;
use climate_adaptive::adaptive::net_transport::{FrameReceiver, ReceiverOptions};
use climate_adaptive::adaptive::online::{run_online, OnlineOptions};
use climate_adaptive::adaptive::orchestrator::{Fault, FaultPlan, Orchestrator};
use climate_adaptive::adaptive::recovery::{run_with_recovery, DurabilityOptions};
use climate_adaptive::adaptive::resilience::{BackoffPolicy, ResilientSender};
use climate_adaptive::prelude::*;
use climate_adaptive::wrf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let physics = match args.iter().position(|a| a == "--physics-threads") {
        None => PhysicsThreads::default(),
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("follow") => PhysicsThreads::FollowDecision,
            Some(v) => match v.parse() {
                Ok(n) => PhysicsThreads::Fixed(n),
                Err(_) => usage(),
            },
            None => usage(),
        },
    };
    if let Some(i) = args.iter().position(|a| a == "--soak") {
        let hours: f64 = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage());
        let seed0: u64 = match args.iter().position(|a| a == "--seed") {
            None => 0xC1A05,
            Some(j) => args
                .get(j + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage()),
        };
        soak_drill(hours, seed0);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--missions") {
        let missions: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage());
        let workers: usize = match args.iter().position(|a| a == "--des-shards") {
            None => 2,
            Some(j) => args
                .get(j + 1)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage()),
        };
        fleet_drill(missions.max(1), workers.max(1));
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--kill-at") {
        let hours: f64 = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| usage());
        recovery_drill(hours, physics);
        return;
    }
    des_drill();
    transport_drill();
    recovery_drill(0.02, physics);
}

fn usage() -> ! {
    eprintln!(
        "usage: fault_drill [--kill-at <hours>] [--physics-threads <n|follow>] \
         [--soak <sim-hours> [--seed <n>]] [--missions <n> [--des-shards <k>]]"
    );
    std::process::exit(2);
}

/// Chaos storms against the sharded multi-mission engine: every mission
/// carries its own seeded random fault plan, all of them contend for one
/// core pool and one WAN link, and the whole fleet must reproduce
/// byte-identical counters on a second run.
fn fleet_drill(missions: usize, workers: usize) {
    use climate_adaptive::adaptive::engine::PipelineOptions;
    use climate_adaptive::adaptive::fleet::{ensemble, run_fleet, FleetOptions};

    println!("== fleet drill: {missions} mission(s), {workers} DES worker thread(s) ==");
    let site = Site::inter_department();
    let mission = Mission::aila().with_duration_hours(6.0);
    let specs = || {
        let mut specs = ensemble(
            &site,
            &mission,
            AlgorithmKind::Optimization,
            &PipelineOptions::default(),
            missions,
        );
        for (i, spec) in specs.iter_mut().enumerate() {
            // A distinct storm per mission, inside the mission's modeled
            // wall-hour span so the faults actually land mid-run.
            spec.options.fault_plan = FaultPlan::random(0xF1EE7 + i as u64, 1.0);
        }
        specs
    };
    let opts = FleetOptions::for_site(&site, workers);
    let report = run_fleet(specs(), &opts);
    for m in &report.missions {
        let r = &m.report;
        println!(
            "  {}: completed={} wall {:>5.2} h, shipped {:>3}, replays {}, \
             crashes {}, reconnects {}, stalls {}",
            m.label,
            r.completed,
            r.wall_hours,
            r.frames_shipped,
            r.replays,
            r.crashes,
            r.reconnects,
            r.stalls,
        );
    }
    println!(
        "  fleet: {}/{} completed on a {}-core shared pool",
        report.completed(),
        missions,
        report.total_cores
    );
    let again = run_fleet(specs(), &opts);
    let deterministic = report
        .missions
        .iter()
        .zip(&again.missions)
        .all(|(a, b)| a.report.counters == b.report.counters);
    if deterministic {
        println!("  re-run under fresh thread interleaving: byte-identical counters");
    } else {
        println!("  RE-RUN DIVERGED — sharded-DES determinism bug");
        std::process::exit(1);
    }
}

/// Seeded chaos storms through the DES until `target_sim_hours` of
/// simulated time are covered, every invariant checked on every storm.
fn soak_drill(target_sim_hours: f64, seed0: u64) {
    println!(
        "== chaos soak: seeded fault storms until {target_sim_hours:.0} simulated hours \
         (first seed {seed0}) =="
    );
    let budgets = chaos::InvariantBudgets::default();
    let mut sim_hours = 0.0;
    let mut storm = 0u64;
    let mut failures = 0u64;
    while sim_hours < target_sim_hours {
        let spec = chaos::StormSpec::generate(seed0 + storm);
        let baseline_wall = chaos::run_storm(&spec.baseline()).wall_hours;
        let out = chaos::run_storm(&spec);
        let violations = chaos::check_invariants(&spec, &out, baseline_wall, &budgets);
        sim_hours += out.sim_minutes / 60.0;
        println!(
            "storm {:>3} seed {:>7}: {} events, sim {:>4.0} h, wall {:>5.2} h, \
             deepest rung {}, stalls {}, {} violation(s)",
            storm,
            spec.seed,
            spec.events.len(),
            out.sim_minutes / 60.0,
            out.wall_hours,
            out.deepest_rung,
            out.stalls,
            violations.len(),
        );
        if !violations.is_empty() {
            failures += 1;
            for v in &violations {
                println!("    {v}");
            }
            let kinds: Vec<&'static str> = violations.iter().map(|v| v.kind()).collect();
            let shrunk = chaos::shrink(&spec, &budgets, &kinds);
            println!("    shrunk to {} event(s):", shrunk.spec.events.len());
            println!("    {}", shrunk.spec.replay_line());
        }
        storm += 1;
    }
    println!("soak finished: {storm} storms, {sim_hours:.0} simulated hours, {failures} failing");
    if failures > 0 {
        std::process::exit(1);
    }
}

/// Hard-kill the live durable pipeline mid-mission and let the recovery
/// supervisor restart it from disk.
fn recovery_drill(kill_at_hours: f64, physics: PhysicsThreads) {
    println!(
        "== recovery drill: live pipeline hard-killed at {kill_at_hours:.2} wall hours, \
         restarted from durable state (physics workers: {physics:?}) =="
    );
    let site = Site::inter_department();
    let mut mission = Mission::aila().with_duration_hours(2.0).with_decimation(16);
    mission.decision_interval_hours = 0.5;
    let state_dir = std::env::temp_dir().join(format!(
        "adaptive-fault-drill-recovery-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&state_dir);
    let durability = DurabilityOptions::new(&state_dir).with_checkpoint_every_min(20.0);

    // Control: the same durable mission with no kill.
    let control_dir = std::env::temp_dir().join(format!(
        "adaptive-fault-drill-control-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&control_dir);
    let control = run_online(
        &site,
        &mission,
        AlgorithmKind::StaticBaseline,
        &OnlineOptions::fast("drill-control")
            .with_physics_threads(physics)
            .with_durability(DurabilityOptions::new(&control_dir).with_checkpoint_every_min(20.0)),
    );

    let plan = FaultPlan::from_events(vec![(
        kill_at_hours,
        Fault::ProcessKill {
            at_hours: kill_at_hours,
        },
    )]);
    let report = run_with_recovery(
        &site,
        &mission,
        AlgorithmKind::StaticBaseline,
        &OnlineOptions::fast("drill-recovery")
            .with_physics_threads(physics)
            .with_fault_plan(plan)
            .with_durability(durability),
    );

    for (label, r) in [("control", &control), ("killed", &report)] {
        println!(
            "{label:>8}: completed={} sim={:.0}min frames {} written / {} shipped / {} in flight; \
             recoveries={} journal_replays={} frames_recovered={} rendered={}",
            r.completed,
            r.sim_minutes,
            r.frames_written,
            r.frames_shipped,
            r.frames_in_flight,
            r.recoveries,
            r.journal_replays,
            r.frames_recovered,
            r.frames_rendered,
        );
    }
    assert!(report.completed, "mission must survive the kill");
    assert_eq!(
        report.frames_written,
        report.frames_shipped + report.frames_in_flight,
        "frame conservation across the incarnation boundary"
    );
    if report.recoveries > 0 {
        assert_eq!(
            report.track.to_csv(),
            control.track.to_csv(),
            "recovered track must match the fault-free run byte-for-byte"
        );
        println!("recovered track is byte-identical to the fault-free run ✓");
    } else {
        println!("(kill time fell past mission end; no recovery exercised)");
    }
    let _ = std::fs::remove_dir_all(&state_dir);
    let _ = std::fs::remove_dir_all(&control_dir);
    println!();
}

/// Every fault class at once, against the full adaptation loop.
fn des_drill() {
    let site = Site::inter_department();
    let mission = Mission::aila();
    let plan = FaultPlan::from_events(vec![
        (2.0, Fault::LinkDegradation { factor: 0.05 }),
        (5.0, Fault::LinkDegradation { factor: 1.0 }),
        (
            7.0,
            Fault::DiskPressure {
                bytes: 40 << 30,
                duration_hours: 3.0,
            },
        ),
        (
            9.0,
            Fault::ReceiverOutage {
                duration_hours: 1.5,
            },
        ),
        (5.5, Fault::SimCrash),
        (
            11.0,
            Fault::BandwidthFlap {
                factor: 0.1,
                half_period_hours: 0.5,
                flips: 6,
            },
        ),
    ]);

    println!(
        "== DES drill: {} scripted faults over a full Aila mission ==",
        plan.len()
    );
    let control =
        Orchestrator::new(site.clone(), mission.clone(), AlgorithmKind::Optimization).run();
    let faulted = Orchestrator::new(site, mission, AlgorithmKind::Optimization)
        .with_fault_plan(plan)
        .run();

    for (label, out) in [("control", &control), ("faulted", &faulted)] {
        println!(
            "{label:>8}: completed={} wall={:.1}h frames {} written / {} shipped / {} in flight; \
             reconnects={} replays={} crashes={} degraded_epochs={} min_free={:.1}%",
            out.completed,
            out.wall_hours,
            out.frames_written,
            out.frames_shipped,
            out.frames_in_flight,
            out.reconnects,
            out.replays,
            out.crashes,
            out.degraded_epochs,
            out.min_free_disk_pct,
        );
    }
    assert!(faulted.completed, "mission must survive the drill");
    assert_eq!(
        faulted.frames_written,
        faulted.frames_shipped + faulted.frames_in_flight,
        "frame conservation"
    );
    println!();
}

/// Kill the receiver mid-frame, restart it elsewhere, heal, compare.
fn transport_drill() {
    println!("== transport drill: receiver killed after 3 frames, restarted on a new port ==");
    let payloads: Vec<Vec<u8>> = {
        let mut model = wrf::WrfModel::new(wrf::ModelConfig::aila_default().with_decimation(16))
            .expect("valid config");
        (0..6)
            .map(|_| {
                model
                    .advance_to_minutes(model.sim_minutes() + 120.0, 1)
                    .expect("finite");
                model.frame().to_bytes().to_vec()
            })
            .collect()
    };

    // Control: a healthy receiver, for the byte-identity check.
    let control_rx = FrameReceiver::start().expect("bind");
    let control_addr = control_rx.addr();
    let mut control_tx = ResilientSender::new(move || control_addr, BackoffPolicy::new(7));
    for p in &payloads {
        control_tx.send(p).expect("healthy send");
    }
    let control_track = control_rx.shutdown().to_csv();

    // Drill: die after fully receiving frame 3, before applying or acking it.
    let rx1 = FrameReceiver::start_with(ReceiverOptions {
        kill_after_frames: Some(3),
        ..Default::default()
    })
    .expect("bind");
    let addr = Arc::new(Mutex::new(rx1.addr()));

    let watcher_addr = Arc::clone(&addr);
    let watcher = std::thread::spawn(move || {
        while !rx1.is_finished() {
            std::thread::sleep(Duration::from_millis(2));
        }
        let resume_seq = rx1.last_applied();
        let resume_track = rx1.shutdown();
        println!("receiver died; last applied seq = {resume_seq}; restarting...");
        let rx2 = FrameReceiver::start_with(ReceiverOptions {
            resume_track,
            resume_seq,
            kill_after_frames: None,
        })
        .expect("rebind");
        *watcher_addr.lock().expect("lock") = rx2.addr();
        rx2
    });

    let sender_addr = Arc::clone(&addr);
    let mut tx = ResilientSender::new(
        move || *sender_addr.lock().expect("lock"),
        BackoffPolicy::new(11)
            .with_base(Duration::from_millis(20))
            .with_max_attempts(12),
    )
    .with_io_timeout(Duration::from_millis(300));
    for p in &payloads {
        tx.send(p).expect("heal and deliver");
    }
    let rx2 = watcher.join().expect("watcher");
    let stats = tx.stats();
    println!(
        "sender healed: {} frames acked, {} reconnects, {} replays, {} deduplicated",
        stats.frames_acked, stats.reconnects, stats.replays, stats.deduplicated
    );
    println!(
        "receiver end state: last applied seq = {}",
        rx2.last_applied()
    );

    let healed_track = rx2.shutdown().to_csv();
    assert_eq!(healed_track, control_track, "tracks must be byte-identical");
    assert!(stats.reconnects >= 1 && stats.replays >= 1);
    println!("remote track is byte-identical to the fault-free transfer ✓");
}
