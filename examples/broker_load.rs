//! Broker load sweep — 10^3 → 10^5 modeled viewers through the steady
//! ramp and the two-hour outage/reconnect storm, one CSV row per
//! (fleet, scenario):
//!
//! ```text
//! cargo run --release --example broker_load            # full sweep
//! cargo run --release --example broker_load -- --quick # 10^3 + 10^4 only
//! ```
//!
//! Writes `results/fanout_load.csv` (shed rate, worst p99 staleness,
//! bytes served, recovery time after the outage, worst admission wait).

use climate_adaptive::adaptive::broker::loadgen::{render_csv, sweep};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let fleets: &[u64] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };
    println!("sweeping fleets {fleets:?} through steady ramp + 2 h outage storm\n");
    let rows = sweep(fleets, 7200.0, 0xACCE55);
    println!(
        "{:>8} {:<18} {:>9} {:>8} {:>10} {:>9} {:>9} {:>5} {:>6}",
        "clients", "scenario", "shed", "p99 s", "bytes", "rec s", "wait s", "rung", "starve"
    );
    for r in &rows {
        println!(
            "{:>8} {:<18} {:>8.1}% {:>8.0} {:>10.2e} {:>9.0} {:>9.1} {:>5} {:>6}",
            r.clients,
            r.scenario,
            100.0 * r.shed_rate,
            r.p99_staleness_secs,
            r.bytes,
            r.recovery_secs,
            r.max_admission_wait_secs,
            r.deepest_rung,
            r.starvation_ticks,
        );
        assert!(r.drained, "{} {} did not drain", r.clients, r.scenario);
        assert_eq!(r.starvation_ticks, 0, "live frames starved");
    }
    let csv = render_csv(&rows);
    std::fs::create_dir_all("results").expect("results dir");
    std::fs::write("results/fanout_load.csv", &csv).expect("write csv");
    println!(
        "\n{} rows -> results/fanout_load.csv\n\
         the ladder is load-bearing: past ~4k clients full-res broadcast no longer\n\
         fits the 1 GB/s uplink, so bigger fleets stay live by riding deeper rungs,\n\
         and the outage storm drains in minutes at every size.",
        rows.len()
    );
}
