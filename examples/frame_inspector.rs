//! Frame inspector: write a history frame to disk, read it back, and
//! print its CDL description — the `ncdump -h` workflow climate
//! scientists use on WRF output, against our NetCDF stand-in.
//!
//! ```text
//! cargo run --release --example frame_inspector [path.ncdl]
//! ```

use climate_adaptive::prelude::*;
use ncdf::Dataset;
use wrf::WrfModel;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/sample_frame.ncdl".into());
    std::fs::create_dir_all(
        std::path::Path::new(&path)
            .parent()
            .unwrap_or(std::path::Path::new(".")),
    )
    .expect("output directory");

    // Produce a frame a few hours into the mission, nest active.
    let mission = Mission::aila();
    let mut model = WrfModel::new(mission.model.with_decimation(8)).expect("valid");
    model.advance_to_minutes(3.0 * 60.0, 2).expect("finite");
    model.spawn_nest();
    model.advance_to_minutes(4.0 * 60.0, 2).expect("finite");
    let frame = model.frame();

    // Write the encoded frame like the simulation process would.
    let bytes = frame.to_bytes();
    std::fs::write(&path, &bytes).expect("frame file written");
    println!(
        "wrote {} ({} bytes, payload {} bytes)\n",
        path,
        bytes.len(),
        frame.payload_bytes()
    );

    // Read it back like the visualization plug-in would, and describe it.
    let raw = std::fs::read(&path).expect("frame file readable");
    let ds = Dataset::from_bytes(&raw).expect("frame decodes");
    assert_eq!(ds, frame, "lossless round-trip through the file");
    print!("{}", ds.to_cdl("sample_frame"));

    println!(
        "\nat {}: min pressure {:.1} hPa, max wind {:.1} m/s, nest {}",
        Mission::format_sim_time(model.sim_minutes()),
        model.min_pressure_hpa(),
        model.max_wind_ms(),
        if model.has_nest() { "active" } else { "off" },
    );
}
