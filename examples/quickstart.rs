//! Quickstart: run one adaptive experiment end to end.
//!
//! Runs the paper's inter-department configuration with both decision
//! algorithms on a shortened Aila mission and prints the outcome — the
//! smallest complete use of the public API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use climate_adaptive::adaptive::decision::AlgorithmKind;
use climate_adaptive::adaptive::metrics;
use climate_adaptive::adaptive::orchestrator::Orchestrator;
use climate_adaptive::prelude::*;

fn main() {
    // A 12-simulated-hour slice of the Aila mission keeps this instant.
    let mission = Mission::aila().with_duration_hours(12.0);
    let site = Site::inter_department();

    println!(
        "site: {} ({} cores, {} GB disk, {} Mbps to the visualization site)",
        site.label, site.cluster.max_cores, site.disk_gb, site.bandwidth_mbps
    );
    println!(
        "mission: cyclone Aila, {} simulated hours from {}\n",
        mission.duration_hours,
        Mission::format_sim_time(0.0)
    );

    let mut outcomes = Vec::new();
    for algo in AlgorithmKind::both() {
        let outcome = Orchestrator::new(site.clone(), mission.clone(), algo).run();
        println!(
            "{:<20} completed={} in {:.1} wall-hours; {} frames written, {} visualized; \
             free disk never below {:.1}%",
            algo.label(),
            outcome.completed,
            outcome.wall_hours,
            outcome.frames_written,
            outcome.frames_rendered,
            outcome.min_free_disk_pct,
        );
        outcomes.push(outcome);
    }

    let cmp = metrics::compare(&outcomes[0], &outcomes[1]);
    println!(
        "\noptimization vs greedy: sim-rate {:+.1}%, storage saving {:+.1}%, \
         mid-run visualization lead {:+.0} simulated minutes",
        cmp.sim_rate_gain_pct, cmp.storage_saving_pct, cmp.viz_progress_gain_min
    );

    // Every run also carries the full figure time series.
    let disk = outcomes[1]
        .series
        .get("free_disk_pct")
        .expect("series recorded");
    println!(
        "optimization free-disk trace: {} samples, ending at {:.1}%",
        disk.len(),
        disk.last_value().expect("non-empty")
    );
}
