//! Cyclone tracking: drive the dynamical core directly and visualize.
//!
//! Reproduces the workflow behind the paper's Figures 3 and 4 without the
//! resource layer: integrate the Aila scenario, spawn the tracking nest
//! when the pressure first drops below 995 hPa, follow the Table III
//! resolution schedule, and render pressure/windspeed views plus the
//! storm track.
//!
//! ```text
//! cargo run --release --example cyclone_tracking
//! ```
//!
//! Images (PPM) land in `results/`.

use climate_adaptive::prelude::*;
use viz::{FrameRenderer, ScalarField, TrackLog};
use wrf::WrfModel;

fn main() {
    let mission = Mission::aila();
    // Lighter decimation than the DES experiments: nicer fields, still
    // seconds of runtime.
    let cfg = mission.model.with_decimation(4);
    let mut model = WrfModel::new(cfg).expect("valid configuration");
    let mut track = TrackLog::new();
    let outdir = std::path::Path::new("results");
    std::fs::create_dir_all(outdir).expect("results dir");

    println!(
        "tracking cyclone Aila for {} simulated hours",
        mission.duration_hours
    );
    println!(
        "{:>14} {:>10} {:>9} {:>9} {:>8} {:>6}",
        "sim time", "p_min hPa", "eye lon", "eye lat", "res km", "nest"
    );

    let mut current_res = mission.schedule.default_resolution_km;
    let mut snapshots = 0;
    for hour in (3..=mission.duration_hours as usize).step_by(3) {
        model
            .advance_to_minutes(hour as f64 * 60.0, 2)
            .expect("integration stays finite");
        let p = model.min_pressure_hpa();
        let (lon, lat) = model.eye_lonlat();

        // Apply the paper's adaptation policy.
        let (res, nest) = mission
            .schedule
            .apply_with_hysteresis(p, current_res, model.has_nest());
        if nest && !model.has_nest() {
            model.spawn_nest();
            println!(
                "  >> nest spawned ({}x finer, following the eye)",
                model.nest().expect("just spawned").ratio()
            );
        }
        if res != current_res {
            model.set_resolution(res).expect("schedule resolution");
            println!(
                "  >> resolution changed to {res} km (nest {:.2} km)",
                res / 3.0
            );
            current_res = res;
        }

        println!(
            "{:>14} {:>10.1} {:>8.1}E {:>8.1}N {:>8} {:>6}",
            Mission::format_sim_time(model.sim_minutes()),
            p,
            lon,
            lat,
            current_res,
            if model.has_nest() { "yes" } else { "no" },
        );

        let frame = model.frame();
        track.ingest(&frame);

        // Save one pressure view every 12 simulated hours.
        if hour % 12 == 0 {
            let r = FrameRenderer {
                scale: 3,
                ..Default::default()
            };
            let img = r.render(&frame).expect("frame renders");
            let name = format!(
                "track_pressure_{}.ppm",
                Mission::format_sim_time(model.sim_minutes()).replace([' ', ':'], "_")
            );
            img.save_ppm(&outdir.join(&name)).expect("writable");
            snapshots += 1;
            if model.has_nest() {
                let w = FrameRenderer {
                    scalar: ScalarField::Windspeed,
                    scale: 3,
                    ..Default::default()
                };
                let nest_img = w.render_nest(&frame).expect("nest renders");
                nest_img
                    .save_ppm(&outdir.join(format!("nest_{name}")))
                    .expect("writable");
            }
        }
    }

    std::fs::write(outdir.join("track.csv"), track.to_csv()).expect("writable");
    println!(
        "\ntrack: {} fixes over {:.1} degrees, deepest pressure {:.1} hPa",
        track.fixes().len(),
        track.length_deg(),
        track.min_pressure().expect("fixes recorded"),
    );
    println!("saved {snapshots} pressure snapshots + track.csv under results/");
}
